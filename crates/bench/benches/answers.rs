//! SPA vs PPA answer generation across K, L, and preference-type mixes —
//! the microbench companion to Figures 7/8 (run `repro fig7 fig8` for the
//! full parameter sweeps at scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_bench::{bench_db, efficiency_options, positive_profile, run_personalization, Scale};
use qp_core::AnswerAlgorithm;
use qp_datagen::{random_profile, ProfileSpec};

fn answer_benches(c: &mut Criterion) {
    let db = bench_db(Scale::Small);
    let positive = positive_profile(&db, 30, 7);
    let sql = "select title from MOVIE";

    let mut g = c.benchmark_group("answers");
    g.sample_size(20);
    for k in [5usize, 15] {
        g.bench_with_input(BenchmarkId::new("spa_positive", k), &k, |b, &k| {
            b.iter(|| {
                run_personalization(&db, &positive, sql, &efficiency_options(k, 1, AnswerAlgorithm::Spa))
            })
        });
        g.bench_with_input(BenchmarkId::new("ppa_positive", k), &k, |b, &k| {
            b.iter(|| {
                run_personalization(&db, &positive, sql, &efficiency_options(k, 1, AnswerAlgorithm::Ppa))
            })
        });
    }
    // mixed profile with absence preferences: SPA pays for NOT IN
    let mixed = random_profile(&db, &ProfileSpec { positive_presence: 8, negative: 6, complex: 0, elastic: 0, seed: 7 });
    g.bench_function("spa_with_absence", |b| {
        b.iter(|| {
            run_personalization(&db, &mixed, sql, &efficiency_options(14, 1, AnswerAlgorithm::Spa))
        })
    });
    g.bench_function("ppa_with_absence", |b| {
        b.iter(|| {
            run_personalization(&db, &mixed, sql, &efficiency_options(14, 1, AnswerAlgorithm::Ppa))
        })
    });
    // PPA early termination: high L
    g.bench_function("ppa_high_l", |b| {
        b.iter(|| {
            run_personalization(&db, &positive, sql, &efficiency_options(20, 15, AnswerAlgorithm::Ppa))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = answer_benches
}
criterion_main!(benches);
