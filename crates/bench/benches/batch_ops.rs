//! Vectorized-vs-row operator microbenchmarks: the same queries on the
//! batch engine (default) and the `QP_ROW_ENGINE` row-at-a-time oracle,
//! so a criterion run shows the per-operator vectorization win directly.
//! The derived-table join forces the hash-join path (a bare base-relation
//! key would take the index join); the set-fetch bench measures the
//! probe shape batched PPA rides on.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_bench::{bench_db, Scale};
use qp_exec::Engine;
use qp_sql::parse_query;

fn engines() -> [(&'static str, Engine); 2] {
    let mut batch = Engine::new();
    batch.set_row_engine(false);
    let mut row = Engine::new();
    row.set_row_engine(true);
    [("batch", batch), ("row", row)]
}

fn batch_ops(c: &mut Criterion) {
    let db = bench_db(Scale::Small);

    let cases = [
        ("scan_filter", "select title from MOVIE where year >= 1990"),
        (
            "scan_filter_compound",
            "select title, year from MOVIE where year >= 1970 and duration < 120",
        ),
        (
            "hash_join_derived",
            "select M.title from MOVIE M, \
             (select mid from GENRE where genre = 'drama') G where M.mid = G.mid",
        ),
        (
            "sort_limit",
            "select title, year from MOVIE where year >= 1960 order by year desc, title limit 100",
        ),
        (
            "distinct_union",
            "select distinct year from MOVIE where year < 1960 \
             union all select distinct year from MOVIE where year >= 1990",
        ),
    ];
    for (name, sql) in cases {
        let mut g = c.benchmark_group(format!("batch_ops/{name}"));
        let q = parse_query(sql).unwrap();
        for (engine_name, engine) in engines() {
            g.bench_function(engine_name, |b| b.iter(|| engine.execute(&db, &q).unwrap()));
        }
        g.finish();
    }
}

criterion_group!(benches, batch_ops);
criterion_main!(benches);
