//! Execution-engine microbenchmarks: the operator costs underneath SPA
//! and PPA (scan+filter, index join, grouping, union, NOT IN, and the
//! prepared row-fetch path PPA's parameterized queries ride on).

use criterion::{criterion_group, criterion_main, Criterion};
use qp_bench::{bench_db, Scale};
use qp_exec::{Engine, ExecStats};
use qp_sql::parse_query;

fn engine_benches(c: &mut Criterion) {
    let db = bench_db(Scale::Small);
    let engine = Engine::new();

    let mut g = c.benchmark_group("engine");
    g.bench_function("scan_filter", |b| {
        let q = parse_query("select title from MOVIE where year >= 1990").unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("index_join_2way", |b| {
        let q = parse_query(
            "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'drama'",
        )
        .unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("index_join_5way", |b| {
        let q = parse_query(
            "select T.name from THEATRE T, PLAY P, MOVIE M, DIRECTED D, DIRECTOR DI \
             where T.tid = P.tid and P.mid = M.mid and M.mid = D.mid and D.did = DI.did \
             and DI.name = 'W. Allen'",
        )
        .unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("group_by_having", |b| {
        let q = parse_query(
            "select genre, count(*) n from GENRE group by genre having count(*) >= 5 order by n desc",
        )
        .unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("union_all_3", |b| {
        let q = parse_query(
            "select title from MOVIE where year < 1960 \
             union all select title from MOVIE where year >= 1990 \
             union all select title from MOVIE where duration > 150",
        )
        .unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("not_in_subquery", |b| {
        let q = parse_query(
            "select title from MOVIE M where M.mid not in \
             (select G.mid from GENRE G where G.genre = 'drama')",
        )
        .unwrap();
        b.iter(|| engine.execute(&db, &q).unwrap())
    });
    g.bench_function("prepared_rowid_fetch", |b| {
        let q = parse_query("select M.title from MOVIE M where M.rowid = 0").unwrap();
        let mut prepared = engine.prepare(&db, &q).unwrap();
        let rel = db.catalog().relation_by_name("MOVIE").unwrap().id;
        let mut stats = ExecStats::default();
        let mut tid = 0u64;
        b.iter(|| {
            tid = (tid + 1) % 1000;
            prepared.rebind_rowid(rel, tid);
            engine.execute_prepared_rows(&db, &prepared, &mut stats)
        })
    });
    g.bench_function("parse_and_plan", |b| {
        b.iter(|| {
            let q = parse_query(
                "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'drama'",
            )
            .unwrap();
            engine.prepare(&db, &q).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = engine_benches
}
criterion_main!(benches);
