//! Histogram build and estimation costs — PPA consults these to order
//! its presence/absence queries by selectivity.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_storage::histogram::CmpOp;
use qp_storage::{Histogram, Value};

fn histogram_benches(c: &mut Criterion) {
    let numeric: Vec<Value> = (0..50_000).map(|i| Value::Int(1930 + (i % 75))).collect();
    let categorical: Vec<Value> =
        (0..50_000).map(|i| Value::str(format!("genre{}", i % 20))).collect();

    let mut g = c.benchmark_group("histogram");
    g.sample_size(20);
    g.bench_function("build_numeric_50k", |b| b.iter(|| Histogram::build(numeric.iter())));
    g.bench_function("build_categorical_50k", |b| b.iter(|| Histogram::build(categorical.iter())));

    let h_num = Histogram::build(numeric.iter());
    let h_cat = Histogram::build(categorical.iter());
    g.bench_function("estimate_range", |b| {
        b.iter(|| h_num.selectivity(CmpOp::Lt, std::hint::black_box(&Value::Int(1980))))
    });
    g.bench_function("estimate_between", |b| {
        b.iter(|| h_num.selectivity_between(&Value::Int(1960), &Value::Int(1990)))
    });
    g.bench_function("estimate_equality", |b| {
        b.iter(|| h_cat.selectivity(CmpOp::Eq, std::hint::black_box(&Value::str("genre7"))))
    });
    g.finish();
}

criterion_group!(benches, histogram_benches);
criterion_main!(benches);
