//! The serving layer under criterion: PPA with the worker pool fanned
//! out vs the serial path, and repeated requests with the plan +
//! preference caches warm vs bypassed (run `repro --bench-parallel` for
//! the at-scale snapshot written to BENCH_parallel.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_bench::{bench_db, efficiency_options, positive_profile, Scale};
use qp_core::{AnswerAlgorithm, PersonalizeRequest, Personalizer};

fn parallel_ppa_benches(c: &mut Criterion) {
    let db = bench_db(Scale::Small);
    let profile = positive_profile(&db, 30, 7);
    let opts = efficiency_options(15, 1, AnswerAlgorithm::Ppa);
    let sql = "select title from MOVIE";

    // Worker-pool scaling. Caches are bypassed per request so every
    // iteration measures the same planning + probe work; on a single-core
    // host the parallel rows can at best tie the serial one.
    let mut g = c.benchmark_group("parallel_ppa");
    g.sample_size(20);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let mut p = Personalizer::new(&db);
            b.iter(|| {
                p.run(
                    PersonalizeRequest::sql(&profile, sql)
                        .options(opts)
                        .parallelism(w)
                        .plan_cache(false)
                        .preference_cache(false),
                )
                .expect("personalizes")
            })
        });
    }
    g.finish();

    // Repeated-request serving: one Personalizer answering the same
    // point query again and again, cold (caches bypassed) vs warm
    // (plans + selection reused).
    let point_sql = "select M.title from MOVIE M where M.mid = 242";
    let mut g = c.benchmark_group("cache_reuse");
    g.sample_size(50);
    g.bench_function("cold", |b| {
        let mut p = Personalizer::new(&db);
        b.iter(|| {
            p.run(
                PersonalizeRequest::sql(&profile, point_sql)
                    .options(opts)
                    .plan_cache(false)
                    .preference_cache(false),
            )
            .expect("personalizes")
        })
    });
    g.bench_function("warm", |b| {
        let mut p = Personalizer::new(&db);
        p.run(PersonalizeRequest::sql(&profile, point_sql).options(opts))
            .expect("warming run personalizes");
        b.iter(|| {
            p.run(PersonalizeRequest::sql(&profile, point_sql).options(opts))
                .expect("personalizes")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = parallel_ppa_benches
}
criterion_main!(benches);
