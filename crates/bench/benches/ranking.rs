//! Ranking-function microbenchmarks: the three philosophies and the two
//! mixed combinators over realistic degree-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_core::{MixedKind, Ranking, RankingKind};

fn ranking_benches(c: &mut Criterion) {
    let degrees: Vec<f64> = (0..64).map(|i| 0.05 + 0.9 * (i as f64 / 64.0)).collect();
    let negs: Vec<f64> = degrees.iter().map(|d| -d / 2.0).collect();

    let mut g = c.benchmark_group("ranking");
    for kind in RankingKind::ALL {
        for n in [4usize, 32] {
            g.bench_with_input(
                BenchmarkId::new(format!("positive_{kind:?}"), n),
                &n,
                |b, &n| b.iter(|| kind.positive(std::hint::black_box(&degrees[..n]))),
            );
        }
    }
    for mixed in [MixedKind::Sum, MixedKind::CountWeighted] {
        g.bench_function(format!("mixed_{mixed:?}"), |b| {
            let r = Ranking::new(RankingKind::Inflationary, mixed);
            b.iter(|| r.mixed(std::hint::black_box(&degrees[..16]), std::hint::black_box(&negs[..16])))
        });
    }
    g.finish();
}

criterion_group!(benches, ranking_benches);
criterion_main!(benches);
