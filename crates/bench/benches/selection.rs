//! Preference-selection microbenchmarks: FakeCrit vs SPS (the paper's
//! claimed win for the fake-criticality labels) and the doi-driven
//! variant, plus the cost of computing the labels themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_bench::{bench_db, Scale};
use qp_core::criticality::compute_fake_criticalities;
use qp_core::select::{doi_based, fakecrit, sps, QueryContext, SelectionCriterion};
use qp_core::{MixedKind, PersonalizationGraph, Ranking, RankingKind};
use qp_datagen::{random_profile, ProfileSpec};
use qp_sql::parse_query;

fn selection_benches(c: &mut Criterion) {
    let db = bench_db(Scale::Small);
    let profile = random_profile(&db, &ProfileSpec::mixed(40, 3));
    let graph = PersonalizationGraph::build(&profile);
    let query = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &query).unwrap();

    let mut g = c.benchmark_group("selection");
    for k in [5usize, 20] {
        g.bench_with_input(BenchmarkId::new("fakecrit_topk", k), &k, |b, &k| {
            b.iter(|| fakecrit::fakecrit(&graph, &qc, SelectionCriterion::TopK(k)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("sps_topk", k), &k, |b, &k| {
            b.iter(|| sps::sps(&graph, &qc, SelectionCriterion::TopK(k)).unwrap())
        });
    }
    g.bench_function("doi_based_dr08", |b| {
        let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
        b.iter(|| doi_based::doi_based(&graph, &qc, 0.8, &ranking, None).unwrap())
    });
    g.bench_function("graph_build", |b| b.iter(|| PersonalizationGraph::build(&profile)));
    g.bench_function("fake_criticality_labels", |b| {
        b.iter(|| compute_fake_criticalities(&profile))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = selection_benches
}
criterion_main!(benches);
