//! Regenerates every figure of the paper's evaluation (§6).
//!
//! ```text
//! repro [--scale small|medium|large] [--runs N]
//!       [--deadline-ms MS] [--max-rows N] [--trace-json PATH] <figure>
//!   figure: fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//!           ablation guardrails trace all
//! repro --bench-parallel [--scale ...] [--runs N]
//! repro --bench-vectorized [--scale ...] [--runs N]
//! repro --bench-chaos [--scale ...] [--runs N]
//! repro --bench-serving [--scale ...] [--runs N] [--users N]
//! repro --bench-profiles [--scale ...] [--users N]
//! repro --bench-recovery [--scale ...] [--users N]
//! repro --bench-maintenance [--scale ...] [--runs N] [--write-rate PCT]
//! ```
//!
//! `--bench-parallel` runs the serving benchmarks introduced with the
//! request/response API: serial vs parallel PPA probe execution, and
//! repeated-query latency with the plan + preference caches warm vs
//! bypassed. Results are printed and snapshotted to `BENCH_parallel.json`
//! in the current directory.
//!
//! `--bench-vectorized` compares the vectorized batch engine against the
//! `QP_ROW_ENGINE` row-at-a-time oracle on the scan+filter+join workload
//! and on an end-to-end PPA personalization, asserting byte-identical
//! results before trusting either time. Each side reports its minimum
//! over `--runs` repetitions — external load only ever inflates a
//! measurement, so the minimum is the noise-robust basis for the
//! engine-vs-engine ratio. The snapshot lands in `BENCH_vectorized.json`
//! with the host's `cpus`.
//!
//! `--bench-chaos` runs the robustness benchmark: a multi-thread serving
//! fleet (snapshot store + shared resilience bundle) measured steady, then
//! again under the seeded [`qp_storage::ChaosPlan`] fault schedule —
//! throughput, completion/degradation/shed/retry rates, and the breaker's
//! behaviour. Results are snapshotted to `BENCH_robustness.json`. Compile
//! with `--features failpoints` or the chaos phase injects nothing.
//!
//! `--bench-serving` runs the wire-protocol load generator: an in-process
//! `qp-server`, `--users` simulated users registering generated profiles
//! over the wire, then a worker fleet issuing personalize requests through
//! `qp-client` connections — steady, and again under the network +
//! engine chaos schedules plus deliberately misbehaving clients (stalls,
//! torn frames). p50/p99 latency, requests/s, and the shed / severed /
//! short-circuit / retry counts land in `BENCH_serving.json`.
//!
//! `--bench-profiles` measures the million-profile store: pooled profile
//! generation, compact-encoded registration throughput and bytes per
//! profile, store lookup p50/p99 over random ids, and cold (decode +
//! graph + selection) vs warm (per-user selection memo) preference
//! resolution. Defaults to 1,000,000 users; `--users` overrides. The
//! snapshot lands in `BENCH_profiles.json`.
//!
//! `--bench-recovery` measures the durable profile store: registration
//! throughput with and without the segment log, crash-recovery time
//! replaying the full log vs recovering from a checkpoint snapshot, and
//! torn-tail repair — each recovered store digest-checked against the
//! store that wrote the files. Defaults to 1,000,000 users; `--users`
//! overrides. The snapshot lands in `BENCH_recovery.json`.
//!
//! `--bench-maintenance` measures incremental maintenance of materialized
//! preference results under write traffic: the same mixed read/write
//! workload (PPA reads, typed [`qp_storage::DbDelta`] publishes through
//! [`qp_core::Maintainer`], including deletes) runs twice — once
//! recomputing every materialization from scratch per request, once
//! replaying the maintenance registry and patching it on each publish.
//! `--write-rate` sets the writes-per-100-requests knob (default 1.0).
//! Maintained answers are byte-identity audited against a fresh
//! recompute after every publish, untimed. The snapshot lands in
//! `BENCH_maintenance.json`.
//!
//! `--deadline-ms` and `--max-rows` configure the `guardrails` figure: a
//! PPA run under a [`qp_exec::QueryGuard`], showing the partial ranked
//! answer and the degradation report a production deployment would see.
//!
//! `--trace-json PATH` configures the `trace` figure (and implies it if no
//! figure was requested): a traced SPA + PPA run over a mixed profile whose
//! span/event/metric records are written to PATH as JSON lines, with a
//! phase breakdown printed as a table. See OBSERVABILITY.md.
//!
//! Absolute numbers differ from the paper (in-memory Rust engine vs 2005
//! Oracle 9i on disk); the *shapes* are what EXPERIMENTS.md records:
//! who wins, by what factor, and how the curves move with K and L.

use qp_bench::{
    bench_db, efficiency_options, ms, positive_profile, print_table, run_personalization, Scale,
};
use qp_core::{
    AnswerAlgorithm, MixedKind, PersonalizationOptions, PersonalizeRequest, Personalizer, Ranking,
    RankingKind, SelectionAlgorithm, SelectionCriterion,
};
use qp_datagen::users::{evaluate_answer, simulate_users, SimulatedUser};
use qp_datagen::{queries, ImdbScale};
use qp_sql::parse_query;
use qp_storage::Database;

fn main() {
    let mut scale = Scale::Medium;
    let mut runs = 3usize;
    let mut users = 1_000usize;
    let mut users_set = false;
    let mut write_rate = 1.0f64;
    let mut deadline_ms: Option<u64> = None;
    let mut max_rows: Option<u64> = None;
    let mut trace_json: Option<String> = None;
    let mut figures: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (small|medium|large)");
                    std::process::exit(2);
                });
            }
            "--runs" => {
                runs = args.next().and_then(|v| v.parse().ok()).unwrap_or(3);
            }
            "--deadline-ms" => {
                deadline_ms = args.next().and_then(|v| v.parse().ok());
                if deadline_ms.is_none() {
                    eprintln!("--deadline-ms expects an integer number of milliseconds");
                    std::process::exit(2);
                }
            }
            "--max-rows" => {
                max_rows = args.next().and_then(|v| v.parse().ok());
                if max_rows.is_none() {
                    eprintln!("--max-rows expects an integer row budget");
                    std::process::exit(2);
                }
            }
            "--trace-json" => {
                trace_json = args.next();
                if trace_json.is_none() {
                    eprintln!("--trace-json expects an output path");
                    std::process::exit(2);
                }
            }
            "--bench-parallel" => figures.push("bench-parallel".to_string()),
            "--bench-vectorized" => figures.push("bench-vectorized".to_string()),
            "--bench-chaos" => figures.push("bench-chaos".to_string()),
            "--bench-serving" => figures.push("bench-serving".to_string()),
            "--bench-profiles" => figures.push("bench-profiles".to_string()),
            "--bench-recovery" => figures.push("bench-recovery".to_string()),
            "--bench-maintenance" => figures.push("bench-maintenance".to_string()),
            "--write-rate" => {
                write_rate = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--write-rate expects writes per 100 requests (e.g. 1.0)");
                    std::process::exit(2);
                });
            }
            "--users" => {
                users = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--users expects a user count");
                    std::process::exit(2);
                });
                users_set = true;
            }
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        // A bare `--trace-json out.jsonl` means "run the traced workload",
        // not "regenerate every figure with tracing bolted on".
        figures.push(if trace_json.is_some() { "trace" } else { "all" }.to_string());
    }
    let all = figures.iter().any(|f| f == "all");
    let want = |f: &str| all || figures.iter().any(|x| x == f);

    println!("scale: {scale:?} ({} movies), runs: {runs}", scale.imdb().movies);

    // bench-chaos and bench-serving own their databases (the snapshot
    // store takes them by value), so they run before the shared
    // read-only block.
    if figures.iter().any(|f| f == "bench-chaos") {
        bench_chaos(bench_db(scale), runs);
    }
    if figures.iter().any(|f| f == "bench-serving") {
        bench_serving(bench_db(scale), runs, users);
    }
    if figures.iter().any(|f| f == "bench-profiles") {
        // The profile-store benchmark defaults to a million users; an
        // explicit --users overrides (check.sh smokes it at 20k).
        bench_profiles(&bench_db(scale), if users_set { users } else { 1_000_000 });
    }
    if figures.iter().any(|f| f == "bench-recovery") {
        // Like bench-profiles: a million users unless --users says less
        // (check.sh smokes it at 20k).
        bench_recovery(&bench_db(scale), if users_set { users } else { 1_000_000 });
    }
    if figures.iter().any(|f| f == "bench-maintenance") {
        // Owns its databases: each phase needs a fresh store at the same
        // deterministic seed so both sides replay identical write traffic.
        bench_maintenance(scale, runs, write_rate);
    }

    let bench_parallel_wanted = figures.iter().any(|f| f == "bench-parallel");
    let bench_vectorized_wanted = figures.iter().any(|f| f == "bench-vectorized");
    if want("fig7")
        || want("fig8")
        || want("ablation")
        || want("guardrails")
        || want("trace")
        || bench_parallel_wanted
        || bench_vectorized_wanted
    {
        let db = bench_db(scale);
        if bench_parallel_wanted {
            bench_parallel(&db, runs);
        }
        if bench_vectorized_wanted {
            bench_vectorized(&db, runs);
        }
        if want("fig7") {
            fig7(&db, runs);
        }
        if want("fig8") {
            fig8(&db, runs);
        }
        if want("ablation") {
            ablation(&db);
        }
        if want("guardrails") {
            guardrails(&db, deadline_ms, max_rows);
        }
        if want("trace") {
            trace(&db, trace_json.as_deref());
        }
    }
    // The user-study simulations run at a fixed, smaller scale: the
    // original trials also ran interactive-sized queries.
    let study_scale = match scale {
        Scale::Small => ImdbScale { movies: 1_000, ..ImdbScale::small() },
        _ => ImdbScale {
            movies: 4_000,
            actors: 6_000,
            directors: 500,
            theatres: 80,
            plays_per_theatre: 40,
            seed: 42,
        },
    };
    if ["fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"]
        .iter()
        .any(|f| want(f))
    {
        let db = qp_datagen::generate(study_scale);
        db.warm_statistics();
        let users = simulate_users(&db, 8, 6, 2005);
        if want("fig9") {
            fig9_10(&db, &users, true);
        }
        if want("fig10") {
            fig9_10(&db, &users, false);
        }
        if want("fig11") {
            fig11(&db, &users);
        }
        if want("fig12") || want("fig13") || want("fig14") {
            let (np, pe) = trial2(&db, &users);
            if want("fig12") {
                print_table(
                    "Figure 12 — average degree of difficulty (trial 2)",
                    &["group", "difficulty"],
                    &[
                        vec!["non-personalized".into(), format!("{:.2}", np.0)],
                        vec!["personalized".into(), format!("{:.2}", pe.0)],
                    ],
                );
            }
            if want("fig13") {
                print_table(
                    "Figure 13 — average coverage (trial 2)",
                    &["group", "coverage"],
                    &[
                        vec!["non-personalized".into(), format!("{:.0}%", np.1 * 100.0)],
                        vec!["personalized".into(), format!("{:.0}%", pe.1 * 100.0)],
                    ],
                );
            }
            if want("fig14") {
                print_table(
                    "Figure 14 — average answer score (trial 2)",
                    &["group", "score"],
                    &[
                        vec!["non-personalized".into(), format!("{:.2}", np.2)],
                        vec!["personalized".into(), format!("{:.2}", pe.2)],
                    ],
                );
            }
        }
        for (fig, kind) in [
            ("fig15", RankingKind::Inflationary),
            ("fig16", RankingKind::Dominant),
            ("fig17", RankingKind::Reserved),
        ] {
            if want(fig) {
                fig15_17(&db, &users, fig, kind);
            }
        }
    }
}

/// Figure 7: execution times vs K (FakeCrit selection, SPA, PPA, PPA first
/// response), L = 1, positive presence preferences only.
fn fig7(db: &Database, runs: usize) {
    let profile = positive_profile(db, 50, 7);
    let sql = "select title from MOVIE";
    let mut rows = Vec::new();
    for k in [2usize, 10, 20, 40] {
        let spa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, 1, AnswerAlgorithm::Spa))
        });
        let ppa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, 1, AnswerAlgorithm::Ppa))
        });
        let sel_time = ppa.0.selection_time;
        let first = ppa.0.first_response.unwrap_or_default();
        rows.push(vec![
            k.to_string(),
            ms(sel_time),
            ms(spa.1),
            ms(ppa.1),
            ms(first),
            ppa.0.answer.len().to_string(),
        ]);
    }
    print_table(
        "Figure 7 — times vs K (ms), L = 1, positive presence preferences",
        &["K", "selection", "SPA exec", "PPA exec", "PPA first", "|answer|"],
        &rows,
    );

    // Supplement: MEDI's tightness — and hence the first response —
    // depends on the ranking function. The inflationary bound over many
    // remaining preferences is very conservative; the dominant bound lets
    // tuples stream out almost immediately.
    let mut rows = Vec::new();
    for k in [10usize, 40] {
        let mut infl = efficiency_options(k, 1, AnswerAlgorithm::Ppa);
        infl.ranking = Ranking::new(RankingKind::Inflationary, MixedKind::CountWeighted);
        let mut dom = infl;
        dom.ranking = Ranking::new(RankingKind::Dominant, MixedKind::CountWeighted);
        let a = qp_bench::median_time(runs, || run_personalization(db, &profile, sql, &infl));
        let b = qp_bench::median_time(runs, || run_personalization(db, &profile, sql, &dom));
        rows.push(vec![
            k.to_string(),
            ms(a.0.first_response.unwrap_or_default()),
            ms(a.1),
            ms(b.0.first_response.unwrap_or_default()),
            ms(b.1),
        ]);
    }
    print_table(
        "Figure 7 supplement — PPA first response by ranking function (ms)",
        &["K", "inflationary first", "(total)", "dominant first", "(total)"],
        &rows,
    );
}

/// Figure 8: execution times vs L for K = 30.
fn fig8(db: &Database, runs: usize) {
    let profile = positive_profile(db, 50, 7);
    let sql = "select title from MOVIE";
    let k = 30;
    let mut rows = Vec::new();
    for l in [1usize, 10, 20, 30] {
        let spa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, l, AnswerAlgorithm::Spa))
        });
        let ppa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, l, AnswerAlgorithm::Ppa))
        });
        let first = ppa.0.first_response.unwrap_or_default();
        rows.push(vec![
            l.to_string(),
            ms(spa.1),
            ms(ppa.1),
            ms(first),
            ppa.0.answer.len().to_string(),
        ]);
    }
    print_table(
        "Figure 8 — times vs L (ms), K = 30",
        &["L", "SPA exec", "PPA exec", "PPA first", "|answer|"],
        &rows,
    );

    // Supplement: "SPA execution time is very high when there are absence
    // queries. On the contrary, PPA is not affected as long as their
    // number is below L" (§6.1). Sweep the number of 1–n absence
    // preferences: each costs SPA a `NOT IN` sub-query, while PPA probes
    // the failure region directly.
    let mut rows = Vec::new();
    for n_abs in [0usize, 2, 4, 8] {
        let spec = qp_datagen::ProfileSpec {
            positive_presence: 12,
            negative: n_abs,
            complex: 0,
            elastic: 0,
            seed: 7,
        };
        let profile = qp_datagen::random_profile(db, &spec);
        let k = 12 + n_abs;
        let spa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, 1, AnswerAlgorithm::Spa))
        });
        let ppa = qp_bench::median_time(runs, || {
            run_personalization(db, &profile, sql, &efficiency_options(k, 1, AnswerAlgorithm::Ppa))
        });
        rows.push(vec![n_abs.to_string(), ms(spa.1), ms(ppa.1)]);
    }
    print_table(
        "Figure 8 supplement — absence preferences hurt SPA, not PPA (ms, L = 1)",
        &["1-n absence prefs", "SPA exec", "PPA exec"],
        &rows,
    );
}

/// Ablation: SPS vs FakeCrit selection work ("experiments … have shown
/// that it is more efficient than the simple SPS algorithm", §4.1). The
/// counters are queue operations, independent of wall-clock noise.
fn ablation(db: &Database) {
    use qp_core::select::{fakecrit::fakecrit_with_stats, sps::sps_with_stats, QueryContext};
    use qp_core::{PersonalizationGraph, Profile, SelectionCriterion};
    let query = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &query).unwrap();
    let mut rows = Vec::new();
    for n in [10usize, 25, 50] {
        let profile = qp_datagen::random_profile(db, &qp_datagen::ProfileSpec::mixed(n, 3));
        let graph = PersonalizationGraph::build(&profile);
        for k in [5usize, 20] {
            let (out_f, sf) = fakecrit_with_stats(&graph, &qc, SelectionCriterion::TopK(k)).unwrap();
            let (out_s, ss) = sps_with_stats(&graph, &qc, SelectionCriterion::TopK(k)).unwrap();
            assert_eq!(out_f, out_s, "algorithms must agree");
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                format!("{}/{}/{}", sf.pushes, sf.pops, sf.expansions),
                format!("{}/{}/{}", ss.pushes, ss.pops, ss.expansions),
            ]);
        }
    }
    // a dead-end-heavy profile: joins span the whole schema but the only
    // selections sit on GENRE, so the CAST/ACTOR/PLAY/THEATRE branches
    // are dead ends — fc = 0 prunes them for FakeCrit, SPS walks them
    let sparse = Profile::parse(
        db.catalog(),
        "doi(GENRE.genre = 'drama') = (0.8, 0)\n\
         doi(GENRE.genre = 'comedy') = (0.6, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n\
         doi(MOVIE.mid = CAST.mid) = (1)\n\
         doi(CAST.aid = ACTOR.aid) = (1)\n\
         doi(MOVIE.mid = PLAY.mid) = (1)\n\
         doi(PLAY.tid = THEATRE.tid) = (1)\n",
    )
    .expect("sparse profile parses");
    let graph = PersonalizationGraph::build(&sparse);
    let (out_f, sf) = fakecrit_with_stats(&graph, &qc, SelectionCriterion::TopK(5)).unwrap();
    let (out_s, ss) = sps_with_stats(&graph, &qc, SelectionCriterion::TopK(5)).unwrap();
    assert_eq!(out_f, out_s);
    rows.push(vec![
        "sparse/dead-ends".to_string(),
        "5".to_string(),
        format!("{}/{}/{}", sf.pushes, sf.pops, sf.expansions),
        format!("{}/{}/{}", ss.pushes, ss.pops, ss.expansions),
    ]);
    print_table(
        "Ablation — FakeCrit vs SPS selection work (pushes/pops/expansions)",
        &["profile prefs", "K", "FakeCrit", "SPS"],
        &rows,
    );
}

/// Guardrails demo: the same personalized query executed unlimited, then
/// under the requested deadline / row budget. The guarded run never
/// errors — it returns the ranked prefix it could afford plus a
/// degradation report.
fn guardrails(db: &Database, deadline_ms: Option<u64>, max_rows: Option<u64>) {
    use qp_exec::QueryGuard;
    use std::time::Duration;

    let profile = positive_profile(db, 50, 7);
    let query = parse_query("select title from MOVIE").unwrap();
    let opts = efficiency_options(20, 1, AnswerAlgorithm::Ppa);

    let mut p = Personalizer::new(db);
    let full = p
        .run(PersonalizeRequest::query(&profile, &query).options(opts))
        .expect("unlimited run personalizes")
        .report;

    // With neither flag given, default to a row budget that visibly
    // truncates the unlimited answer, so the demo always shows a cut.
    let default_rows = (full.answer.len() as u64 / 2).max(1);
    let mut builder = QueryGuard::builder();
    let mut config = Vec::new();
    if let Some(ms) = deadline_ms {
        builder = builder.deadline(Duration::from_millis(ms));
        config.push(format!("deadline {ms} ms"));
    }
    if let Some(n) = max_rows {
        builder = builder.max_output_rows(n);
        config.push(format!("max rows {n}"));
    }
    if config.is_empty() {
        builder = builder.max_output_rows(default_rows);
        config.push(format!("max rows {default_rows} (default demo budget)"));
    }
    let guard = builder.build();

    let mut p = Personalizer::new(db);
    let guarded = p
        .run(PersonalizeRequest::query(&profile, &query).options(opts).guard(guard))
        .expect("guarded run degrades to Ok")
        .report;

    let rows = vec![
        vec![
            "unlimited".to_string(),
            full.answer.len().to_string(),
            full.first_response.map(ms).unwrap_or_default(),
            full.degradation.summary(),
        ],
        vec![
            config.join(", "),
            guarded.answer.len().to_string(),
            guarded.first_response.map(ms).unwrap_or_default(),
            guarded.degradation.summary(),
        ],
    ];
    print_table(
        "Guardrails — PPA under a QueryGuard (partial ranked answers, never a panic)",
        &["guard", "|answer|", "first response", "degradation"],
        &rows,
    );
}

/// Traced workload: one SPA run and one PPA run of the same query over a
/// mixed profile (positive presence + 1–n absence preferences, so every
/// PPA phase — presence rounds, absence rounds, the residual parameterized
/// probes — executes). Every span, event, and final metric value is
/// captured; with `--trace-json` they are also written as JSON lines.
/// OBSERVABILITY.md documents the record format.
fn trace(db: &Database, path: Option<&str>) {
    use qp_obs::{MemoryRecorder, MetricValue, Record, Tracer};
    use std::io::Write as _;
    use std::sync::Arc;

    let spec = qp_datagen::ProfileSpec {
        positive_presence: 12,
        negative: 4,
        complex: 0,
        elastic: 0,
        seed: 7,
    };
    let profile = qp_datagen::random_profile(db, &spec);
    let query = parse_query("select title from MOVIE").expect("traced query parses");

    let recorder = Arc::new(MemoryRecorder::new());
    let tracer = Tracer::new(recorder.clone());
    let mut p = Personalizer::new(db);
    p.set_tracer(tracer.clone());

    let k = 16;
    p.run(
        PersonalizeRequest::query(&profile, &query)
            .options(efficiency_options(k, 2, AnswerAlgorithm::Spa)),
    )
    .expect("traced SPA run personalizes");
    // parallelism 2 so the trace also shows the ppa.parallel_round spans
    // the worker pool emits around each fanned-out probe batch
    p.run(
        PersonalizeRequest::query(&profile, &query)
            .options(efficiency_options(k, 2, AnswerAlgorithm::Ppa))
            .parallelism(2),
    )
    .expect("traced PPA run personalizes");

    // Final metric values go at the end of the trace so the JSONL file is
    // self-contained: spans tell the story, metrics give the totals.
    tracer.record_metrics(&p.metrics());
    let records = recorder.take();

    if let Some(path) = path {
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        let mut out = std::io::BufWriter::new(f);
        for r in &records {
            writeln!(out, "{}", r.to_json_line()).expect("trace line writes");
        }
        out.flush().expect("trace file flushes");
        println!("wrote {} trace records to {path}", records.len());
    }

    // Phase breakdown: spans aggregated by name, in first-seen order
    // (children complete before their parents, so leaves list first).
    let mut order: Vec<&str> = Vec::new();
    let mut agg: std::collections::HashMap<&str, (u64, u64)> = std::collections::HashMap::new();
    for r in &records {
        if let Record::Span(s) = r {
            let e = agg.entry(s.name.as_str()).or_insert_with(|| {
                order.push(s.name.as_str());
                (0, 0)
            });
            e.0 += 1;
            e.1 += s.elapsed_us;
        }
    }
    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|name| {
            let (count, us) = agg[name];
            vec![name.to_string(), count.to_string(), format!("{:.3}", us as f64 / 1000.0)]
        })
        .collect();
    print_table(
        "Trace — phase breakdown (spans aggregated by name, SPA + PPA run)",
        &["span", "count", "total ms"],
        &rows,
    );

    let mut rows: Vec<Vec<String>> = records
        .iter()
        .filter_map(|r| match r {
            Record::Metric(m) => Some(vec![
                m.name.clone(),
                match &m.value {
                    MetricValue::Counter(n) => n.to_string(),
                    MetricValue::Gauge(n) => n.to_string(),
                    MetricValue::Histogram { count, sum_us, .. } => {
                        let mean = if *count == 0 { 0.0 } else { *sum_us as f64 / *count as f64 };
                        format!("count={count} mean={mean:.0}us")
                    }
                },
            ]),
            _ => None,
        })
        .collect();
    rows.sort();
    print_table("Trace — final metric values", &["metric", "value"], &rows);
}

/// Personalization options for the user study: "we chose K to be the
/// number of preferences in a user profile, and L = 2".
fn study_options(user: &SimulatedUser) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(user.stored.len().max(1)),
        l: 2,
        ranking: Ranking::new(user.philosophy, MixedKind::CountWeighted),
        algorithm: AnswerAlgorithm::Ppa,
        selection: SelectionAlgorithm::FakeCrit,
        fallback_to_original: false,
    }
}

/// Figures 9/10: average answer score per query, unchanged vs
/// personalized, for experts (fig 9) or novices (fig 10).
fn fig9_10(db: &Database, users: &[SimulatedUser], experts: bool) {
    let group: Vec<&SimulatedUser> = users.iter().filter(|u| u.expert == experts).collect();
    let mut rows = Vec::new();
    for (qi, sql) in queries::trial1_queries().iter().enumerate() {
        let query = parse_query(sql).expect("workload query parses");
        let mut unchanged = Vec::new();
        let mut personalized = Vec::new();
        for u in &group {
            let eval = u.evaluate_query(db, &query).expect("evaluator builds");
            let plain = evaluate_answer(u, &eval, &eval.all_ids, qi as u64);
            unchanged.push(plain.answer_score);
            let mut p = Personalizer::new(db);
            let report = p
                .run(PersonalizeRequest::query(&u.stored, &query).options(study_options(u)))
                .expect("personalizes")
                .report;
            let ids: Vec<u64> = report.answer.tuples.iter().filter_map(|t| t.tuple_id).collect();
            let pers = evaluate_answer(u, &eval, &ids, qi as u64);
            personalized.push(pers.answer_score);
        }
        rows.push(vec![
            format!("Q{}", qi + 1),
            format!("{:.2}", mean(&unchanged)),
            format!("{:.2}", mean(&personalized)),
        ]);
    }
    let name = if experts {
        "Figure 9 — average answer score (experts)"
    } else {
        "Figure 10 — average answer score (novice)"
    };
    print_table(name, &["query", "unchanged", "personalized"], &rows);
}

/// Figure 11: average answer score per group over all queries.
fn fig11(db: &Database, users: &[SimulatedUser]) {
    let mut rows = Vec::new();
    for experts in [true, false] {
        let group: Vec<&SimulatedUser> = users.iter().filter(|u| u.expert == experts).collect();
        let mut unchanged = Vec::new();
        let mut personalized = Vec::new();
        for (qi, sql) in queries::trial1_queries().iter().enumerate() {
            let query = parse_query(sql).expect("workload query parses");
            for u in &group {
                let eval = u.evaluate_query(db, &query).expect("evaluator builds");
                unchanged.push(evaluate_answer(u, &eval, &eval.all_ids, qi as u64).answer_score);
                let mut p = Personalizer::new(db);
                let report = p
                    .run(PersonalizeRequest::query(&u.stored, &query).options(study_options(u)))
                    .expect("personalizes")
                    .report;
                let ids: Vec<u64> = report.answer.tuples.iter().filter_map(|t| t.tuple_id).collect();
                personalized.push(evaluate_answer(u, &eval, &ids, qi as u64).answer_score);
            }
        }
        rows.push(vec![
            (if experts { "experts" } else { "users" }).to_string(),
            format!("{:.2}", mean(&unchanged)),
            format!("{:.2}", mean(&personalized)),
        ]);
    }
    print_table(
        "Figure 11 — average answer score per group",
        &["group", "unchanged query", "personalized query"],
        &rows,
    );
}

/// Trial 2: each user issues one specific-need query; half the queries
/// are personalized. Returns (difficulty, coverage, score) averages for
/// (non-personalized, personalized).
fn trial2(db: &Database, users: &[SimulatedUser]) -> ((f64, f64, f64), (f64, f64, f64)) {
    let t2 = queries::trial2_queries();
    let mut plain = (Vec::new(), Vec::new(), Vec::new());
    let mut pers = (Vec::new(), Vec::new(), Vec::new());
    for (i, u) in users.iter().enumerate() {
        let sql = t2[i % t2.len()];
        let query = parse_query(sql).expect("trial-2 query parses");
        let eval = u.evaluate_query(db, &query).expect("evaluator builds");
        if i % 2 == 0 {
            let e = evaluate_answer(u, &eval, &eval.all_ids, 1_000 + i as u64);
            plain.0.push(e.difficulty);
            plain.1.push(e.coverage);
            plain.2.push(e.answer_score);
        } else {
            let mut p = Personalizer::new(db);
            let report = p
                .run(PersonalizeRequest::query(&u.stored, &query).options(study_options(u)))
                .expect("personalizes")
                .report;
            let ids: Vec<u64> = report.answer.tuples.iter().filter_map(|t| t.tuple_id).collect();
            let e = evaluate_answer(u, &eval, &ids, 1_000 + i as u64);
            pers.0.push(e.difficulty);
            pers.1.push(e.coverage);
            pers.2.push(e.answer_score);
        }
    }
    (
        (mean(&plain.0), mean(&plain.1), mean(&plain.2)),
        (mean(&pers.0), mean(&pers.1), mean(&pers.2)),
    )
}

/// Figures 15–17: one user's tuple interest over a personalized answer,
/// against the three ranking functions' predictions.
fn fig15_17(db: &Database, users: &[SimulatedUser], fig: &str, kind: RankingKind) {
    let base = users
        .iter()
        .find(|u| u.philosophy == kind && u.expert)
        .or_else(|| users.iter().find(|u| u.philosophy == kind))
        .expect("a user with each philosophy exists");
    // These figures isolate the ranking-function shape, so the subject's
    // stored profile is their full latent preference set (the §6.3 users
    // had provided their preferences up front).
    let user = &SimulatedUser { stored: base.latent.clone(), ..base.clone() };
    let sql = queries::trial1_queries()[1]; // the comedies query
    let query = parse_query(sql).expect("query parses");
    let eval = user.evaluate_query(db, &query).expect("evaluator builds");
    let mut p = Personalizer::new(db);
    let mut opts = study_options(user);
    opts.l = 1;
    let report = p
        .run(PersonalizeRequest::query(&user.stored, &query).options(opts))
        .expect("personalizes")
        .report;
    let stored = &user.stored;

    let mut rows = Vec::new();
    let mut errs = [0.0f64; 3];
    let mut n = 0usize;
    for (ti, t) in report.answer.tuples.iter().take(22).enumerate() {
        let Some(tid) = t.tuple_id else { continue };
        let user_interest = ((user.rate_tuple(&eval, tid, 77) + 10.0) / 20.0).clamp(0.0, 1.0);
        let pos: Vec<f64> =
            t.satisfied.iter().map(|&i| report.selected[i].d_plus_peak(stored)).collect();
        let neg: Vec<f64> = t
            .failed
            .iter()
            .map(|&i| report.selected[i].d_minus(stored))
            .filter(|d| *d < 0.0)
            .collect();
        let mut row = vec![format!("{}", ti + 1), format!("{user_interest:.3}")];
        for (ki, k) in RankingKind::ALL.iter().enumerate() {
            let r = Ranking::new(*k, MixedKind::CountWeighted);
            // both the user interest and the prediction are mapped from
            // their natural ranges onto [0, 1]
            let predicted = ((r.mixed(&pos, &neg) + 1.0) / 2.0).clamp(0.0, 1.0);
            row.push(format!("{predicted:.3}"));
            errs[ki] += (predicted - user_interest).abs();
        }
        n += 1;
        rows.push(row);
    }
    let title = format!(
        "{} — tuple interest vs ranking functions (user {}, true philosophy {:?})",
        match fig {
            "fig15" => "Figure 15",
            "fig16" => "Figure 16",
            _ => "Figure 17",
        },
        user.name,
        user.philosophy
    );
    print_table(&title, &["tuple", "user", "inflationary", "dominant", "reserved"], &rows);
    if n > 0 {
        let maes: Vec<f64> = errs.iter().map(|e| e / n as f64).collect();
        let best = RankingKind::ALL[maes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)];
        println!(
            "MAE: inflationary {:.3}, dominant {:.3}, reserved {:.3} -> user interest closest to {best:?}",
            maes[0], maes[1], maes[2]
        );
    }
}

/// Serving benchmarks for the request/response API: serial vs parallel
/// PPA probe execution, and repeated-query latency with the plan and
/// preference caches warm vs bypassed per request. The measured numbers
/// are snapshotted to `BENCH_parallel.json` so regressions are diffable.
fn bench_parallel(db: &Database, runs: usize) {
    let runs = runs.max(7);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 2 {
        // A serial-vs-parallel comparison on one core measures scheduler
        // overhead, not the engine: record the skip instead of a number
        // that would read as a parallelism regression.
        println!("bench-parallel: skipped ({cpus} cpu); the serial-vs-parallel comparison needs >1");
        let json = format!(
            "{{\n  \"skipped\": true,\n  \"reason\": \"host has {cpus} cpu; serial-vs-parallel timing is meaningless without real concurrency\",\n  \"cpus\": {cpus}\n}}\n",
        );
        match std::fs::write("BENCH_parallel.json", &json) {
            Ok(()) => println!("wrote BENCH_parallel.json (skip record)"),
            Err(e) => eprintln!("warning: could not write BENCH_parallel.json: {e}"),
        }
        return;
    }
    let workers = cpus.clamp(2, 4);
    let profile = positive_profile(db, 50, 7);
    let opts = efficiency_options(20, 1, AnswerAlgorithm::Ppa);

    // --- serial vs parallel PPA -----------------------------------------
    // A full-table personalization, so every round carries a large probe
    // batch. Caches are bypassed per request so the comparison isolates
    // probe execution; the answers must stay byte-identical. Speedup
    // tracks the machine: on a single-core host the parallel run can at
    // best tie (the snapshot records `cpus` for exactly that reason).
    let scan_sql = "select title from MOVIE";
    let exec_run = |w: usize| {
        let mut p = Personalizer::new(db);
        qp_bench::median_time(runs, || {
            p.run(
                PersonalizeRequest::sql(&profile, scan_sql)
                    .options(opts)
                    .parallelism(w)
                    .plan_cache(false)
                    .preference_cache(false),
            )
            .expect("personalizes")
        })
    };
    let (serial_out, serial) = exec_run(1);
    // Scheduling counters for the parallel leg: the pool keeps
    // process-global morsel/steal totals, so the delta around the run is
    // exactly what this workload dispatched (the serial leg contributes
    // nothing — parallelism 1 never touches the pool).
    let pool_before = qp_exec::pool::totals();
    let (parallel_out, parallel) = exec_run(workers);
    let pool_after = qp_exec::pool::totals();
    let (morsels, steals) =
        (pool_after.morsels - pool_before.morsels, pool_after.steals - pool_before.steals);
    assert_eq!(
        serial_out.report.answer, parallel_out.report.answer,
        "parallel PPA must not change the ranked answer"
    );
    let parallel_speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    println!(
        "parallel leg scheduling: {morsels} morsels dispatched, {steals} stolen \
         ({:.1}% rebalanced)",
        if morsels == 0 { 0.0 } else { steals as f64 * 100.0 / morsels as f64 }
    );

    // --- index point lookup ---------------------------------------------
    // The access path repeated point queries ride on: `mid = k` is served
    // by the persistent hash index (a handful of fetched rows) where the
    // equivalent range predicate still walks the whole table. This is the
    // per-request execution floor the caches sit on top of.
    let engine = qp_exec::Engine::new();
    let probe_runs = runs.max(50);
    let (_, scan) = qp_bench::median_time(probe_runs, || {
        engine.execute_sql(db, "select M.title from MOVIE M where M.mid >= 4242 and M.mid <= 4242")
    });
    let (_, probe) = qp_bench::median_time(probe_runs, || {
        engine.execute_sql(db, "select M.title from MOVIE M where M.mid = 4242")
    });
    let probe_speedup = scan.as_secs_f64() / probe.as_secs_f64().max(1e-9);
    // sub-millisecond rows need more digits than `ms` gives
    let msp = |d: std::time::Duration| format!("{:.4}", d.as_secs_f64() * 1e3);

    // --- cold vs warm caches --------------------------------------------
    // One Personalizer serving the same request repeatedly, the
    // multi-user steady state: an index-driven point lookup ("this
    // movie's page, personalized for this user") with the full
    // criticality-based selection. "Cold" bypasses both caches every
    // time; "warm" reuses the cached plans and selection, so what remains
    // is PPA's per-round composition and the (index-fast) execution
    // itself. The honest ratio is modest: this engine parses and plans in
    // microseconds, so the cacheable fixed costs never dominate the way
    // they would under an exhaustive cost-based optimizer — the snapshot
    // records the measured value rather than assuming one.
    let point_sql = "select M.title from MOVIE M where M.mid = 4242";
    let serve_opts = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(20),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    let mut p = Personalizer::new(db);
    let cold_req = || {
        PersonalizeRequest::sql(&profile, point_sql)
            .options(serve_opts)
            .plan_cache(false)
            .preference_cache(false)
    };
    let warm_req = || PersonalizeRequest::sql(&profile, point_sql).options(serve_opts);
    let (_, cold) = qp_bench::median_time(runs, || p.run(cold_req()).expect("personalizes"));
    p.run(warm_req()).expect("warming run personalizes");
    let (warm_out, warm) = qp_bench::median_time(runs, || p.run(warm_req()).expect("personalizes"));
    assert!(warm_out.cache.plan_hits > 0, "warm runs must hit the plan cache");
    assert_eq!(warm_out.cache.pref_hits, 1, "warm runs must hit the preference cache");
    let cache_speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);

    print_table(
        "Serving — parallel PPA and cache reuse (ms, medians)",
        &["measurement", "baseline", "optimized", "speedup"],
        &[
            vec![
                format!("PPA serial vs {workers} workers ({cpus} cpus)"),
                ms(serial),
                ms(parallel),
                format!("{parallel_speedup:.2}x"),
            ],
            vec![
                "point lookup, range scan vs index probe".into(),
                msp(scan),
                msp(probe),
                format!("{probe_speedup:.2}x"),
            ],
            vec![
                "repeat query, cold vs warm caches".into(),
                msp(cold),
                msp(warm),
                format!("{cache_speedup:.2}x"),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"workload\": {{\"movies\": {}, \"preferences\": 50, \"k\": 20, \"l\": 1, \"runs\": {runs}, \"cpus\": {cpus}}},\n  \
           \"parallel_ppa\": {{\"workers\": {workers}, \"serial_ms\": {}, \"parallel_ms\": {}, \"speedup\": {:.3}, \"morsels\": {morsels}, \"steals\": {steals}}},\n  \
           \"point_lookup\": {{\"range_scan_ms\": {}, \"index_probe_ms\": {}, \"speedup\": {:.3}}},\n  \
           \"cache_reuse\": {{\"cold_ms\": {}, \"warm_ms\": {}, \"speedup\": {:.3}, \"plan_hits\": {}, \"pref_hits\": {}}}\n}}\n",
        db.table_by_name("MOVIE").map_or(0, |t| t.len()),
        ms(serial),
        ms(parallel),
        parallel_speedup,
        msp(scan),
        msp(probe),
        probe_speedup,
        msp(cold),
        msp(warm),
        cache_speedup,
        warm_out.cache.plan_hits,
        warm_out.cache.pref_hits,
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("wrote BENCH_parallel.json"),
        Err(e) => eprintln!("warning: could not write BENCH_parallel.json: {e}"),
    }
}

/// Vectorized-engine benchmark: the batch engine against the
/// `QP_ROW_ENGINE` row-at-a-time oracle, first on the raw
/// scan+filter+join workload, then on an end-to-end PPA personalization
/// whose per-round probes the batch engine collapses into set-fetch
/// executions. Both comparisons assert byte-identical results before
/// trusting either time; the snapshot lands in `BENCH_vectorized.json`
/// with the host's `cpus` (the comparison is serial on both sides, but
/// recording the machine keeps snapshots diffable across hosts).
fn bench_vectorized(db: &Database, runs: usize) {
    use qp_core::answer::ppa::ppa;
    use qp_core::select::{fakecrit::fakecrit, QueryContext};
    use qp_core::PersonalizationGraph;

    let runs = runs.max(7);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut batch_engine = qp_exec::Engine::new();
    batch_engine.set_row_engine(false);
    let mut row_engine = qp_exec::Engine::new();
    row_engine.set_row_engine(true);

    // --- scan + filter + join -------------------------------------------
    // A selective filter over the movie table joined against a derived
    // genre set (derived so the planner takes the hash-join path instead
    // of an index join): the scan and filter run vectorized over borrowed
    // column slices, the join probes whole batches.
    let sfj_sql = "select M.title, M.year from MOVIE M, \
                   (select mid from GENRE where genre = 'drama') G \
                   where M.mid = G.mid and M.year >= 1990 and M.duration < 120";
    let sfj = parse_query(sfj_sql).unwrap();
    let (row_rs, row_sfj) = qp_bench::min_time(runs, || row_engine.execute(db, &sfj).unwrap());
    let (batch_rs, batch_sfj) =
        qp_bench::min_time(runs, || batch_engine.execute(db, &sfj).unwrap());
    assert_eq!(batch_rs, row_rs, "engines must agree on the scan+filter+join result");
    let sfj_speedup = row_sfj.as_secs_f64() / batch_sfj.as_secs_f64().max(1e-9);

    // --- end-to-end PPA --------------------------------------------------
    // Full-table personalization so every presence/absence round carries a
    // large probe batch; the batch engine materializes each preference
    // query once and probes it by hash lookup where the row oracle runs
    // one parameterized execution per tuple.
    let profile = positive_profile(db, 50, 7);
    let graph = PersonalizationGraph::build(&profile);
    let initial = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &initial).expect("query context");
    let selected =
        fakecrit(&graph, &qc, SelectionCriterion::TopK(20)).expect("preference selection");
    let ranking = Ranking::default();
    let (row_ans, row_ppa) = qp_bench::min_time(runs, || {
        ppa(db, &mut row_engine, &initial, &profile, &selected, 1, &ranking).expect("row PPA")
    });
    let (batch_ans, batch_ppa) = qp_bench::min_time(runs, || {
        ppa(db, &mut batch_engine, &initial, &profile, &selected, 1, &ranking).expect("batch PPA")
    });
    assert_eq!(
        batch_ans.0, row_ans.0,
        "batched PPA probes must not change the personalized answer"
    );
    let ppa_speedup = row_ppa.as_secs_f64() / batch_ppa.as_secs_f64().max(1e-9);

    print_table(
        "Vectorized execution — batch engine vs row oracle (ms, min of runs)",
        &["measurement", "row", "batch", "speedup"],
        &[
            vec![
                "scan+filter+join".into(),
                ms(row_sfj),
                ms(batch_sfj),
                format!("{sfj_speedup:.2}x"),
            ],
            vec![
                "PPA end-to-end (k=20, l=1)".into(),
                ms(row_ppa),
                ms(batch_ppa),
                format!("{ppa_speedup:.2}x"),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"workload\": {{\"movies\": {}, \"preferences\": 50, \"k\": 20, \"l\": 1, \"runs\": {runs}, \"cpus\": {cpus}}},\n  \
           \"scan_filter_join\": {{\"row_ms\": {}, \"batch_ms\": {}, \"speedup\": {:.3}}},\n  \
           \"ppa\": {{\"row_ms\": {}, \"batch_ms\": {}, \"speedup\": {:.3}, \"row_probes\": {}, \"batch_probes\": {}}}\n}}\n",
        db.table_by_name("MOVIE").map_or(0, |t| t.len()),
        ms(row_sfj),
        ms(batch_sfj),
        sfj_speedup,
        ms(row_ppa),
        ms(batch_ppa),
        ppa_speedup,
        row_ans.1.parameterized_queries,
        batch_ans.1.parameterized_queries,
    );
    match std::fs::write("BENCH_vectorized.json", &json) {
        Ok(()) => println!("wrote BENCH_vectorized.json"),
        Err(e) => eprintln!("warning: could not write BENCH_vectorized.json: {e}"),
    }
}

/// Profile-store benchmark at (by default) a million users: encoded
/// footprint, registration throughput, lookup tail latency, and the
/// cold-vs-warm gap the per-user selection memo buys. The snapshot lands
/// in `BENCH_profiles.json`.
///
/// "Cold" is a user's first `select title from MOVIE` resolution: blob
/// decode + personalization-graph build + selection algorithm. "Warm" is
/// the same request again, answered from the store's per-user memo.
fn bench_profiles(db: &Database, users: usize) {
    use qp_core::store::{ProfileStore, UserId};
    use qp_datagen::ProfilePool;
    use std::time::Instant;

    const PREFS_PER_PROFILE: usize = 8;
    let catalog = db.catalog();
    let pool = ProfilePool::build(db);
    let store = ProfileStore::new();

    println!("bench-profiles: registering {users} pooled profiles…");
    let start = Instant::now();
    for u in 0..users as u64 {
        store
            .register(UserId(u), &pool.profile(catalog, u, PREFS_PER_PROFILE))
            .expect("in-memory registration cannot fail");
    }
    let register = start.elapsed();
    let register_rate = users as f64 / register.as_secs_f64().max(1e-9);
    let bytes_per_profile = store.encoded_bytes() as f64 / store.len().max(1) as f64;

    // Lookup tail latency over random ids (SplitMix-scrambled so the
    // walk doesn't match insertion order).
    let samples = 10_000.min(users);
    let mut lookup_ns: Vec<u64> = Vec::with_capacity(samples);
    let mut x = 0x9E37_79B9u64;
    for _ in 0..samples {
        x = x.wrapping_mul(0xD120_0000_1571_27C1).wrapping_add(0x2545_F491_4F6C_DD1D);
        let uid = UserId((x >> 16) % users as u64);
        let t = Instant::now();
        let handle = store.get(uid);
        lookup_ns.push(t.elapsed().as_nanos() as u64);
        assert!(handle.is_some(), "sampled id within the registered range");
    }
    lookup_ns.sort_unstable();
    let p50_ns = lookup_ns[samples / 2];
    let p99_ns = lookup_ns[samples * 99 / 100];

    // Cold vs warm selection over a sample of users. A fresh Personalizer
    // per user keeps its LRU out of the cold path; the warm hit comes
    // from the store memo, which both personalizers share.
    let query = parse_query("select title from MOVIE").unwrap();
    let options = efficiency_options(5, 1, AnswerAlgorithm::Ppa);
    let store = std::sync::Arc::new(store);
    let sel_samples = 200.min(users);
    let mut cold_us: Vec<u64> = Vec::with_capacity(sel_samples);
    let mut warm_us: Vec<u64> = Vec::with_capacity(sel_samples);
    for i in 0..sel_samples as u64 {
        let uid = UserId((i * 7919) % users as u64);
        let p = Personalizer::new(db).with_profile_store(std::sync::Arc::clone(&store));
        let t = Instant::now();
        let cold = p.select_preferences_for_user(uid, &query, &options).expect("cold selection");
        cold_us.push(t.elapsed().as_micros() as u64);
        let t = Instant::now();
        let warm = p.select_preferences_for_user(uid, &query, &options).expect("warm selection");
        warm_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(cold.len(), warm.len(), "memo must replay the same selection");
    }
    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let cold_p50 = cold_us[sel_samples / 2];
    let warm_p50 = warm_us[sel_samples / 2];
    let speedup = cold_p50 as f64 / (warm_p50 as f64).max(1e-9);

    print_table(
        &format!("Profile store — {users} users, {PREFS_PER_PROFILE} selections each"),
        &["measurement", "value"],
        &[
            vec!["bytes / profile (encoded)".into(), format!("{bytes_per_profile:.1}")],
            vec!["register throughput".into(), format!("{register_rate:.0} profiles/s")],
            vec!["lookup p50 / p99".into(), format!("{p50_ns} ns / {p99_ns} ns")],
            vec!["selection cold p50".into(), format!("{cold_p50} µs")],
            vec!["selection warm p50 (memo)".into(), format!("{warm_p50} µs")],
            vec!["cold / warm speedup".into(), format!("{speedup:.1}x")],
        ],
    );

    let json = format!(
        "{{\n  \"workload\": {{\"users\": {users}, \"prefs_per_profile\": {PREFS_PER_PROFILE}, \"movies\": {}}},\n  \
           \"encoding\": {{\"total_bytes\": {}, \"dict_bytes\": {}, \"bytes_per_profile\": {bytes_per_profile:.2}}},\n  \
           \"register\": {{\"total_ms\": {}, \"profiles_per_sec\": {register_rate:.0}}},\n  \
           \"lookup\": {{\"samples\": {samples}, \"p50_ns\": {p50_ns}, \"p99_ns\": {p99_ns}}},\n  \
           \"selection\": {{\"sampled_users\": {sel_samples}, \"cold_p50_us\": {cold_p50}, \"warm_p50_us\": {warm_p50}, \"speedup\": {speedup:.2}}}\n}}\n",
        db.table_by_name("MOVIE").map_or(0, |t| t.len()),
        store.encoded_bytes(),
        store.dict_bytes(),
        register.as_millis(),
    );
    match std::fs::write("BENCH_profiles.json", &json) {
        Ok(()) => println!("wrote BENCH_profiles.json"),
        Err(e) => eprintln!("warning: could not write BENCH_profiles.json: {e}"),
    }
}

/// Durability benchmark: what the segment log costs at registration
/// time, and what crash recovery costs at startup. Four legs:
///
/// 1. in-memory registration (the no-durability baseline),
/// 2. durable registration under the default batch-fsync policy,
/// 3. recovery replaying the full log, then recovery from a snapshot
///    (after a checkpoint truncates the log),
/// 4. a torn-tail recovery (the live segment cut mid-record).
///
/// Every recovered store's digest is checked against the store that
/// wrote the files — "recovered" means byte-identical, not just "no
/// error". The snapshot lands in `BENCH_recovery.json`.
fn bench_recovery(db: &Database, users: usize) {
    use qp_core::store::{FsyncPolicy, PersistOptions, ProfileStore, UserId};
    use qp_datagen::ProfilePool;
    use std::time::Instant;

    const PREFS_PER_PROFILE: usize = 6;
    let catalog = db.catalog();
    let pool = ProfilePool::build(db);
    let dir = std::env::temp_dir().join(format!("qp_bench_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = || {
        PersistOptions::default()
            .fsync(FsyncPolicy::Batch)
            .checkpoint_bytes(0) // explicit checkpoints only: leg 3 owns the timing
    };

    // Leg 1: in-memory baseline.
    println!("bench-recovery: registering {users} profiles in memory…");
    let mem = {
        let store = ProfileStore::new();
        let t = Instant::now();
        for u in 0..users as u64 {
            store
                .register(UserId(u), &pool.profile(catalog, u, PREFS_PER_PROFILE))
                .expect("in-memory registration cannot fail");
        }
        t.elapsed()
    };
    let mem_rate = users as f64 / mem.as_secs_f64().max(1e-9);

    // Leg 2: durable registration (batch fsync, the serving default).
    println!("bench-recovery: registering {users} profiles durably…");
    let (durable, wal_bytes, digest) = {
        let store = ProfileStore::open_with(&dir, options()).expect("fresh directory");
        let t = Instant::now();
        for u in 0..users as u64 {
            store
                .register(UserId(u), &pool.profile(catalog, u, PREFS_PER_PROFILE))
                .expect("healthy disk");
        }
        store.flush().expect("flush");
        (t.elapsed(), store.wal_bytes(), store.digest())
    };
    let durable_rate = users as f64 / durable.as_secs_f64().max(1e-9);
    let overhead = mem_rate / durable_rate.max(1e-9);

    // Leg 3a: recovery replaying the full log.
    let t = Instant::now();
    let store = ProfileStore::open_with(&dir, options()).expect("recover from log");
    let wal_recovery_ms = t.elapsed().as_millis() as u64;
    let wal_report = store.recovery().expect("durable store").clone();
    let wal_digest_ok = store.digest() == digest;
    assert!(wal_digest_ok, "log recovery must reproduce the store byte-identically");

    // Leg 3b: checkpoint, then recovery from the snapshot.
    let stats = store.checkpoint().expect("checkpoint").expect("durable store");
    drop(store);
    let t = Instant::now();
    let store = ProfileStore::open_with(&dir, options()).expect("recover from snapshot");
    let snap_recovery_ms = t.elapsed().as_millis() as u64;
    let snap_report = store.recovery().expect("durable store").clone();
    let snap_digest_ok = store.digest() == digest;
    assert!(snap_digest_ok, "snapshot recovery must reproduce the store byte-identically");

    // Leg 4: torn tail — append a few thousand more registrations, cut
    // the live segment mid-record, and recover what survives.
    let extra = 5_000.min(users) as u64;
    for u in 0..extra {
        store
            .register(UserId(users as u64 + u), &pool.profile(catalog, u, PREFS_PER_PROFILE))
            .expect("healthy disk");
    }
    store.flush().expect("flush");
    drop(store);
    let segment = qp_storage::persist::list_logs(&dir)
        .expect("list segments")
        .pop()
        .expect("live segment")
        .1;
    let len = std::fs::metadata(&segment).expect("stat segment").len();
    qp_storage::persist::truncate_log(&segment, len.saturating_sub(13))
        .expect("tear the tail");
    let t = Instant::now();
    let store = ProfileStore::open_with(&dir, options()).expect("torn tail still recovers");
    let torn_recovery_ms = t.elapsed().as_millis() as u64;
    let torn_report = store.recovery().expect("durable store").clone();
    assert!(torn_report.tail_repaired, "the cut record must be detected and dropped");
    assert!(store.len() >= users, "only tail records may be lost");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    print_table(
        &format!("Durability & recovery — {users} users, {PREFS_PER_PROFILE} selections each"),
        &["measurement", "value"],
        &[
            vec!["register (in-memory)".into(), format!("{mem_rate:.0} profiles/s")],
            vec!["register (durable, batch fsync)".into(), format!("{durable_rate:.0} profiles/s")],
            vec!["durability overhead".into(), format!("{overhead:.2}x")],
            vec!["segment log size".into(), format!("{:.1} MiB", wal_bytes as f64 / (1 << 20) as f64)],
            vec!["snapshot size".into(), format!("{:.1} MiB", stats.snapshot_bytes as f64 / (1 << 20) as f64)],
            vec![
                "recovery (log replay)".into(),
                format!("{wal_recovery_ms} ms, {} records", wal_report.records_kept),
            ],
            vec!["recovery (snapshot)".into(), format!("{snap_recovery_ms} ms")],
            vec![
                "recovery (torn tail)".into(),
                format!("{torn_recovery_ms} ms, {} dropped", torn_report.records_dropped),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"workload\": {{\"users\": {users}, \"prefs_per_profile\": {PREFS_PER_PROFILE}}},\n  \
           \"register\": {{\"memory_per_sec\": {mem_rate:.0}, \"durable_per_sec\": {durable_rate:.0}, \"overhead\": {overhead:.3}}},\n  \
           \"log\": {{\"wal_bytes\": {wal_bytes}, \"snapshot_bytes\": {}}},\n  \
           \"recovery_log\": {{\"ms\": {wal_recovery_ms}, \"records\": {}, \"bytes_replayed\": {}, \"digest_match\": {wal_digest_ok}}},\n  \
           \"recovery_snapshot\": {{\"ms\": {snap_recovery_ms}, \"snapshot_users\": {}, \"tail_records\": {}, \"digest_match\": {snap_digest_ok}}},\n  \
           \"recovery_torn_tail\": {{\"ms\": {torn_recovery_ms}, \"tail_repaired\": {}, \"records_dropped\": {}, \"bytes_dropped\": {}}}\n}}\n",
        stats.snapshot_bytes,
        wal_report.records_kept,
        wal_report.bytes_replayed,
        snap_report.snapshot_users,
        snap_report.records_kept,
        torn_report.tail_repaired,
        torn_report.records_dropped,
        torn_report.bytes_dropped,
    );
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery.json"),
        Err(e) => eprintln!("warning: could not write BENCH_recovery.json: {e}"),
    }
}

/// Robustness benchmark: a four-thread serving fleet over a snapshot
/// store with a shared resilience bundle, measured steady and then under
/// the seeded chaos schedule ([`qp_storage::ChaosPlan::serving_default`]).
/// The numbers of interest are the *rates*: how much throughput the fault
/// storm costs, and where the affected requests went (degraded answers,
/// typed errors, breaker short-circuits, retries) — never panics. The
/// snapshot lands in `BENCH_robustness.json`.
///
/// Without `--features failpoints` the chaos phase arms nothing; the
/// snapshot records `"failpoints": false` so a diff can't silently compare
/// a faultless "chaos" run against a real one.
fn bench_chaos(db: Database, runs: usize) {
    use qp_core::{AdmissionConfig, BreakerConfig, PrefError, Resilience, RetryPolicy};
    use qp_storage::failpoint::FailScenario;
    use qp_storage::{ChaosPlan, SnapshotStore};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let threads = 4usize;
    let per_thread = runs.max(3) * 10;
    let seed = 42u64;
    let queries = [
        "select title from MOVIE",
        "select M.title from MOVIE M where M.mid = 4242",
        "select title from MOVIE where year > 1990",
    ];

    let store = Arc::new(SnapshotStore::new(db));
    let movies = store.snapshot().table_by_name("MOVIE").map_or(0, |t| t.len());
    let profile = positive_profile(&store.snapshot(), 50, 7);

    #[derive(Default)]
    struct Tally {
        complete: AtomicU64,
        degraded: AtomicU64,
        errored: AtomicU64,
        shed: AtomicU64,
        retries: AtomicU64,
        short_circuited: AtomicU64,
    }

    // The soak test's schedule is deliberately hot (it wants every
    // degradation path exercised); a full-scan PPA request passes hundreds
    // of failpoint sites, so at those rates nearly every request faults
    // and the breaker collapses to short-circuits. The benchmark wants
    // the *partial-degradation* regime instead: rates an order of
    // magnitude milder, where most requests complete and the fleet pays
    // for the faults it absorbs.
    // Rates are per site *pass*: a PPA request crosses its sites hundreds
    // of times, so a few basis points already touch most requests, while
    // SPA crosses `spa.execute` exactly once per request and needs a
    // higher per-pass rate for a comparable per-request fault chance.
    // SPA faults are transient typed errors, so they are what the fleet's
    // retry policy absorbs — the bench must provoke some or the reported
    // retry counts are vacuous.
    let bench_plan = || {
        ChaosPlan::new(seed)
            .error("exec.scan", 3)
            .error("ppa.presence", 5)
            .error("ppa.absence", 5)
            .error("spa.execute", 500)
            .error("cache.plan.shard", 3)
            .error("cache.pref.shard", 3)
            .panic("exec.pool.spawn", 3)
    };

    // The serving defaults assume wall-clock-scale traffic; this workload
    // finishes in tens of milliseconds, so the breaker gets a cooldown on
    // the workload's own timescale and a trip ratio that only sustained
    // failure reaches — the benchmark measures the fleet absorbing
    // faults, with the breaker as backstop rather than first responder.
    let bench_bundle = || {
        Resilience::new()
            .with_admission(AdmissionConfig::default())
            .with_breaker(BreakerConfig {
                window: 32,
                min_samples: 16,
                trip_ratio: 0.9,
                cooldown: std::time::Duration::from_millis(5),
                forced_open: false,
            })
            .with_retry(RetryPolicy::quick(seed))
    };

    let run_phase = |with_chaos: bool| -> (std::time::Duration, Tally) {
        // Held for the phase; dropping it disarms every site (a no-op
        // struct without the failpoints feature).
        let _scenario = FailScenario::setup();
        if with_chaos {
            bench_plan().arm();
        }
        let bundle = Arc::new(bench_bundle());
        let tally = Tally::default();
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (store, profile, bundle, tally, queries) =
                    (&store, &profile, &bundle, &tally, &queries);
                scope.spawn(move || {
                    let mut p = Personalizer::serving(Arc::clone(store));
                    p.set_resilience(Some(Arc::clone(bundle)));
                    for i in 0..per_thread {
                        let sql = queries[(t + i) % queries.len()];
                        // Every third request runs SPA: PPA absorbs
                        // injected faults as degradations and never
                        // surfaces a retryable error, so an all-PPA fleet
                        // would report zero retries no matter how hard the
                        // chaos hits. SPA faults are transient typed
                        // errors — exactly what the retry policy is for.
                        let algorithm = if i % 3 == 2 {
                            AnswerAlgorithm::Spa
                        } else {
                            AnswerAlgorithm::Ppa
                        };
                        let req = PersonalizeRequest::sql(profile, sql)
                            .options(efficiency_options(20, 1, algorithm))
                            .parallelism(2);
                        match p.run(req) {
                            Ok(out) => {
                                tally
                                    .retries
                                    .fetch_add(u64::from(out.resilience.retries), Ordering::Relaxed);
                                if out.resilience.short_circuited {
                                    tally.short_circuited.fetch_add(1, Ordering::Relaxed);
                                }
                                if out.is_complete() {
                                    tally.complete.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(PrefError::Overloaded { .. }) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                tally.errored.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        (start.elapsed(), tally)
    };

    let total = (threads * per_thread) as u64;
    let (steady_t, steady) = run_phase(false);
    let (chaos_t, chaos) = run_phase(true);
    let failpoints = cfg!(feature = "failpoints");
    if !failpoints {
        eprintln!(
            "note: compiled without --features failpoints; the chaos phase injected nothing"
        );
    }

    let rps = |d: std::time::Duration| total as f64 / d.as_secs_f64().max(1e-9);
    let row = |label: &str, t: std::time::Duration, s: &Tally| {
        vec![
            label.to_string(),
            format!("{:.1}", rps(t)),
            s.complete.load(Ordering::Relaxed).to_string(),
            s.degraded.load(Ordering::Relaxed).to_string(),
            s.errored.load(Ordering::Relaxed).to_string(),
            s.shed.load(Ordering::Relaxed).to_string(),
            s.short_circuited.load(Ordering::Relaxed).to_string(),
            s.retries.load(Ordering::Relaxed).to_string(),
        ]
    };
    print_table(
        &format!(
            "Robustness — {threads} threads x {per_thread} requests, seed {seed}, failpoints {failpoints}"
        ),
        &["phase", "req/s", "complete", "degraded", "errored", "shed", "short-circuit", "retries"],
        &[row("steady", steady_t, &steady), row("chaos", chaos_t, &chaos)],
    );

    let phase_json = |t: std::time::Duration, s: &Tally| {
        format!(
            "{{\"elapsed_ms\": {:.1}, \"requests_per_s\": {:.2}, \"complete\": {}, \"degraded\": {}, \
              \"errored\": {}, \"shed\": {}, \"short_circuited\": {}, \"retries\": {}}}",
            t.as_secs_f64() * 1e3,
            rps(t),
            s.complete.load(Ordering::Relaxed),
            s.degraded.load(Ordering::Relaxed),
            s.errored.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            s.short_circuited.load(Ordering::Relaxed),
            s.retries.load(Ordering::Relaxed),
        )
    };
    // Both phases offer the identical fixed load (same thread count, same
    // per-thread request count), so the honest retained-completeness
    // metric is a ratio of *counts*: the fraction of complete answers the
    // fleet still produces under chaos. A per-second ratio would be
    // misleading here — degraded requests cut rounds early and finish
    // cheaper than complete ones, so chaos can *raise* raw throughput
    // while destroying answers.
    let completes =
        |s: &Tally| s.complete.load(Ordering::Relaxed) as f64;
    let json = format!(
        "{{\n  \"workload\": {{\"movies\": {movies}, \"preferences\": 50, \"k\": 20, \"l\": 1, \
           \"threads\": {threads}, \"requests\": {total}, \"seed\": {seed}, \"failpoints\": {failpoints}}},\n  \
           \"steady\": {},\n  \"chaos\": {},\n  \
           \"complete_fraction_retained\": {:.3}\n}}\n",
        phase_json(steady_t, &steady),
        phase_json(chaos_t, &chaos),
        completes(&chaos) / completes(&steady).max(1.0),
    );
    match std::fs::write("BENCH_robustness.json", &json) {
        Ok(()) => println!("wrote BENCH_robustness.json"),
        Err(e) => eprintln!("warning: could not write BENCH_robustness.json: {e}"),
    }
}

/// Wire-protocol load generator: an in-process [`qp_server::Server`]
/// serving a snapshot store, `users` simulated users registering
/// generated profiles over the wire, then a worker fleet hammering it
/// through `qp-client` connections. Two legs over fresh server instances:
/// steady, and chaos — the network fault schedule
/// ([`qp_storage::ChaosPlan::wire_default`]) plus a mild engine schedule
/// plus deliberately misbehaving clients (stalled frames, torn frames).
/// Latency percentiles come from completed requests only; severed
/// connections are counted and reconnected. The snapshot lands in
/// `BENCH_serving.json`.
///
/// Without `--features failpoints` the chaos leg still runs the
/// misbehaving clients (they are real traffic, not injection) but arms no
/// failpoints; the snapshot records `"failpoints": false`.
fn bench_serving(db: Database, runs: usize, users: usize) {
    use qp_client::{Client, ClientError, ErrorCode, PersonalizeCall};
    use qp_server::{Server, ServerConfig};
    use qp_storage::failpoint::FailScenario;
    use qp_storage::{ChaosPlan, SnapshotStore};
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    let threads = 4usize;
    let per_thread = runs.max(3) * 10;
    let seed = 42u64;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queries = [
        "select title from MOVIE",
        "select M.title from MOVIE M where M.mid = 4242",
        "select title from MOVIE where year > 1990",
    ];

    let store = Arc::new(SnapshotStore::new(db));
    let movies = store.snapshot().table_by_name("MOVIE").map_or(0, |t| t.len());
    // Profile text is generated once and replayed identically in both
    // legs; registration itself goes over the wire, so it is measured
    // server traffic, not setup.
    let profiles: Vec<String> = {
        let db = store.snapshot();
        (0..users)
            .map(|u| {
                qp_datagen::random_profile(
                    &db,
                    &qp_datagen::ProfileSpec::mixed(6, seed.wrapping_add(u as u64)),
                )
                .to_dsl(db.catalog())
            })
            .collect()
    };

    #[derive(Default)]
    struct Tally {
        complete: AtomicU64,
        degraded: AtomicU64,
        errored: AtomicU64,
        shed: AtomicU64,
        severed: AtomicU64,
        retries: AtomicU64,
    }

    struct Leg {
        register: Duration,
        elapsed: Duration,
        tally: Tally,
        latencies_us: Vec<u64>,
        server_counters: Vec<(String, u64)>,
        drained: usize,
        aborted: usize,
    }

    let percentile = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };

    // Personalized answers over broad queries carry tens of thousands of
    // ranked tuples (K bounds the *preferences* used, not the answer), so
    // the serving fleet negotiates a frame limit sized for them. With the
    // protocol default the server would answer `answer_too_large`.
    let max_frame = 8 * 1024 * 1024;
    let connect = |addr: std::net::SocketAddr| {
        Client::connect(addr, Duration::from_secs(10)).map(|c| c.with_max_frame(max_frame))
    };

    let run_leg = |with_chaos: bool| -> Leg {
        let _scenario = FailScenario::setup();
        let config = ServerConfig { max_frame, ..ServerConfig::default() };
        let mut server = Server::start(config, Arc::clone(&store)).expect("bind server");
        let addr = server.local_addr();

        // Registration storm first — every user's profile goes over the
        // wire before any chaos arms, so both legs start from the same
        // registered population.
        let reg_start = Instant::now();
        let mut registrar = connect(addr).expect("registrar connects");
        for (u, dsl) in profiles.iter().enumerate() {
            registrar
                .register_profile(&format!("u{u}"), dsl)
                .expect("profile registers over the wire");
        }
        let register = reg_start.elapsed();
        drop(registrar);

        let stop_abuse = Arc::new(AtomicBool::new(false));
        let mut abuse = Vec::new();
        if with_chaos {
            // Engine faults an order of magnitude milder than the soak
            // (most requests should complete), plus the wire schedule.
            // `spa.execute` runs hotter because SPA crosses it only once
            // per request; its faults are the transient errors the
            // server-side retry policy exists to absorb.
            ChaosPlan::new(seed)
                .error("exec.scan", 3)
                .error("ppa.presence", 5)
                .error("ppa.absence", 5)
                .error("spa.execute", 500)
                .panic("exec.pool.spawn", 3)
                .arm();
            ChaosPlan::wire_default(seed).arm();

            // Misbehaving clients are real traffic, armed or not: one
            // stalls mid-frame until the server's deadline reaps it, one
            // tears frames and hangs up.
            for tear in [false, true] {
                let stop = Arc::clone(&stop_abuse);
                abuse.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                            s.write_all(&64u32.to_be_bytes()).ok();
                            if tear {
                                s.write_all(b"{\"op\":\"pi").ok();
                            } else {
                                std::thread::sleep(Duration::from_millis(100));
                            }
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }));
            }
        }

        let tally = Tally::default();
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (tally, latencies, queries, profiles, connect) =
                    (&tally, &latencies, &queries, &profiles, &connect);
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    let mut client: Option<Client> = None;
                    for i in 0..per_thread {
                        if client.is_none() {
                            match connect(addr) {
                                Ok(c) => client = Some(c),
                                Err(_) => {
                                    tally.severed.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                            }
                        }
                        let c = client.as_mut().expect("connected above");
                        // Spread the fleet across the registered users
                        // and rotate every third request onto SPA, whose
                        // transient faults exercise the server's retry
                        // policy (PPA degrades instead of erroring).
                        let user = (t * per_thread + i) * 2_654_435_761 % profiles.len();
                        let sql = queries[(t + i) % queries.len()];
                        let algorithm = if i % 3 == 2 { "spa" } else { "ppa" };
                        let call = PersonalizeCall::new(format!("u{user}"), sql)
                            .k(10)
                            .l(1)
                            .algorithm(algorithm);
                        let req_start = Instant::now();
                        match c.personalize(call) {
                            Ok(answer) => {
                                local.push(req_start.elapsed().as_micros() as u64);
                                tally
                                    .retries
                                    .fetch_add(answer.retries, Ordering::Relaxed);
                                if answer.degraded {
                                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    tally.complete.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ClientError::Server(e)) => {
                                if e.code == ErrorCode::Overloaded {
                                    tally.shed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    tally.errored.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                                tally.severed.fetch_add(1, Ordering::Relaxed);
                                client = None;
                            }
                        }
                    }
                    latencies
                        .lock()
                        .expect("latency lock")
                        .extend_from_slice(&local);
                });
            }
        });
        let elapsed = start.elapsed();
        stop_abuse.store(true, Ordering::Relaxed);
        for a in abuse {
            a.join().expect("abuse client exits");
        }

        let server_counters: Vec<(String, u64)> = server
            .metrics()
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.value {
                qp_obs::MetricValue::Counter(n) => Some((r.name, n)),
                _ => None,
            })
            .collect();
        let report = server.shutdown();
        let mut latencies_us = latencies.into_inner().expect("latency lock");
        latencies_us.sort_unstable();
        Leg {
            register,
            elapsed,
            tally,
            latencies_us,
            server_counters,
            drained: report.drained,
            aborted: report.aborted,
        }
    };

    let steady = run_leg(false);
    let chaos = run_leg(true);
    let failpoints = cfg!(feature = "failpoints");
    if !failpoints {
        eprintln!("note: compiled without --features failpoints; the chaos leg armed nothing");
    }

    let total = (threads * per_thread) as u64;
    let counter = |leg: &Leg, name: &str| {
        leg.server_counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    };
    let row = |label: &str, leg: &Leg| {
        let t = &leg.tally;
        vec![
            label.to_string(),
            format!("{:.1}", total as f64 / leg.elapsed.as_secs_f64().max(1e-9)),
            format!("{:.1}", percentile(&leg.latencies_us, 0.5) as f64 / 1000.0),
            format!("{:.1}", percentile(&leg.latencies_us, 0.99) as f64 / 1000.0),
            t.complete.load(Ordering::Relaxed).to_string(),
            t.degraded.load(Ordering::Relaxed).to_string(),
            t.errored.load(Ordering::Relaxed).to_string(),
            t.shed.load(Ordering::Relaxed).to_string(),
            t.severed.load(Ordering::Relaxed).to_string(),
            t.retries.load(Ordering::Relaxed).to_string(),
            counter(leg, "server.short_circuited").to_string(),
            counter(leg, "server.panics").to_string(),
        ]
    };
    print_table(
        &format!(
            "Serving over the wire — {users} users, {threads} workers x {per_thread} requests, \
             seed {seed}, failpoints {failpoints}"
        ),
        &[
            "leg", "req/s", "p50 ms", "p99 ms", "complete", "degraded", "errored", "shed",
            "severed", "retries", "short-circuit", "panics",
        ],
        &[row("steady", &steady), row("chaos", &chaos)],
    );

    let leg_json = |leg: &Leg| {
        let t = &leg.tally;
        format!(
            "{{\"register_ms\": {:.1}, \"elapsed_ms\": {:.1}, \"requests_per_s\": {:.2}, \
              \"p50_us\": {}, \"p99_us\": {}, \"complete\": {}, \"degraded\": {}, \
              \"errored\": {}, \"shed\": {}, \"severed\": {}, \"retries\": {}, \
              \"short_circuited\": {}, \"panics\": {}, \"read_errors\": {}, \
              \"torn_writes\": {}, \"idle_closed\": {}, \"drained\": {}, \"aborted\": {}}}",
            leg.register.as_secs_f64() * 1e3,
            leg.elapsed.as_secs_f64() * 1e3,
            total as f64 / leg.elapsed.as_secs_f64().max(1e-9),
            percentile(&leg.latencies_us, 0.5),
            percentile(&leg.latencies_us, 0.99),
            t.complete.load(Ordering::Relaxed),
            t.degraded.load(Ordering::Relaxed),
            t.errored.load(Ordering::Relaxed),
            t.shed.load(Ordering::Relaxed),
            t.severed.load(Ordering::Relaxed),
            t.retries.load(Ordering::Relaxed),
            counter(leg, "server.short_circuited"),
            counter(leg, "server.panics"),
            counter(leg, "server.connections.read_errors"),
            counter(leg, "server.chaos.torn_writes"),
            counter(leg, "server.connections.idle_closed"),
            leg.drained,
            leg.aborted,
        )
    };
    // Identical offered load in both legs, so retained completeness is a
    // ratio of counts (see bench_chaos for why a per-second ratio lies).
    let completes = |leg: &Leg| leg.tally.complete.load(Ordering::Relaxed) as f64;
    let json = format!(
        "{{\n  \"workload\": {{\"movies\": {movies}, \"users\": {users}, \"threads\": {threads}, \
           \"requests\": {total}, \"k\": 10, \"l\": 1, \"seed\": {seed}, \
           \"failpoints\": {failpoints}, \"cpus\": {cpus}}},\n  \
           \"steady\": {},\n  \"chaos\": {},\n  \
           \"complete_fraction_retained\": {:.3}\n}}\n",
        leg_json(&steady),
        leg_json(&chaos),
        completes(&chaos) / completes(&steady).max(1.0),
    );
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => println!("wrote BENCH_serving.json"),
        Err(e) => eprintln!("warning: could not write BENCH_serving.json: {e}"),
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Incremental-maintenance benchmark: steady-state personalization
/// throughput under a sustained mixed read/write workload, maintained
/// registry vs recompute-from-scratch. See the module docs for the
/// workload shape; `BENCH_maintenance.json` records both legs.
///
/// Correctness is not assumed: after every publish the next maintained
/// answer is byte-compared (untimed) against a fresh personalizer on the
/// same epoch that never saw the registry.
fn bench_maintenance(scale: Scale, runs: usize, write_rate: f64) {
    use qp_core::Maintainer;
    use qp_storage::{DbDelta, SnapshotStore, Value};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const K: usize = 30;
    // Serving-shaped queries: each restricts MOVIE the way an
    // interactive page does, so the per-request cost is dominated by the
    // parameterized preference queries — exactly what the registry
    // amortizes — rather than by ranking a full-table answer.
    let queries = [
        "select title from MOVIE where MOVIE.mid < 400",
        "select title from MOVIE where year > 1990 and MOVIE.mid < 1000",
        "select title, year from MOVIE where MOVIE.mid > 600 and MOVIE.mid < 1200",
    ];
    let reads = runs.max(1) * 300;
    let write_every = if write_rate > 0.0 {
        ((100.0 / write_rate).round() as usize).max(1)
    } else {
        usize::MAX
    };

    #[derive(Default)]
    struct Leg {
        read_time: Duration,
        selection_time: Duration,
        execution_time: Duration,
        write_time: Duration,
        writes: u64,
        rows_inserted: u64,
        rows_deleted: u64,
        param_queries: u64,
        audits: u64,
        patched: u64,
        carried: u64,
        rematerialized: u64,
        dropped: u64,
    }

    let run_leg = |maintained: bool| -> Leg {
        use qp_core::{CompareOp, Doi};
        let store = Arc::new(SnapshotStore::new(bench_db(scale)));
        // positive_profile draws its conditions from the categorical
        // pools (GENRE/DIRECTOR/ACTOR/THEATRE), so every one of those
        // materializations is a join. On top of that background mix, add
        // high-doi preferences chosen so the selected set exercises all
        // three maintenance outcomes: MOVIE range preferences patch in
        // place, GENRE joins rematerialize (new-movie publishes touch
        // GENRE), and ACTOR preferences — whose materializations scan
        // the CAST join, the expensive parameterized queries a serving
        // fleet actually pays — carry across GENRE-only publishes.
        let mut profile = positive_profile(&store.snapshot(), 20, 7);
        {
            let snap = store.snapshot();
            let catalog = snap.catalog();
            for i in 0..12i64 {
                let (col, op, v) = if i % 2 == 0 {
                    ("year", CompareOp::Gt, Value::Int(1950 + i))
                } else {
                    ("duration", CompareOp::Lt, Value::Int(200 - i))
                };
                profile
                    .add_selection(
                        catalog,
                        "MOVIE",
                        col,
                        op,
                        v,
                        Doi::presence(0.97 - i as f64 * 0.005).expect("valid doi"),
                    )
                    .expect("MOVIE attribute exists");
            }
            let actors = snap.table_by_name("ACTOR").expect("ACTOR relation");
            let name_idx = catalog
                .relation_by_name("ACTOR")
                .expect("ACTOR relation")
                .attr_index("name")
                .expect("name attribute");
            let mut seen = std::collections::HashSet::new();
            let mut added = 0usize;
            let mut row = 0usize;
            while added < 20 && row < actors.len() {
                // A deterministic stride walk; skip repeated names.
                let r = (row * 7919) % actors.len();
                row += 1;
                let Some(name) = actors.rows()[r][name_idx].as_str() else { continue };
                if !seen.insert(name.to_string()) {
                    continue;
                }
                profile
                    .add_selection(
                        catalog,
                        "ACTOR",
                        "name",
                        CompareOp::Eq,
                        Value::str(name),
                        Doi::presence(0.9 - added as f64 * 0.003).expect("valid doi"),
                    )
                    .expect("sampled actor exists");
                added += 1;
            }
        }
        let maintainer = Maintainer::new(Arc::clone(&store));
        let mut p = Personalizer::serving(Arc::clone(&store));
        if maintained {
            p = p.with_maintenance(maintainer.registry());
        }
        let options = efficiency_options(K, 1, AnswerAlgorithm::Ppa);
        // Warm both legs equally: the comparison is steady state, not
        // first-touch materialization cost.
        for sql in &queries {
            p.run(PersonalizeRequest::sql(&profile, sql).options(options).parallelism(2))
                .expect("warmup run");
        }
        let mut leg = Leg::default();
        let mut next_mid = 5_000_000i64;
        let mut published: Vec<i64> = Vec::new();
        let mut just_wrote = false;
        let row = |mid: i64| {
            vec![
                Value::Int(mid),
                Value::str(format!("pub{mid}").as_str()),
                Value::Int(1960 + (mid % 60)),
                Value::Int(90 + (mid % 60)),
            ]
        };
        let mut tagged = 0usize;
        for i in 0..reads {
            if write_every != usize::MAX && i > 0 && i.is_multiple_of(write_every) {
                // Two write shapes: new-movie publishes (MOVIE + GENRE,
                // every fourth also retiring the oldest published row so
                // the delete path is on the clock), and GENRE-only tag
                // publishes that leave MOVIE untouched — those are what
                // let MOVIE-only materializations carry across an epoch.
                let delta = if leg.writes % 3 == 2 && tagged < published.len() {
                    let mid = published[tagged];
                    tagged += 1;
                    DbDelta::new().insert("GENRE", vec![Value::Int(mid), Value::str("thriller")])
                } else {
                    let mid = next_mid;
                    next_mid += 1;
                    let mut d = DbDelta::new()
                        .insert("MOVIE", row(mid))
                        .insert("GENRE", vec![Value::Int(mid), Value::str("comedy")]);
                    if leg.writes % 4 == 3 && tagged < published.len() {
                        // Retire the oldest still-untagged published row
                        // (tagged rows keep their extra GENRE tuple, which
                        // is fine — deletes are value-addressed on MOVIE).
                        d = d.delete("MOVIE", row(published.remove(tagged)));
                    }
                    published.push(mid);
                    d
                };
                let t = Instant::now();
                let (_, applied, outcome) = maintainer.publish(&delta).expect("bench publish");
                leg.write_time += t.elapsed();
                leg.writes += 1;
                leg.rows_inserted += applied.rows_inserted() as u64;
                leg.rows_deleted += applied.rows_deleted() as u64;
                leg.patched += outcome.patched;
                leg.carried += outcome.carried;
                leg.rematerialized += outcome.rematerialized;
                leg.dropped += outcome.dropped + outcome.stale;
                just_wrote = true;
            }
            let sql = queries[i % queries.len()];
            let t = Instant::now();
            let out = p
                .run(PersonalizeRequest::sql(&profile, sql).options(options).parallelism(2))
                .expect("bench read");
            leg.read_time += t.elapsed();
            leg.selection_time += out.report.selection_time;
            leg.execution_time += out.report.execution_time;
            assert!(out.is_complete(), "bench reads run chaos-free");
            leg.param_queries +=
                out.report.ppa_stats.as_ref().map_or(0, |s| s.parameterized_queries) as u64;
            if i == 0 || just_wrote {
                // Untimed byte-identity audit on the epoch the read saw.
                let mut fresh = Personalizer::shared(store.snapshot());
                let want = fresh
                    .run(PersonalizeRequest::sql(&profile, sql).options(options).parallelism(2))
                    .expect("audit recompute");
                assert_eq!(
                    out.report.answer, want.report.answer,
                    "maintained answer diverged from recompute-from-scratch ({sql})"
                );
                leg.audits += 1;
                just_wrote = false;
            }
        }
        leg
    };

    println!(
        "bench-maintenance: {reads} reads, ~{write_rate}% write rate \
         ({} requests/write)…",
        if write_every == usize::MAX { 0 } else { write_every }
    );
    let recompute = run_leg(false);
    let maintained = run_leg(true);

    let rps = |leg: &Leg| reads as f64 / leg.read_time.as_secs_f64().max(1e-9);
    let pq = |leg: &Leg| leg.param_queries as f64 / reads as f64;
    let speedup = rps(&maintained) / rps(&recompute).max(1e-9);
    print_table(
        &format!("Incremental maintenance — {reads} reads, {} publishes", maintained.writes),
        &["leg", "reads/s", "read total", "select", "execute", "publish total", "param queries/read", "audits"],
        &[
            vec![
                "recompute".into(),
                format!("{:.1}", rps(&recompute)),
                format!("{} ms", ms(recompute.read_time)),
                format!("{} ms", ms(recompute.selection_time)),
                format!("{} ms", ms(recompute.execution_time)),
                format!("{} ms", ms(recompute.write_time)),
                format!("{:.1}", pq(&recompute)),
                recompute.audits.to_string(),
            ],
            vec![
                "maintained".into(),
                format!("{:.1}", rps(&maintained)),
                format!("{} ms", ms(maintained.read_time)),
                format!("{} ms", ms(maintained.selection_time)),
                format!("{} ms", ms(maintained.execution_time)),
                format!("{} ms", ms(maintained.write_time)),
                format!("{:.1}", pq(&maintained)),
                maintained.audits.to_string(),
            ],
            vec!["speedup".into(), format!("{speedup:.1}x"), String::new(), String::new(), String::new(), String::new(), String::new(), String::new()],
        ],
    );
    println!(
        "maintained registry outcomes: {} patched, {} carried, {} rematerialized, {} dropped",
        maintained.patched, maintained.carried, maintained.rematerialized, maintained.dropped
    );

    let leg_json = |leg: &Leg| {
        format!(
            "{{\"reads_per_sec\": {:.1}, \"read_total_ms\": {}, \"publish_total_ms\": {}, \
              \"writes\": {}, \"rows_inserted\": {}, \"rows_deleted\": {}, \
              \"param_queries_per_read\": {:.2}, \"identity_audits\": {}, \
              \"patched\": {}, \"carried\": {}, \"rematerialized\": {}, \"dropped\": {}}}",
            rps(leg),
            ms(leg.read_time),
            ms(leg.write_time),
            leg.writes,
            leg.rows_inserted,
            leg.rows_deleted,
            pq(leg),
            leg.audits,
            leg.patched,
            leg.carried,
            leg.rematerialized,
            leg.dropped,
        )
    };
    let json = format!(
        "{{\n  \"workload\": {{\"scale\": \"{scale:?}\", \"reads\": {reads}, \"queries\": {}, \
           \"k\": {K}, \"write_rate_pct\": {write_rate}, \"profile_prefs\": 52}},\n  \
           \"recompute\": {},\n  \"maintained\": {},\n  \"speedup\": {speedup:.2}\n}}\n",
        queries.len(),
        leg_json(&recompute),
        leg_json(&maintained),
    );
    match std::fs::write("BENCH_maintenance.json", &json) {
        Ok(()) => println!("wrote BENCH_maintenance.json"),
        Err(e) => eprintln!("warning: could not write BENCH_maintenance.json: {e}"),
    }
}
