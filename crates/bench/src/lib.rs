#![warn(missing_docs)]

//! Shared fixtures for the benchmark harness and the figure-reproduction
//! binary (`repro`).

use std::time::{Duration, Instant};

use qp_core::{
    AnswerAlgorithm, MixedKind, PersonalizationOptions, PersonalizeRequest, Personalizer, Ranking,
    RankingKind, SelectionAlgorithm, SelectionCriterion,
};
use qp_datagen::{generate, ImdbScale, ProfileSpec};
use qp_storage::Database;

/// Benchmark scale, selectable on the `repro` command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~1k movies: smoke runs.
    Small,
    /// ~20k movies: the default.
    Medium,
    /// ~100k movies: closest to the paper's 340k-film IMDB setup.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The generator configuration for this scale.
    pub fn imdb(self) -> ImdbScale {
        match self {
            Scale::Small => ImdbScale::small(),
            Scale::Medium => ImdbScale::medium(),
            Scale::Large => ImdbScale::large(),
        }
    }
}

/// Generates the benchmark database and warms its statistics so the
/// measurements exclude one-time histogram/index builds (Oracle's
/// statistics were likewise pre-gathered).
pub fn bench_db(scale: Scale) -> Database {
    let db = generate(scale.imdb());
    db.warm_statistics();
    db
}

/// The options used by the efficiency experiments (Figures 7–8):
/// FakeCrit selection, top-K criterion, inflationary ranking.
pub fn efficiency_options(k: usize, l: usize, algorithm: AnswerAlgorithm) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(k),
        l,
        ranking: Ranking::new(RankingKind::Inflationary, MixedKind::CountWeighted),
        algorithm,
        selection: SelectionAlgorithm::FakeCrit,
        fallback_to_original: false,
    }
}

/// A profile of exact positive presence preferences, the Figure 7/8
/// setup ("varying K positive presence preferences").
pub fn positive_profile(db: &Database, n: usize, seed: u64) -> qp_core::Profile {
    qp_datagen::random_profile(db, &ProfileSpec::positive_only(n, seed))
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Runs a closure `n` times and returns the median duration (and the last
/// output).
pub fn median_time<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (out, d) = time(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort();
    (last.expect("n >= 1"), times[times.len() / 2])
}

/// Runs a closure `n` times and returns the minimum duration (and the
/// last output). The minimum is the noise-robust estimator for
/// engine-vs-engine comparisons: external load can only inflate a
/// measurement, never deflate it, so on shared machines the fastest
/// observation is the closest to each engine's true cost.
pub fn min_time<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..n {
        let (out, d) = time(&mut f);
        best = best.min(d);
        last = Some(out);
    }
    (last.expect("n >= 1"), best)
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Personalizes and reports (selection time, execution time, first
/// response, answer size).
pub fn run_personalization(
    db: &Database,
    profile: &qp_core::Profile,
    sql: &str,
    options: &PersonalizationOptions,
) -> qp_core::personalize::PersonalizationReport {
    let mut p = Personalizer::new(db);
    p.run(PersonalizeRequest::sql(profile, sql).options(*options))
        .expect("personalization succeeds")
        .report
}

/// Prints an aligned table: header + rows of equal arity. When the
/// `QP_REPRO_OUT` environment variable names a directory, the table is
/// additionally written there as a TSV file (named from the title) so
/// figures can be re-plotted with external tooling.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
    if let Some(dir) = std::env::var_os("QP_REPRO_OUT") {
        if let Err(e) = export_tsv(std::path::Path::new(&dir), title, header, rows) {
            eprintln!("warning: could not export `{title}`: {e}");
        }
    }
}

/// Writes one table as `<slug>.tsv` under `dir`.
pub fn export_tsv(
    dir: &std::path::Path,
    title: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let slug: String = title
        .chars()
        .take_while(|c| *c != '—')
        .collect::<String>()
        .trim()
        .to_lowercase()
        .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for r in rows {
        out.push_str(&r.join("\t"));
        out.push('\n');
    }
    std::fs::write(dir.join(format!("{slug}.tsv")), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("LARGE"), Some(Scale::Large));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn median_time_runs_n_times() {
        let mut count = 0;
        let (out, _) = median_time(5, || {
            count += 1;
            count
        });
        assert_eq!(out, 5);
    }

    #[test]
    fn efficiency_pipeline_smoke() {
        let db = bench_db(Scale::Small);
        let profile = positive_profile(&db, 12, 1);
        let report = run_personalization(
            &db,
            &profile,
            "select title from MOVIE",
            &efficiency_options(8, 1, AnswerAlgorithm::Ppa),
        );
        assert!(!report.selected.is_empty());
    }
}
