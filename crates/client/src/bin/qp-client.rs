//! `qp-client` — an interactive REPL over the qp wire protocol.
//!
//! ```text
//! $ qp-client 127.0.0.1:7878
//! qp-client> \user al                      # pick the user key
//! qp-client> \profile path/to/profile.doi  # register a profile file
//! qp-client> \k 6
//! qp-client> select title from MOVIE       # personalized over the wire
//! qp-client> \stats
//! qp-client> \quit
//! ```
//!
//! Set `QP_BATCH=1` to suppress prompts when piping scripts in.

use std::io::{BufRead, Write};
use std::time::Duration;

use qp_client::{Client, ClientError, Json, PersonalizeCall};

struct Repl {
    addr: String,
    client: Client,
    user: String,
    /// Store id from the last registration of the active user; queries
    /// carry it so the server can skip the name lookup.
    user_id: Option<u64>,
    k: Option<u64>,
    l: Option<u64>,
    algorithm: Option<String>,
}

const HELP: &str = "commands:
  \\connect <addr>       reconnect to a different server
  \\user <name>          set the user key (default: guest)
  \\profile <file>       register <file> (Figure-2 notation) for the user
  \\profile 'doi(...)'   register inline profile text
  \\k <n> | \\l <n>       set K / L for personalize calls
  \\algo spa|ppa         answer algorithm
  \\ping                 liveness probe
  \\stats                dump server metrics
  <sql>                 personalize the SQL under the active user
  \\quit";

impl Repl {
    fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect(addr, Duration::from_secs(5))
    }

    fn handle(&mut self, line: &str) -> Result<bool, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            return self.command(cmd);
        }
        self.query(line)?;
        Ok(true)
    }

    fn command(&mut self, cmd: &str) -> Result<bool, String> {
        let mut parts = cmd.splitn(2, char::is_whitespace);
        let head = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match head {
            "quit" | "q" | "exit" => return Ok(false),
            "help" | "h" => println!("{HELP}"),
            "connect" => {
                let addr =
                    if rest.is_empty() { self.addr.clone() } else { rest.to_string() };
                self.client = Repl::connect(&addr).map_err(|e| e.to_string())?;
                println!("connected to {addr}");
                self.addr = addr;
            }
            "user" => {
                if rest.is_empty() {
                    return Err("usage: \\user <name>".to_string());
                }
                self.user = rest.to_string();
                self.user_id = None;
                println!("user = {}", self.user);
            }
            "profile" => {
                if rest.is_empty() {
                    return Err("usage: \\profile <file>|'doi(...)'".to_string());
                }
                let text = if rest.contains("doi(") {
                    rest.trim_matches('\'').to_string()
                } else {
                    std::fs::read_to_string(rest).map_err(|e| format!("{rest}: {e}"))?
                };
                let reg = self
                    .client
                    .register_profile(&self.user, &text)
                    .map_err(|e| e.to_string())?;
                self.user_id = Some(reg.user_id);
                println!(
                    "registered {} preferences for {} (id {}, v{})",
                    reg.preferences, self.user, reg.user_id, reg.version
                );
            }
            "k" => {
                self.k = Some(rest.parse().map_err(|_| "usage: \\k <n>".to_string())?);
                println!("K = {}", rest);
            }
            "l" => {
                self.l = Some(rest.parse().map_err(|_| "usage: \\l <n>".to_string())?);
                println!("L = {}", rest);
            }
            "algo" => {
                if rest != "spa" && rest != "ppa" {
                    return Err("usage: \\algo spa|ppa".to_string());
                }
                self.algorithm = Some(rest.to_string());
                println!("algorithm = {rest}");
            }
            "ping" => {
                let start = std::time::Instant::now();
                self.client.ping().map_err(|e| e.to_string())?;
                println!("pong ({:?})", start.elapsed());
            }
            "stats" => {
                let metrics = self.client.stats().map_err(|e| e.to_string())?;
                for (name, value) in metrics {
                    println!("{name:<40} {value}");
                }
            }
            other => return Err(format!("unknown command \\{other} (try \\help)")),
        }
        Ok(true)
    }

    fn query(&mut self, sql: &str) -> Result<(), String> {
        let mut call = PersonalizeCall::new(&self.user, sql);
        if let Some(id) = self.user_id {
            call = call.user_id(id);
        }
        if let Some(k) = self.k {
            call = call.k(k);
        }
        if let Some(l) = self.l {
            call = call.l(l);
        }
        if let Some(a) = &self.algorithm {
            call = call.algorithm(a.clone());
        }
        let answer = self.client.personalize(call).map_err(|e| e.to_string())?;
        println!("-- {}", answer.columns.join(" | "));
        for t in &answer.tuples {
            let row: Vec<String> = t
                .row
                .iter()
                .map(|v| match v {
                    Json::Str(s) => s.clone(),
                    other => other.to_string(),
                })
                .collect();
            println!("{:<7.4} {}", t.doi, row.join(" | "));
        }
        println!(
            "({} tuples, {} µs server-side{}{})",
            answer.tuples.len(),
            answer.elapsed_us,
            if answer.degraded { ", degraded" } else { "" },
            if answer.retries > 0 {
                format!(", {} retries", answer.retries)
            } else {
                String::new()
            }
        );
        Ok(())
    }
}

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let client = match Repl::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("qp-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("qp-client — connected to {addr} (\\help for commands)");
    let mut repl = Repl {
        addr,
        client,
        user: "guest".to_string(),
        user_id: None,
        k: None,
        l: None,
        algorithm: None,
    };

    let stdin = std::io::stdin();
    let interactive = std::env::var_os("QP_BATCH").is_none();
    loop {
        if interactive {
            print!("qp-client> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match repl.handle(&line) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
    }
}
