//! A minimal JSON value, parser, and encoder — hand-rolled so the wire
//! protocol stays free of external dependencies.
//!
//! The subset is exactly what the qp wire protocol needs: objects keep
//! their key order (encoding is deterministic), numbers are `f64` (all
//! protocol integers fit in the 53-bit mantissa), and the parser rejects
//! input nested deeper than [`MAX_DEPTH`] so a hostile frame cannot blow
//! the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts before declaring the
/// document malformed.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Protocol integers stay exact below 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order so encoding round-trips.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document. Trailing non-whitespace is an error, as is
/// nesting deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("document nested too deep".to_string());
        }
        match self.peek() {
            None => Err("unexpected end of document".to_string()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                            continue; // hex4 advanced pos past the digits
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; find the char at this offset).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("op", Json::str("answer")),
            ("n", Json::num(3.0)),
            ("half", Json::num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::str("a \"quoted\"\nline"), Json::num(-2.0)])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"tab\tnl\nq\" é 😀"}"#).unwrap();
        assert_eq!(v.str_field("s"), Some("tab\tnl\nq\" é 😀"));
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("{\"n\": 9007199254740992}").unwrap();
        assert_eq!(v.u64_field("n"), Some(9_007_199_254_740_992));
        assert_eq!(parse("{\"n\": 1.5}").unwrap().u64_field("n"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
