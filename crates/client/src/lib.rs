#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # qp-client
//!
//! A typed client for the qp wire protocol (see [`wire`] for the frame
//! format), plus the protocol definition itself — `qp-server` depends on
//! this crate, not the other way round, so the client stays free of the
//! engine stack.
//!
//! ```no_run
//! use qp_client::{Client, PersonalizeCall};
//! use std::time::Duration;
//!
//! let mut c = Client::connect("127.0.0.1:7878", Duration::from_secs(2)).unwrap();
//! c.register_profile("al", "doi(MOVIE.genre = 'comedy') = (0.8, 0.1)").unwrap();
//! let answer = c
//!     .personalize(PersonalizeCall::new("al", "select title from MOVIE").k(5))
//!     .unwrap();
//! for t in &answer.tuples {
//!     println!("{:.3}  {:?}", t.doi, t.row);
//! }
//! ```

pub mod json;
pub mod wire;

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub use json::Json;
pub use wire::{
    Answer, DeltaSlice, ErrorCode, FrameError, Request, Response, WireError, WireTuple,
    DEFAULT_MAX_FRAME,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, timeout, reset).
    Io(std::io::Error),
    /// The byte stream broke protocol (torn frame, oversized frame,
    /// non-JSON payload, or a response shape the client cannot decode).
    Protocol(String),
    /// The server replied with a typed error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::Closed => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// What the server assigned when a profile was registered. Keep the
/// `user_id` and thread it into [`PersonalizeCall::user_id`] (or use
/// [`Registration::call`]) — id-addressed requests skip the server's
/// name lookup and identify the profile durably across connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// Store-assigned user id, stable for the server's lifetime.
    pub user_id: u64,
    /// Store version: 1 on first registration, +1 per re-registration.
    pub version: u64,
    /// Number of preferences parsed from the profile text.
    pub preferences: u64,
}

impl Registration {
    /// A [`PersonalizeCall`] addressed by this registration's id.
    pub fn call(&self, sql: impl Into<String>) -> PersonalizeCall {
        PersonalizeCall::new("", sql).user_id(self.user_id)
    }
}

/// Builder for a `personalize` request.
#[derive(Debug, Clone)]
pub struct PersonalizeCall {
    user: String,
    user_id: Option<u64>,
    sql: String,
    k: Option<u64>,
    l: Option<u64>,
    algorithm: Option<String>,
}

impl PersonalizeCall {
    /// Personalize `sql` under `user`'s registered profile, with the
    /// server's default K / L / algorithm.
    pub fn new(user: impl Into<String>, sql: impl Into<String>) -> Self {
        PersonalizeCall {
            user: user.into(),
            user_id: None,
            sql: sql.into(),
            k: None,
            l: None,
            algorithm: None,
        }
    }

    /// Addresses the profile by its store-assigned id (from
    /// [`Registration::user_id`]) instead of the user-key lookup.
    pub fn user_id(mut self, user_id: u64) -> Self {
        self.user_id = Some(user_id);
        self
    }

    /// Selects the top-K preferences.
    pub fn k(mut self, k: u64) -> Self {
        self.k = Some(k);
        self
    }

    /// Requires at least L satisfied preferences per answer tuple.
    pub fn l(mut self, l: u64) -> Self {
        self.l = Some(l);
        self
    }

    /// Picks the answer algorithm (`"spa"` or `"ppa"`).
    pub fn algorithm(mut self, algorithm: impl Into<String>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    fn into_request(self) -> Request {
        Request::Personalize {
            user: self.user,
            user_id: self.user_id,
            sql: self.sql,
            k: self.k,
            l: self.l,
            algorithm: self.algorithm,
        }
    }
}

/// Builder for a `publish_delta` request: row inserts and value-addressed
/// deletes, folded into one slice per relation in first-touch order.
///
/// ```no_run
/// # use qp_client::{Client, DeltaSpec, Json};
/// # use std::time::Duration;
/// # let mut c = Client::connect("127.0.0.1:7878", Duration::from_secs(2)).unwrap();
/// let receipt = c
///     .publish_delta(
///         DeltaSpec::new()
///             .insert("MOVIE", vec![Json::num(900.0), Json::str("New"), Json::num(2005.0)])
///             .delete("MOVIE", vec![Json::num(3.0), Json::str("Old"), Json::num(1983.0)]),
///     )
///     .unwrap();
/// assert!(receipt.new_version > receipt.old_version);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaSpec {
    changes: Vec<DeltaSlice>,
}

impl DeltaSpec {
    /// An empty delta (publishing it is a no-op epoch bump).
    pub fn new() -> Self {
        DeltaSpec::default()
    }

    /// Queues a row insert into `relation`.
    pub fn insert(mut self, relation: &str, row: Vec<Json>) -> Self {
        self.slice(relation).inserts.push(row);
        self
    }

    /// Queues a value-addressed delete of a live row of `relation`.
    pub fn delete(mut self, relation: &str, row: Vec<Json>) -> Self {
        self.slice(relation).deletes.push(row);
        self
    }

    /// True iff no writes were queued.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    fn slice(&mut self, relation: &str) -> &mut DeltaSlice {
        if let Some(at) = self.changes.iter().position(|s| s.relation == relation) {
            return &mut self.changes[at];
        }
        self.changes.push(DeltaSlice { relation: relation.to_string(), ..Default::default() });
        self.changes.last_mut().expect("slice just pushed")
    }

    fn into_request(self) -> Request {
        Request::PublishDelta { changes: self.changes }
    }
}

/// What the server reports after applying a published delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReceipt {
    /// Epoch the delta replaced.
    pub old_version: u64,
    /// Epoch readers now see.
    pub new_version: u64,
    /// Rows inserted across all relations.
    pub rows_inserted: u64,
    /// Rows deleted across all relations.
    pub rows_deleted: u64,
    /// Materialized preference results patched incrementally.
    pub patched: u64,
    /// Materializations carried unchanged to the new epoch.
    pub carried: u64,
    /// Materializations recomputed from scratch.
    pub rematerialized: u64,
    /// Materializations dropped (stale or failed maintenance).
    pub dropped: u64,
}

/// A connected protocol client. One request is in flight at a time; the
/// connection is reused across requests until an error poisons it.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` and applies `timeout` to connect, reads, and
    /// writes. A timed-out read surfaces as [`ClientError::Io`].
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(ClientError::Io)?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Io)?;
        Client::from_stream(stream, timeout)
    }

    /// Wraps an already-connected stream (used by tests and the load
    /// generator to control socket construction).
    pub fn from_stream(stream: TcpStream, timeout: Duration) -> Result<Client, ClientError> {
        stream.set_read_timeout(Some(timeout)).map_err(ClientError::Io)?;
        stream.set_write_timeout(Some(timeout)).map_err(ClientError::Io)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(ClientError::Io)?);
        Ok(Client { reader, writer: BufWriter::new(stream), max_frame: DEFAULT_MAX_FRAME })
    }

    /// Overrides the maximum response frame size this client accepts.
    pub fn with_max_frame(mut self, max_frame: usize) -> Client {
        self.max_frame = max_frame;
        self
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Registers (or replaces) `user`'s profile; returns the store
    /// assignment — id, version, and the number of preferences the
    /// server parsed out of the DSL text.
    pub fn register_profile(
        &mut self,
        user: &str,
        profile_dsl: &str,
    ) -> Result<Registration, ClientError> {
        let req = Request::RegisterProfile {
            user: user.to_string(),
            profile: profile_dsl.to_string(),
        };
        match self.roundtrip(&req)? {
            Response::ProfileRegistered { user_id, version, preferences, .. } => {
                Ok(Registration { user_id, version, preferences })
            }
            other => Err(unexpected("profile_registered", &other)),
        }
    }

    /// Runs one personalized query.
    pub fn personalize(&mut self, call: PersonalizeCall) -> Result<Answer, ClientError> {
        match self.roundtrip(&call.into_request())? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected("answer", &other)),
        }
    }

    /// Publishes `delta` as one new database epoch. A rejected delta
    /// (unknown relation, arity/type mismatch, delete of a missing
    /// tuple) surfaces as [`ClientError::Server`] with
    /// [`ErrorCode::DeltaRejected`] and changes nothing server-side.
    pub fn publish_delta(&mut self, delta: DeltaSpec) -> Result<DeltaReceipt, ClientError> {
        match self.roundtrip(&delta.into_request())? {
            Response::DeltaApplied {
                old_version,
                new_version,
                rows_inserted,
                rows_deleted,
                patched,
                carried,
                rematerialized,
                dropped,
            } => Ok(DeltaReceipt {
                old_version,
                new_version,
                rows_inserted,
                rows_deleted,
                patched,
                carried,
                rematerialized,
                dropped,
            }),
            other => Err(unexpected("delta_applied", &other)),
        }
    }

    /// Fetches the server's metrics snapshot as `(name, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, Json)>, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(metrics) => Ok(metrics),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Sends one request frame and decodes one response frame. A typed
    /// server failure becomes [`ClientError::Server`].
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.writer, &request.to_json()).map_err(ClientError::Io)?;
        let frame = wire::read_frame(&mut self.reader, self.max_frame)?;
        match Response::from_json(&frame).map_err(ClientError::Protocol)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            ok => Ok(ok),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted:?}, got {got:?}"))
}
