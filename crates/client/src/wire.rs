//! The qp wire protocol: framing, request/response shapes, and error
//! codes, shared verbatim by `qp-server` and the client in this crate.
//!
//! # Frame format
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! +----------------+----------------------------------+
//! | length: u32 BE | payload: `length` bytes of UTF-8 |
//! +----------------+----------------------------------+
//! ```
//!
//! The payload is exactly one JSON object (see [`crate::json`]). Frames
//! larger than the receiver's max-frame limit (default
//! [`DEFAULT_MAX_FRAME`]) are rejected without reading the payload;
//! payloads that are not valid JSON poison only the connection that sent
//! them.
//!
//! # Requests and responses
//!
//! Requests carry an `"op"` discriminator (`ping`, `register_profile`,
//! `personalize`, `stats`). Successful responses carry `"ok": true` and
//! their own `"op"`; failures carry `"ok": false` and an `"error"`
//! object with a stable [`ErrorCode`], a human-readable message, and a
//! `"retryable"` hint.

use std::io::{self, Read, Write};

use crate::json::{self, Json};

/// Default cap on a single frame's payload, in bytes (256 KiB).
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024;

/// Reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An I/O error (including timeouts) interrupted the frame.
    Io(io::Error),
    /// The declared payload length exceeds the receiver's limit.
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// The receiver's limit.
        limit: usize,
    },
    /// The payload was not one well-formed JSON object.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds the {limit}-byte limit")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length, then the encoded value.
pub fn write_frame(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_payload(w, value.to_string().as_bytes())
}

/// Writes one already-encoded frame payload with its length header.
/// Callers that need the encoded size first (e.g. a server enforcing its
/// own frame limit on *writes*) encode once, inspect, then call this.
pub fn write_payload(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let header = (payload.len() as u32).to_be_bytes();
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing `max_frame` on the declared length.
///
/// A clean EOF *before any header byte* is [`FrameError::Closed`]; EOF
/// mid-frame is an [`FrameError::Io`] (`UnexpectedEof`) because the peer
/// tore the frame.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Json, FrameError> {
    let declared = read_header(r, max_frame)?;
    read_body(r, declared)
}

/// Reads one frame header and validates the declared length against
/// `max_frame` — without touching the payload, so an oversized frame is
/// rejected before a single payload byte is read. Servers use this
/// split (header under the idle timeout, body under the I/O deadline);
/// most callers want [`read_frame`].
pub fn read_header(r: &mut impl Read, max_frame: usize) -> Result<usize, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max_frame {
        return Err(FrameError::TooLarge { declared, limit: max_frame });
    }
    Ok(declared)
}

/// Reads and parses a frame body whose length [`read_header`] already
/// validated.
pub fn read_body(r: &mut impl Read, declared: usize) -> Result<Json, FrameError> {
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    let text = String::from_utf8(payload)
        .map_err(|_| FrameError::Malformed("payload is not UTF-8".to_string()))?;
    match json::parse(&text) {
        Ok(value @ Json::Obj(_)) => Ok(value),
        Ok(_) => Err(FrameError::Malformed("payload is not a JSON object".to_string())),
        Err(e) => Err(FrameError::Malformed(e)),
    }
}

/// Stable error codes carried in failure responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server shed the request before parsing it (admission control
    /// or accept-queue bound). Retry after backoff.
    Overloaded,
    /// The frame payload was not one well-formed JSON object. The server
    /// closes the connection after sending this.
    BadFrame,
    /// The declared frame length exceeds the server's limit. The server
    /// closes the connection after sending this.
    FrameTooLarge,
    /// The JSON parsed but the request is invalid (unknown op, missing
    /// or ill-typed fields, profile that fails to parse).
    BadRequest,
    /// `personalize` for a user with no registered profile.
    UnknownUser,
    /// The personalized answer encoded larger than the server's frame
    /// limit. The connection stays usable; narrow the query (or run a
    /// server with a larger `max_frame`) and retry.
    AnswerTooLarge,
    /// Personalization failed with a typed engine error.
    Query,
    /// The connection handler panicked; the request died but the server
    /// survives. The connection is closed after this response.
    Internal,
    /// The server is draining for shutdown and takes no new requests.
    ShuttingDown,
    /// The server's durable profile store hit a disk fault and degraded
    /// to read-only: reads and personalization still work, but profile
    /// registration is refused until an operator intervenes. Not
    /// retryable against the same server.
    ReadOnly,
    /// A `publish_delta` was rejected wholesale — unknown relation,
    /// arity or type mismatch, a delete addressing no live tuple, or a
    /// write fault at publish time. Nothing was applied; the database
    /// epoch is unchanged. Not retryable as-is: the delta itself is
    /// wrong (or the store is faulted), so fix it first.
    DeltaRejected,
}

impl ErrorCode {
    /// The stable string carried on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownUser => "unknown_user",
            ErrorCode::AnswerTooLarge => "answer_too_large",
            ErrorCode::Query => "query",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ReadOnly => "read_only",
            ErrorCode::DeltaRejected => "delta_rejected",
        }
    }

    /// Parses the wire string back into a code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "bad_frame" => ErrorCode::BadFrame,
            "frame_too_large" => ErrorCode::FrameTooLarge,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_user" => ErrorCode::UnknownUser,
            "answer_too_large" => ErrorCode::AnswerTooLarge,
            "query" => ErrorCode::Query,
            "internal" => ErrorCode::Internal,
            "shutting_down" => ErrorCode::ShuttingDown,
            "read_only" => ErrorCode::ReadOnly,
            "delta_rejected" => ErrorCode::DeltaRejected,
            _ => return None,
        })
    }
}

/// A typed failure response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Whether the client may retry the same request.
    pub retryable: bool,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl WireError {
    /// Encodes the failure as a response frame value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::str(self.code.as_str())),
                    ("message", Json::str(self.message.clone())),
                    ("retryable", Json::Bool(self.retryable)),
                ]),
            ),
        ])
    }
}

/// One relation's writes inside a [`Request::PublishDelta`].
///
/// Rows are positional JSON values (number / string / bool / null)
/// matched against the relation's schema server-side: numbers coerce to
/// the column's declared `Int`/`Float` type, everything else must match
/// exactly. Deletes are *value-addressed* — the full row as stored —
/// and resolved against the pre-delta snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaSlice {
    /// Relation name as it appears in the catalog.
    pub relation: String,
    /// Rows to insert, each with the relation's full arity.
    pub inserts: Vec<Vec<Json>>,
    /// Live rows to delete, value-addressed.
    pub deletes: Vec<Vec<Json>>,
}

fn rows_to_json(rows: &[Vec<Json>]) -> Json {
    Json::Arr(rows.iter().map(|row| Json::Arr(row.clone())).collect())
}

fn rows_from_json(v: Option<&Json>, what: &str) -> Result<Vec<Vec<Json>>, String> {
    let Some(v) = v else { return Ok(Vec::new()) };
    v.as_arr()
        .ok_or_else(|| format!("\"{what}\" must be an array of rows"))?
        .iter()
        .map(|row| {
            row.as_arr()
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("\"{what}\" rows must be arrays"))
        })
        .collect()
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Registers (or replaces) `user`'s preference profile, given in the
    /// paper's Figure-2 `doi(...) = (x, y)` notation.
    RegisterProfile {
        /// User key.
        user: String,
        /// Profile text in the DSL.
        profile: String,
    },
    /// Personalizes `sql` under `user`'s registered profile.
    Personalize {
        /// User key (must have a registered profile).
        user: String,
        /// Store-assigned user id from a `profile_registered` response.
        /// When present the server resolves the profile by id directly,
        /// skipping the name lookup; `user` is then only used in error
        /// messages.
        user_id: Option<u64>,
        /// The SQL query to personalize.
        sql: String,
        /// Top-K preferences to select (server default if absent).
        k: Option<u64>,
        /// Minimum satisfied preferences per answer tuple.
        l: Option<u64>,
        /// `"spa"` or `"ppa"` (server default if absent).
        algorithm: Option<String>,
    },
    /// Atomically publishes a set of row inserts/deletes as one new
    /// database epoch. Applied all-or-nothing: any invalid slice rejects
    /// the whole delta with [`ErrorCode::DeltaRejected`] and the epoch
    /// is unchanged. On success the server incrementally maintains its
    /// materialized preference results instead of recomputing them.
    PublishDelta {
        /// Per-relation changes; at most one slice per relation.
        changes: Vec<DeltaSlice>,
    },
    /// Dumps the server's metrics registry.
    Stats,
}

impl Request {
    /// Encodes the request as a frame value.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj(vec![("op", Json::str("ping"))]),
            Request::RegisterProfile { user, profile } => Json::obj(vec![
                ("op", Json::str("register_profile")),
                ("user", Json::str(user.clone())),
                ("profile", Json::str(profile.clone())),
            ]),
            Request::Personalize { user, user_id, sql, k, l, algorithm } => {
                let mut pairs = vec![
                    ("op", Json::str("personalize")),
                    ("user", Json::str(user.clone())),
                    ("sql", Json::str(sql.clone())),
                ];
                if let Some(id) = user_id {
                    pairs.push(("user_id", Json::num(*id as f64)));
                }
                if let Some(k) = k {
                    pairs.push(("k", Json::num(*k as f64)));
                }
                if let Some(l) = l {
                    pairs.push(("l", Json::num(*l as f64)));
                }
                if let Some(a) = algorithm {
                    pairs.push(("algorithm", Json::str(a.clone())));
                }
                Json::obj(pairs)
            }
            Request::PublishDelta { changes } => Json::obj(vec![
                ("op", Json::str("publish_delta")),
                (
                    "changes",
                    Json::Arr(
                        changes
                            .iter()
                            .map(|slice| {
                                Json::obj(vec![
                                    ("relation", Json::str(slice.relation.clone())),
                                    ("inserts", rows_to_json(&slice.inserts)),
                                    ("deletes", rows_to_json(&slice.deletes)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Request::Stats => Json::obj(vec![("op", Json::str("stats"))]),
        }
    }

    /// Decodes a request frame; `Err` carries a `bad_request` message.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v.str_field("op").ok_or("missing \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "register_profile" => Ok(Request::RegisterProfile {
                user: v.str_field("user").ok_or("missing \"user\"")?.to_string(),
                profile: v.str_field("profile").ok_or("missing \"profile\"")?.to_string(),
            }),
            "personalize" => {
                for key in ["user_id", "k", "l"] {
                    if v.get(key).is_some() && v.u64_field(key).is_none() {
                        return Err(format!("\"{key}\" must be a non-negative integer"));
                    }
                }
                Ok(Request::Personalize {
                    user: v.str_field("user").ok_or("missing \"user\"")?.to_string(),
                    user_id: v.u64_field("user_id"),
                    sql: v.str_field("sql").ok_or("missing \"sql\"")?.to_string(),
                    k: v.u64_field("k"),
                    l: v.u64_field("l"),
                    algorithm: v.str_field("algorithm").map(str::to_string),
                })
            }
            "publish_delta" => {
                let changes = v
                    .get("changes")
                    .and_then(Json::as_arr)
                    .ok_or("missing \"changes\"")?
                    .iter()
                    .map(|slice| {
                        Ok(DeltaSlice {
                            relation: slice
                                .str_field("relation")
                                .ok_or("slice without \"relation\"")?
                                .to_string(),
                            inserts: rows_from_json(slice.get("inserts"), "inserts")?,
                            deletes: rows_from_json(slice.get("deletes"), "deletes")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Request::PublishDelta { changes })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// One answer tuple on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Degree of interest the ranking assigned.
    pub doi: f64,
    /// Projected row values (strings/numbers/bools/null).
    pub row: Vec<Json>,
}

/// A successful `personalize` response.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Projected column names.
    pub columns: Vec<String>,
    /// Answer tuples, best first.
    pub tuples: Vec<WireTuple>,
    /// True if the server degraded the answer (dropped probes, breaker
    /// short-circuit) rather than computing it fully.
    pub degraded: bool,
    /// Transient-fault retries the server's `RetryPolicy` absorbed.
    pub retries: u64,
    /// Server-side latency for this request, in microseconds.
    pub elapsed_us: u64,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::RegisterProfile`].
    ProfileRegistered {
        /// Echoed user key.
        user: String,
        /// Store-assigned user id — durable for the server's lifetime,
        /// shared across connections. Pass it back as
        /// [`Request::Personalize::user_id`] to skip the name lookup.
        user_id: u64,
        /// Store version of the profile: 1 on first registration,
        /// bumped on every re-registration.
        version: u64,
        /// Number of preferences parsed from the profile text.
        preferences: u64,
    },
    /// Reply to [`Request::Personalize`].
    Answer(Answer),
    /// Reply to [`Request::PublishDelta`]: the delta became the new
    /// database epoch, and the maintenance counters say how the server's
    /// materialized preference results absorbed it.
    DeltaApplied {
        /// Epoch that was current when the delta arrived.
        old_version: u64,
        /// Epoch the delta produced — what readers now see.
        new_version: u64,
        /// Rows inserted across all relations.
        rows_inserted: u64,
        /// Rows deleted across all relations.
        rows_deleted: u64,
        /// Materializations patched in place from the delta's rows.
        patched: u64,
        /// Materializations carried unchanged (delta missed their
        /// relations).
        carried: u64,
        /// Materializations recomputed from scratch (multi-relation
        /// shapes the patcher cannot maintain).
        rematerialized: u64,
        /// Materializations dropped (stale epoch or maintenance error).
        dropped: u64,
    },
    /// Reply to [`Request::Stats`]: metric name → value (counters and
    /// gauges as numbers; histograms as objects).
    Stats(Vec<(String, Json)>),
    /// A typed failure.
    Error(WireError),
}

impl Response {
    /// Encodes the response as a frame value.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => {
                Json::obj(vec![("ok", Json::Bool(true)), ("op", Json::str("pong"))])
            }
            Response::ProfileRegistered { user, user_id, version, preferences } => {
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("profile_registered")),
                    ("user", Json::str(user.clone())),
                    ("user_id", Json::num(*user_id as f64)),
                    ("version", Json::num(*version as f64)),
                    ("preferences", Json::num(*preferences as f64)),
                ])
            }
            Response::Answer(a) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::str("answer")),
                (
                    "columns",
                    Json::Arr(a.columns.iter().map(|c| Json::str(c.clone())).collect()),
                ),
                (
                    "tuples",
                    Json::Arr(
                        a.tuples
                            .iter()
                            .map(|t| {
                                Json::obj(vec![
                                    ("doi", Json::num(t.doi)),
                                    ("row", Json::Arr(t.row.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("degraded", Json::Bool(a.degraded)),
                ("retries", Json::num(a.retries as f64)),
                ("elapsed_us", Json::num(a.elapsed_us as f64)),
            ]),
            Response::DeltaApplied {
                old_version,
                new_version,
                rows_inserted,
                rows_deleted,
                patched,
                carried,
                rematerialized,
                dropped,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::str("delta_applied")),
                ("old_version", Json::num(*old_version as f64)),
                ("new_version", Json::num(*new_version as f64)),
                ("rows_inserted", Json::num(*rows_inserted as f64)),
                ("rows_deleted", Json::num(*rows_deleted as f64)),
                ("patched", Json::num(*patched as f64)),
                ("carried", Json::num(*carried as f64)),
                ("rematerialized", Json::num(*rematerialized as f64)),
                ("dropped", Json::num(*dropped as f64)),
            ]),
            Response::Stats(metrics) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::str("stats")),
                ("metrics", Json::Obj(metrics.clone())),
            ]),
            Response::Error(e) => e.to_json(),
        }
    }

    /// Decodes a response frame; `Err` means the peer broke protocol.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                let e = v.get("error").ok_or("failure response without \"error\"")?;
                let code_str = e.str_field("code").ok_or("error without \"code\"")?;
                let code = ErrorCode::parse(code_str)
                    .ok_or_else(|| format!("unknown error code {code_str:?}"))?;
                return Ok(Response::Error(WireError {
                    code,
                    message: e.str_field("message").unwrap_or_default().to_string(),
                    retryable: e.get("retryable").and_then(Json::as_bool).unwrap_or(false),
                }));
            }
            None => return Err("response without \"ok\"".to_string()),
        }
        match v.str_field("op").ok_or("success response without \"op\"")? {
            "pong" => Ok(Response::Pong),
            "profile_registered" => Ok(Response::ProfileRegistered {
                user: v.str_field("user").ok_or("missing \"user\"")?.to_string(),
                user_id: v.u64_field("user_id").ok_or("missing \"user_id\"")?,
                version: v.u64_field("version").ok_or("missing \"version\"")?,
                preferences: v.u64_field("preferences").ok_or("missing \"preferences\"")?,
            }),
            "answer" => {
                let columns = v
                    .get("columns")
                    .and_then(Json::as_arr)
                    .ok_or("missing \"columns\"")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
                    .collect::<Result<Vec<_>, _>>()?;
                let tuples = v
                    .get("tuples")
                    .and_then(Json::as_arr)
                    .ok_or("missing \"tuples\"")?
                    .iter()
                    .map(|t| {
                        Ok(WireTuple {
                            doi: t.get("doi").and_then(Json::as_f64).ok_or("tuple without doi")?,
                            row: t
                                .get("row")
                                .and_then(Json::as_arr)
                                .ok_or("tuple without row")?
                                .to_vec(),
                        })
                    })
                    .collect::<Result<Vec<_>, &str>>()?;
                Ok(Response::Answer(Answer {
                    columns,
                    tuples,
                    degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                    retries: v.u64_field("retries").unwrap_or(0),
                    elapsed_us: v.u64_field("elapsed_us").unwrap_or(0),
                }))
            }
            "delta_applied" => Ok(Response::DeltaApplied {
                old_version: v.u64_field("old_version").ok_or("missing \"old_version\"")?,
                new_version: v.u64_field("new_version").ok_or("missing \"new_version\"")?,
                rows_inserted: v.u64_field("rows_inserted").unwrap_or(0),
                rows_deleted: v.u64_field("rows_deleted").unwrap_or(0),
                patched: v.u64_field("patched").unwrap_or(0),
                carried: v.u64_field("carried").unwrap_or(0),
                rematerialized: v.u64_field("rematerialized").unwrap_or(0),
                dropped: v.u64_field("dropped").unwrap_or(0),
            }),
            "stats" => match v.get("metrics") {
                Some(Json::Obj(pairs)) => Ok(Response::Stats(pairs.clone())),
                _ => Err("missing \"metrics\"".to_string()),
            },
            other => Err(format!("unknown response op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
        round_trip_request(Request::RegisterProfile {
            user: "al".into(),
            profile: "doi(MOVIE.genre = 'comedy') = (0.8, 0.1)".into(),
        });
        round_trip_request(Request::Personalize {
            user: "al".into(),
            user_id: Some(7),
            sql: "select title from MOVIE".into(),
            k: Some(5),
            l: Some(1),
            algorithm: Some("ppa".into()),
        });
        round_trip_request(Request::Personalize {
            user: "al".into(),
            user_id: None,
            sql: "select title from MOVIE".into(),
            k: None,
            l: None,
            algorithm: None,
        });
        round_trip_request(Request::PublishDelta {
            changes: vec![
                DeltaSlice {
                    relation: "MOVIE".into(),
                    inserts: vec![vec![Json::num(900.0), Json::str("New"), Json::num(2005.0)]],
                    deletes: vec![vec![Json::num(3.0), Json::str("Old"), Json::num(1983.0)]],
                },
                DeltaSlice { relation: "GENRE".into(), inserts: vec![], deletes: vec![] },
            ],
        });
        round_trip_request(Request::PublishDelta { changes: vec![] });
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Pong,
            Response::ProfileRegistered {
                user: "al".into(),
                user_id: 3,
                version: 2,
                preferences: 7,
            },
            Response::Answer(Answer {
                columns: vec!["title".into()],
                tuples: vec![WireTuple {
                    doi: 0.75,
                    row: vec![Json::str("Psycho"), Json::Null, Json::num(3.0)],
                }],
                degraded: true,
                retries: 2,
                elapsed_us: 1234,
            }),
            Response::DeltaApplied {
                old_version: 7,
                new_version: 9,
                rows_inserted: 3,
                rows_deleted: 1,
                patched: 2,
                carried: 4,
                rematerialized: 1,
                dropped: 0,
            },
            Response::Stats(vec![("server.requests".into(), Json::num(9.0))]),
            Response::Error(WireError {
                code: ErrorCode::Overloaded,
                message: "64 in flight".into(),
                retryable: true,
            }),
            Response::Error(WireError {
                code: ErrorCode::DeltaRejected,
                message: "unknown relation \"NOPE\"".into(),
                retryable: false,
            }),
        ];
        for case in cases {
            assert_eq!(Response::from_json(&case.to_json()).unwrap(), case);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let value = Request::Ping.to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let payload_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert_eq!(payload_len, buf.len() - 4, "header declares the payload length");
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), value);
    }

    #[test]
    fn frame_reader_enforces_the_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.to_json()).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor, 4), Err(FrameError::TooLarge { .. })));
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), Request::Ping.to_json());
    }

    #[test]
    fn clean_eof_is_closed_and_torn_frame_is_io() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty, 1024), Err(FrameError::Closed)));

        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.to_json()).unwrap();
        let mut torn = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut torn, 1024), Err(FrameError::Io(_))));
        let mut torn_header = &buf[..2];
        assert!(matches!(read_frame(&mut torn_header, 1024), Err(FrameError::Io(_))));
    }

    #[test]
    fn non_object_payload_is_malformed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Arr(vec![])).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Malformed(_))));

        let garbage = [0u8, 0, 0, 3, b'{', b'{', b'{'];
        let mut cursor = &garbage[..];
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Malformed(_))));
    }
}
