//! Serving resilience: admission control, retry, and circuit breaking.
//!
//! Three independent mechanisms, bundled by [`Resilience`] and consulted
//! by [`crate::Personalizer::run`]:
//!
//! * **Admission control** ([`AdmissionController`]) — a semaphore-style
//!   in-flight permit limiter with a bounded queue wait. A request that
//!   cannot get a permit before the wait expires is *shed* with a typed
//!   [`crate::PrefError::Overloaded`], which costs microseconds, instead
//!   of joining an unbounded convoy that costs everyone seconds.
//! * **Retry** ([`RetryPolicy`]) — re-attempts requests that failed with
//!   an error classified *transient* ([`is_transient`]: the injected-I/O
//!   class), sleeping a decorrelated-jitter backoff between attempts so
//!   synchronized retry storms decorrelate.
//! * **Circuit breaking** ([`CircuitBreaker`]) — a rolling window over
//!   recent run outcomes (errors and deadline trips count as failures).
//!   When the failure ratio trips the threshold the breaker *opens*:
//!   requests skip personalization entirely and serve the unpersonalized
//!   query as a degraded answer (the paper's own "serve less, never
//!   fail" semantics). After a cooldown one probe request runs the full
//!   pipeline (*half-open*); success closes the breaker, failure re-opens
//!   it.
//!
//! The mechanisms are deliberately free of observability dependencies:
//! they return typed decisions/transitions and the personalizer maps
//! those onto `admission.*` / `breaker.*` / `retry.*` metrics and events
//! (see OBSERVABILITY.md).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qp_exec::ExecError;
use qp_storage::StorageError;

use crate::error::PrefError;

/// Geometry of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests holding permits simultaneously.
    pub max_inflight: usize,
    /// Longest a request may queue for a permit before being shed.
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    /// 64 in-flight requests, 50 ms queue wait — sized for the workloads
    /// in this repository's benchmarks; serving deployments tune both.
    fn default() -> Self {
        AdmissionConfig { max_inflight: 64, max_queue_wait: Duration::from_millis(50) }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Requests in flight when the wait expired.
    pub in_flight: usize,
    /// How long the request queued before being shed.
    pub waited: Duration,
}

/// A semaphore-style in-flight limiter with a bounded queue wait.
///
/// [`AdmissionController::try_acquire`] returns an RAII
/// [`AdmissionPermit`]; dropping it releases the slot and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    in_flight: Mutex<usize>,
    released: Condvar,
}

/// An admitted request's slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
    /// How long the request queued before admission.
    pub waited: Duration,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut count =
            self.controller.in_flight.lock().unwrap_or_else(PoisonError::into_inner);
        *count = count.saturating_sub(1);
        self.controller.released.notify_one();
    }
}

impl AdmissionController {
    /// A controller with the given geometry.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController { config, in_flight: Mutex::new(0), released: Condvar::new() }
    }

    /// The configured geometry.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        *self.in_flight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires a permit, queueing up to the configured wait. Sheds
    /// (`Err`) when the wait expires with the controller still full, or
    /// when the `admission.queue` failpoint injects a fault.
    pub fn try_acquire(&self) -> Result<AdmissionPermit<'_>, Shed> {
        let start = Instant::now();
        if qp_storage::failpoint::check("admission.queue").is_err() {
            return Err(Shed { in_flight: self.in_flight(), waited: start.elapsed() });
        }
        let deadline = start + self.config.max_queue_wait;
        let mut count = self.in_flight.lock().unwrap_or_else(PoisonError::into_inner);
        while *count >= self.config.max_inflight {
            let now = Instant::now();
            if now >= deadline {
                let shed = Shed { in_flight: *count, waited: start.elapsed() };
                return Err(shed);
            }
            let (guard, _timeout) = self
                .released
                .wait_timeout(count, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            count = guard;
        }
        *count += 1;
        Ok(AdmissionPermit { controller: self, waited: start.elapsed() })
    }
}

/// Whether an error belongs to the *transient* class a retry may cure:
/// injected I/O faults (and worker panics they caused). Budget trips,
/// cancellations, planning errors, and model errors are deterministic —
/// retrying them wastes the budget of every queued request behind them.
pub fn is_transient(e: &PrefError) -> bool {
    matches!(
        e,
        PrefError::Exec(ExecError::Fault(_))
            | PrefError::Exec(ExecError::Storage(StorageError::Injected(_)))
            | PrefError::Storage(StorageError::Injected(_))
    )
}

/// Retry with decorrelated-jitter backoff (the "decorrelated jitter"
/// schedule: each delay is drawn uniformly from `[base, prev * 3]`,
/// capped). Deterministically seeded so tests replay.
#[derive(Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Lower bound of every delay.
    pub base_delay: Duration,
    /// Upper cap of every delay.
    pub max_delay: Duration,
    rng: Mutex<u64>,
}

impl RetryPolicy {
    /// A policy of `max_attempts` total attempts with delays in
    /// `[base_delay, max_delay]`, jittered from `seed`.
    pub fn new(max_attempts: u32, base_delay: Duration, max_delay: Duration, seed: u64) -> Self {
        RetryPolicy { max_attempts, base_delay, max_delay, rng: Mutex::new(seed.max(1)) }
    }

    /// A modest default: 3 attempts, 1–20 ms delays.
    pub fn quick(seed: u64) -> Self {
        RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(20), seed)
    }

    fn next_u64(&self) -> u64 {
        let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        x
    }

    /// The delay to sleep before the next attempt, given the previous
    /// delay (`None` for the first retry).
    pub fn next_delay(&self, prev: Option<Duration>) -> Duration {
        let base = self.base_delay.as_micros() as u64;
        let prev = prev.unwrap_or(self.base_delay).as_micros() as u64;
        let hi = (prev.saturating_mul(3)).max(base + 1);
        let drawn = base + self.next_u64() % (hi - base);
        Duration::from_micros(drawn).min(self.max_delay)
    }

    /// Runs `op` until it succeeds, fails non-transiently, or exhausts
    /// the attempt budget; returns the final result and the number of
    /// *retries* performed (0 = first attempt sufficed or was final).
    pub fn run<T>(
        &self,
        is_retryable: impl Fn(&PrefError) -> bool,
        mut op: impl FnMut(u32) -> Result<T, PrefError>,
    ) -> (Result<T, PrefError>, u32) {
        let mut prev_delay = None;
        let mut retries = 0u32;
        loop {
            let attempt = retries;
            match op(attempt) {
                Ok(v) => return (Ok(v), retries),
                Err(e) if retries + 1 < self.max_attempts && is_retryable(&e) => {
                    let delay = self.next_delay(prev_delay);
                    std::thread::sleep(delay);
                    prev_delay = Some(delay);
                    retries += 1;
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

/// Geometry of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling window of recent run outcomes considered.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure ratio (failures / samples) at which the breaker opens.
    pub trip_ratio: f64,
    /// How long the breaker stays open before a half-open probe.
    pub cooldown: Duration,
    /// Diagnostic override: the breaker starts (and stays) open,
    /// short-circuiting every request into the degraded path. Defaults to
    /// the `QP_BREAKER_FORCE_OPEN` environment flag, which is how
    /// `scripts/check.sh` proves the degraded path serves green.
    pub forced_open: bool,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(500),
            forced_open: crate::personalize::env_flag("QP_BREAKER_FORCE_OPEN"),
        }
    }
}

/// The breaker's state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests run the full pipeline.
    Closed,
    /// Tripped: requests short-circuit into the degraded path.
    Open,
    /// Probing: one request runs the full pipeline, the rest
    /// short-circuit, until the probe's outcome decides.
    HalfOpen,
}

/// What the breaker tells a request to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the full pipeline.
    Allow,
    /// Run the full pipeline *as the half-open probe*; report the result
    /// with `was_probe = true`.
    Probe,
    /// Skip personalization; serve the degraded answer.
    ShortCircuit,
}

/// A state change, for `breaker.*` events and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed/HalfOpen → Open.
    Opened,
    /// Open → HalfOpen (a probe was dispatched).
    HalfOpened,
    /// HalfOpen → Closed (the probe succeeded).
    Closed,
}

#[derive(Debug)]
struct BreakerInner {
    outcomes: VecDeque<bool>, // true = failed
    failures: usize,
    state: BreakerState,
    opened_at: Option<Instant>,
    probe_outstanding: bool,
}

/// A rolling-window circuit breaker over run outcomes. See the module
/// docs for the state machine; thread-safe behind one small mutex.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A breaker with the given geometry. With
    /// [`BreakerConfig::forced_open`] it starts open and never leaves.
    pub fn new(config: BreakerConfig) -> Self {
        let state = if config.forced_open { BreakerState::Open } else { BreakerState::Closed };
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                outcomes: VecDeque::new(),
                failures: 0,
                state,
                opened_at: None,
                probe_outstanding: false,
            }),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The current state-machine position.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).state
    }

    /// Decides what the next request does, advancing Open → HalfOpen
    /// when the cooldown has elapsed. The transition (if any) is returned
    /// so the caller can emit the `breaker.half_open` event.
    pub fn preflight(&self) -> (BreakerDecision, Option<BreakerTransition>) {
        if self.config.forced_open {
            return (BreakerDecision::ShortCircuit, None);
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => (BreakerDecision::Allow, None),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.config.cooldown)
                    .unwrap_or(true);
                if cooled && !inner.probe_outstanding {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_outstanding = true;
                    (BreakerDecision::Probe, Some(BreakerTransition::HalfOpened))
                } else {
                    (BreakerDecision::ShortCircuit, None)
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_outstanding {
                    (BreakerDecision::ShortCircuit, None)
                } else {
                    inner.probe_outstanding = true;
                    (BreakerDecision::Probe, None)
                }
            }
        }
    }

    /// Records a run outcome. `was_probe` marks the half-open probe's
    /// result: success closes the breaker (clearing the window), failure
    /// re-opens it. Ordinary closed-state outcomes roll through the
    /// window and may trip the breaker open. Returns the transition, if
    /// any, so the caller can emit `breaker.open` / `breaker.close`.
    pub fn record(&self, failed: bool, was_probe: bool) -> Option<BreakerTransition> {
        if self.config.forced_open {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if was_probe {
            inner.probe_outstanding = false;
            if failed {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                return Some(BreakerTransition::Opened);
            }
            inner.state = BreakerState::Closed;
            inner.outcomes.clear();
            inner.failures = 0;
            return Some(BreakerTransition::Closed);
        }
        if inner.state != BreakerState::Closed {
            // A run admitted before the breaker opened is finishing late;
            // its outcome is stale, so it neither trips nor heals.
            return None;
        }
        inner.outcomes.push_back(failed);
        if failed {
            inner.failures += 1;
        }
        while inner.outcomes.len() > self.config.window {
            if inner.outcomes.pop_front() == Some(true) {
                inner.failures -= 1;
            }
        }
        let samples = inner.outcomes.len();
        if samples >= self.config.min_samples.max(1) {
            let ratio = inner.failures as f64 / samples as f64;
            if ratio >= self.config.trip_ratio {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.outcomes.clear();
                inner.failures = 0;
                return Some(BreakerTransition::Opened);
            }
        }
        None
    }
}

/// The resilience bundle a [`crate::Personalizer`] consults around every
/// [`crate::Personalizer::run`]: any subset of admission control, circuit
/// breaking, and retry. Share one bundle (via `Arc`) across the
/// personalizers of a serving fleet so they shed, trip, and recover
/// together.
#[derive(Debug, Default)]
pub struct Resilience {
    /// In-flight permit limiter, if any.
    pub admission: Option<AdmissionController>,
    /// Circuit breaker, if any.
    pub breaker: Option<CircuitBreaker>,
    /// Retry policy for transient errors, if any.
    pub retry: Option<RetryPolicy>,
}

impl Resilience {
    /// An empty bundle; attach mechanisms with the `with_*` builders.
    pub fn new() -> Self {
        Resilience::default()
    }

    /// Attaches an admission controller.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionController::new(config));
        self
    }

    /// Attaches a circuit breaker.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(config));
        self
    }

    /// Attaches a retry policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// A serving-oriented default: default admission geometry, default
    /// breaker, quick retry seeded from `seed`.
    pub fn serving_default(seed: u64) -> Self {
        Resilience::new()
            .with_admission(AdmissionConfig::default())
            .with_breaker(BreakerConfig::default())
            .with_retry(RetryPolicy::quick(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env_breaker(mut config: BreakerConfig) -> CircuitBreaker {
        config.forced_open = false;
        CircuitBreaker::new(config)
    }

    #[test]
    fn admission_admits_up_to_capacity_then_sheds() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_inflight: 2,
            max_queue_wait: Duration::from_millis(5),
        });
        let p1 = ctrl.try_acquire().expect("first");
        let p2 = ctrl.try_acquire().expect("second");
        assert_eq!(ctrl.in_flight(), 2);
        let shed = ctrl.try_acquire().expect_err("third must shed");
        assert_eq!(shed.in_flight, 2);
        assert!(shed.waited >= Duration::from_millis(5));
        drop(p1);
        let p3 = ctrl.try_acquire().expect("slot released");
        drop(p2);
        drop(p3);
        assert_eq!(ctrl.in_flight(), 0);
    }

    #[test]
    fn queued_request_admits_when_a_permit_frees() {
        let ctrl = std::sync::Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight: 1,
            max_queue_wait: Duration::from_secs(5),
        }));
        let permit = ctrl.try_acquire().expect("first");
        let waiter = {
            let ctrl = std::sync::Arc::clone(&ctrl);
            std::thread::spawn(move || ctrl.try_acquire().map(|p| p.waited))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        let waited = waiter.join().expect("no panic").expect("admitted after release");
        assert!(waited >= Duration::from_millis(10), "actually queued: {waited:?}");
    }

    #[test]
    fn retry_runs_until_transient_errors_stop() {
        let policy = RetryPolicy::new(4, Duration::from_micros(10), Duration::from_micros(50), 7);
        let mut failures_left = 2;
        let (out, retries) = policy.run(
            |_| true,
            |attempt| {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(PrefError::Exec(ExecError::Fault(format!("attempt {attempt}"))))
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 2, "succeeded on the third attempt");
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_stops_at_non_transient_and_at_budget() {
        let policy = RetryPolicy::new(3, Duration::from_micros(10), Duration::from_micros(50), 7);
        let (out, retries) =
            policy.run(is_transient, |_| Err::<(), _>(PrefError::UnsupportedQuery("x".into())));
        assert!(out.is_err());
        assert_eq!(retries, 0, "non-transient errors are not retried");

        let (out, retries) =
            policy.run(is_transient, |_| Err::<(), _>(PrefError::Exec(ExecError::Fault("io".into()))));
        assert!(out.is_err());
        assert_eq!(retries, 2, "budget of 3 attempts = 2 retries");
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&PrefError::Exec(ExecError::Fault("x".into()))));
        assert!(is_transient(&PrefError::Storage(StorageError::Injected("x".into()))));
        assert!(!is_transient(&PrefError::Exec(ExecError::Cancelled)));
        assert!(!is_transient(&PrefError::UnsupportedQuery("x".into())));
    }

    #[test]
    fn backoff_stays_within_bounds_and_replays_per_seed() {
        let bounds = (Duration::from_micros(100), Duration::from_millis(5));
        let draw = |seed| {
            let p = RetryPolicy::new(5, bounds.0, bounds.1, seed);
            let mut prev = None;
            (0..32)
                .map(|_| {
                    let d = p.next_delay(prev);
                    prev = Some(d);
                    d
                })
                .collect::<Vec<_>>()
        };
        let a = draw(11);
        assert_eq!(a, draw(11), "seeded jitter replays");
        assert_ne!(a, draw(12));
        for d in a {
            assert!(d >= bounds.0 && d <= bounds.1, "{d:?} out of bounds");
        }
    }

    #[test]
    fn breaker_trips_on_failure_ratio_and_short_circuits() {
        let b = no_env_breaker(BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown: Duration::from_secs(60),
            forced_open: false,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.record(false, false), None);
        assert_eq!(b.record(true, false), None);
        assert_eq!(b.record(true, false), None, "below min_samples");
        let transition = b.record(true, false);
        assert_eq!(transition, Some(BreakerTransition::Opened), "3/4 failures ≥ 0.5");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.preflight().0, BreakerDecision::ShortCircuit, "cooldown not elapsed");
    }

    #[test]
    fn breaker_probes_after_cooldown_and_closes_on_success() {
        let b = no_env_breaker(BreakerConfig {
            window: 8,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(10),
            forced_open: false,
        });
        b.record(true, false);
        assert_eq!(b.record(true, false), Some(BreakerTransition::Opened));
        std::thread::sleep(Duration::from_millis(15));
        let (decision, transition) = b.preflight();
        assert_eq!(decision, BreakerDecision::Probe);
        assert_eq!(transition, Some(BreakerTransition::HalfOpened));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent requests keep short-circuiting while the probe runs.
        assert_eq!(b.preflight().0, BreakerDecision::ShortCircuit);
        assert_eq!(b.record(false, true), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.preflight().0, BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = no_env_breaker(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(1),
            forced_open: false,
        });
        b.record(true, false);
        b.record(true, false);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(b.preflight().0, BreakerDecision::Probe);
        assert_eq!(b.record(true, true), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn stale_outcomes_do_not_heal_an_open_breaker() {
        let b = no_env_breaker(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: Duration::from_secs(60),
            forced_open: false,
        });
        b.record(true, false);
        b.record(true, false);
        assert_eq!(b.state(), BreakerState::Open);
        // A slow request admitted before the trip finishes successfully.
        assert_eq!(b.record(false, false), None);
        assert_eq!(b.state(), BreakerState::Open, "stale success must not close it");
    }

    #[test]
    fn forced_open_always_short_circuits_and_never_recovers() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(1),
            forced_open: true,
        });
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.preflight().0, BreakerDecision::ShortCircuit);
        assert_eq!(b.record(false, false), None);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(b.preflight().0, BreakerDecision::ShortCircuit, "no probes when forced");
    }

    #[test]
    fn window_rolls_old_outcomes_out() {
        let b = no_env_breaker(BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_ratio: 0.75,
            cooldown: Duration::from_secs(60),
            forced_open: false,
        });
        // Two failures, then a stream of successes: the failures roll out
        // of the window, so the breaker never trips.
        b.record(true, false);
        b.record(true, false);
        for _ in 0..8 {
            assert_eq!(b.record(false, false), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
