//! Human-readable explanations of personalized tuples.
//!
//! §5 requires personalized answers to be *self-explanatory*: "for each
//! tuple returned, the preferences satisfied and/or not should be
//! provided in order to justify its selection and ranking." PPA records
//! the satisfied/failed index sets; this module renders them as prose.

use qp_storage::Catalog;

use crate::answer::PersonalizedTuple;
use crate::profile::Profile;
use crate::select::SelectedPreference;

/// Renders one tuple's justification, e.g.
///
/// ```text
/// doi 0.84 — satisfies: DIRECTOR.name='W. Allen' (+0.72),
/// GENRE.genre='musical' absent (+0.56); fails: MOVIE.year<1980 (-0.00)
/// ```
pub fn explain_tuple(
    tuple: &PersonalizedTuple,
    selected: &[SelectedPreference],
    profile: &Profile,
    catalog: &Catalog,
) -> String {
    let mut out = format!("doi {:.2} — ", tuple.doi);
    let describe = |i: usize, sign: bool| -> String {
        let sp = &selected[i];
        let sel = sp.sel(profile);
        let what = sp.describe(profile, catalog);
        if sign {
            let d = sp.d_plus_peak(profile);
            if sel.is_presence() {
                format!("{what} (+{d:.2})")
            } else {
                format!("{what} absent (+{d:.2})")
            }
        } else {
            let d = sp.d_minus(profile);
            format!("{what} ({d:.2})")
        }
    };
    if tuple.satisfied.is_empty() {
        out.push_str("satisfies: none");
    } else {
        out.push_str("satisfies: ");
        out.push_str(
            &tuple
                .satisfied
                .iter()
                .map(|&i| describe(i, true))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if !tuple.failed.is_empty() {
        out.push_str("; fails: ");
        out.push_str(
            &tuple.failed.iter().map(|&i| describe(i, false)).collect::<Vec<_>>().join(", "),
        );
    }
    out
}

/// Renders a whole answer, one line per tuple (capped at `max_rows`).
pub fn explain_answer(
    answer: &crate::answer::PersonalizedAnswer,
    selected: &[SelectedPreference],
    profile: &Profile,
    catalog: &Catalog,
    max_rows: usize,
) -> String {
    let mut out = String::new();
    for t in answer.tuples.iter().take(max_rows) {
        let row: Vec<String> = t.row.iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join(" | "));
        out.push_str("\n    ");
        out.push_str(&explain_tuple(t, selected, profile, catalog));
        out.push('\n');
    }
    if answer.len() > max_rows {
        out.push_str(&format!("… {} more tuples\n", answer.len() - max_rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use qp_storage::{Attribute, DataType, Value};

    fn fixture() -> (Catalog, Profile, Vec<SelectedPreference>) {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("year", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        let mut p = Profile::new();
        let j = p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        let a = p
            .add_selection(&c, "GENRE", "genre", CompareOp::Eq, "musical", Doi::new(-0.9, 0.7).unwrap())
            .unwrap();
        let b = p
            .add_selection(&c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        let rel = c.relation_by_name("MOVIE").unwrap().id;
        let selected = vec![
            SelectedPreference {
                anchor: rel,
                joins: vec![j],
                selection: a,
                join_degree: 0.8,
                criticality: 1.28,
            },
            SelectedPreference {
                anchor: rel,
                joins: vec![],
                selection: b,
                join_degree: 1.0,
                criticality: 0.7,
            },
        ];
        (c, p, selected)
    }

    #[test]
    fn absence_satisfaction_reads_as_absent() {
        let (c, p, sel) = fixture();
        let t = PersonalizedTuple {
            tuple_id: Some(1),
            row: vec![Value::str("Heat")],
            doi: 0.56,
            satisfied: vec![0],
            failed: vec![1],
        };
        let s = explain_tuple(&t, &sel, &p, &c);
        assert!(s.contains("musical' absent (+0.56)"), "{s}");
        assert!(s.contains("fails: MOVIE.year<1980 (-0.70)"), "{s}");
        assert!(s.starts_with("doi 0.56"), "{s}");
    }

    #[test]
    fn empty_satisfaction_renders() {
        let (c, p, sel) = fixture();
        let t = PersonalizedTuple {
            tuple_id: None,
            row: vec![],
            doi: -0.3,
            satisfied: vec![],
            failed: vec![0, 1],
        };
        let s = explain_tuple(&t, &sel, &p, &c);
        assert!(s.contains("satisfies: none"), "{s}");
    }

    #[test]
    fn answer_rendering_caps_rows() {
        let (c, p, sel) = fixture();
        let answer = crate::answer::PersonalizedAnswer {
            columns: vec!["title".into()],
            tuples: (0..5)
                .map(|i| PersonalizedTuple {
                    tuple_id: Some(i),
                    row: vec![Value::str(format!("m{i}"))],
                    doi: 0.5,
                    satisfied: vec![0],
                    failed: vec![1],
                })
                .collect(),
        };
        let s = explain_answer(&answer, &sel, &p, &c, 2);
        assert!(s.contains("m0"));
        assert!(s.contains("… 3 more tuples"));
        assert!(!s.contains("m3"));
    }
}
