//! Incremental maintenance of materialized preference results under
//! write traffic.
//!
//! PPA's batched-probe path materializes each selected preference query
//! exactly once per run ([`crate::answer::ppa`]'s `PrefResult`). Without
//! maintenance those materializations die with the database epoch: every
//! delta publish bumps [`Database::version`], every cache keyed on it
//! stops matching, and the next personalization run re-executes all K
//! preference queries from scratch — even when the delta touched a
//! handful of tuples in one relation.
//!
//! This module keeps the materializations alive across epochs:
//!
//! * [`MatRegistry`] — a shared map from `(db id, db version, preference
//!   SQL)` to a materialized result. PPA runs with a registry attached
//!   fetch every preference result up front and register what they had
//!   to build, so in steady state a run executes *zero* preference
//!   queries.
//! * [`Maintainer`] — the write path. [`Maintainer::publish`] applies a
//!   typed [`DbDelta`] through [`SnapshotStore::publish_delta`] and then
//!   re-keys the registry to the new epoch: entries whose relations the
//!   delta did not touch are **carried** (same `Arc`, new version key);
//!   single-relation entries are **patched** by re-evaluating the
//!   preference predicate against just the inserted row ids and
//!   filtering the deleted ones; everything else is **rematerialized**
//!   in full (and **dropped** on execution failure — the next run
//!   rebuilds it).
//!
//! **Byte identity.** A patched result must be indistinguishable from a
//! recompute against the new epoch. Three invariants make that hold:
//! row ids are never reused (`Table` tombstones slots, so a
//! delete-then-reinsert lands in a fresh slot with a fresh id), result
//! rows are kept in canonical ascending-tuple-id order (inserted ids
//! sort after every surviving id, so filter + append preserves the
//! canon), and a patchable entry's predicate and degree read only the
//! tuple's own relation (single-relation gate below), so surviving rows
//! keep their degrees verbatim.
//!
//! **What is never cached.** Selects referencing the per-profile elastic
//! UDF closures (`qp_elastic*` — re-registered with different semantics
//! on every classify) and selects over relations the catalog cannot
//! resolve are excluded from the registry entirely: their SQL text does
//! not determine their meaning across requests.
//!
//! **What survives a publish.** Data deltas invalidate *no* per-user
//! selection memos: preference selection reads the catalog and the
//! profile, never table data, so the surgical invalidation set of a
//! pure data delta is provably empty (pinned by a regression test; see
//! `DESIGN.md`). Schema/catalog changes go through
//! [`Maintainer::publish_schema`], which falls back to wholesale
//! invalidation: the registry is cleared and every profile-store
//! selection memo is dropped.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use qp_exec::{Engine, ExecError, ExecStats, QueryGuard};
use qp_obs::MetricsRegistry;
use qp_sql::{builder, Expr, Query, Select, SelectItem, TableRef};
use qp_storage::{
    AppliedDelta, Catalog, Database, DbDelta, RelId, RowId, SnapshotStore, StorageError,
};

use crate::answer::ppa::{materialize_pref, PrefResult, TidBuild, TidMap};
use crate::answer::subquery::merge_filter;
use crate::store::ProfileStore;

/// Default capacity of a [`MatRegistry`]: per-epoch entries are one per
/// distinct (preference SQL) string, so this comfortably covers a serving
/// fleet's working set of selected preferences.
const DEFAULT_CAPACITY: usize = 8192;

/// Recovers a poisoned mutex: registry state is a cache of immutable
/// `Arc`s re-keyed atomically per entry, so a panicking holder cannot
/// leave a torn value behind.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Registry key: one materialized preference result per database epoch
/// per preference-query text. SQL-text keying is sound here because the
/// generated preference selects embed their degree constants as literals
/// (and elastic-UDF selects, whose text does *not* pin their semantics,
/// are never registered).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MatKey {
    /// [`Database::id`] — epochs of the same logical database share it.
    db: u64,
    /// [`Database::version`] — the epoch the result was computed against.
    version: u64,
    /// The preference select's SQL text.
    sql: String,
}

/// One registered materialization plus everything maintenance needs to
/// carry, patch, or rebuild it.
struct MatEntry {
    /// The materialized result (shared with in-flight PPA runs).
    result: Arc<PrefResult>,
    /// The preference select that produced it.
    select: Select,
    /// NULL-degree default (the preference's d+/d−).
    default: f64,
    /// Every relation the select reads, subqueries included; a delta
    /// touching none of them carries the entry unchanged.
    rels: Vec<RelId>,
    /// The relation whose row ids are the result's tuple ids.
    tid_rel: RelId,
    /// The binding that relation carries inside the select.
    tid_binding: String,
    /// Whether the entry qualifies for the in-place patch path (see
    /// [`SelectShape`]'s gate in [`MatRegistry::register`]).
    patchable: bool,
}

/// What one `MatRegistry::maintain` pass did, per entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintOutcome {
    /// Entries patched in place (delta-evaluated inserts, filtered
    /// deletes).
    pub patched: u64,
    /// Entries whose relations the delta did not touch: re-keyed to the
    /// new epoch with the same `Arc`.
    pub carried: u64,
    /// Entries rebuilt by re-executing the full preference query.
    pub rematerialized: u64,
    /// Entries dropped because rebuilding them failed; the next PPA run
    /// rebuilds and re-registers them.
    pub dropped: u64,
    /// Entries discarded because they belonged to an epoch older than
    /// the one the delta was applied to (a reader registered against a
    /// superseded snapshot).
    pub stale: u64,
}

/// Shared registry of materialized preference results, keyed by database
/// epoch and preference-SQL text. See the module docs for the lifecycle;
/// see [`crate::Personalizer::with_maintenance`] for attaching one to
/// the serving path.
pub struct MatRegistry {
    entries: Mutex<HashMap<MatKey, MatEntry>>,
    capacity: usize,
}

impl std::fmt::Debug for MatRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatRegistry")
            .field("entries", &lock(&self.entries).len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for MatRegistry {
    fn default() -> Self {
        MatRegistry::new()
    }
}

impl MatRegistry {
    /// An empty registry with the default capacity.
    pub fn new() -> Self {
        MatRegistry::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty registry holding at most `capacity` entries; at capacity,
    /// registration sheds superseded-epoch entries first and refuses new
    /// entries rather than evicting current-epoch ones.
    pub fn with_capacity(capacity: usize) -> Self {
        MatRegistry { entries: Mutex::new(HashMap::new()), capacity: capacity.max(1) }
    }

    /// Number of registered materializations (across all epochs).
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (the wholesale fallback for schema/catalog
    /// changes), returning how many were dropped.
    pub fn clear(&self) -> usize {
        let mut map = lock(&self.entries);
        let n = map.len();
        map.clear();
        n
    }

    /// Looks up the materialization of `select` for exactly `db`'s epoch.
    pub(crate) fn get(&self, db: &Database, select: &Select) -> Option<Arc<PrefResult>> {
        let key =
            MatKey { db: db.id(), version: db.version(), sql: select.to_string() };
        lock(&self.entries).get(&key).map(|e| Arc::clone(&e.result))
    }

    /// Registers a freshly built materialization for `db`'s epoch.
    /// Selects whose text does not pin their semantics (elastic UDFs,
    /// unresolvable relations) are silently refused. Returns how many
    /// superseded-epoch entries were evicted to make room (normally 0).
    pub(crate) fn register(
        &self,
        db: &Database,
        select: &Select,
        default: f64,
        tid_rel: RelId,
        tid_binding: &str,
        result: Arc<PrefResult>,
    ) -> usize {
        let mut shape = SelectShape::default();
        scan_select(db.catalog(), select, &mut shape);
        if shape.elastic || shape.unknown {
            return 0;
        }
        let patchable = !shape.subquery
            && !shape.derived
            && select.group_by.is_empty()
            && select.having.is_none()
            && shape.rels.as_slice() == [tid_rel];
        let key = MatKey { db: db.id(), version: db.version(), sql: select.to_string() };
        let entry = MatEntry {
            result,
            select: select.clone(),
            default,
            rels: shape.rels,
            tid_rel,
            tid_binding: tid_binding.to_string(),
            patchable,
        };
        let mut map = lock(&self.entries);
        let mut evicted = 0;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            let shed: Vec<MatKey> = map
                .keys()
                .filter(|k| k.db != key.db || k.version != key.version)
                .cloned()
                .collect();
            for k in shed {
                if map.len() < self.capacity {
                    break;
                }
                map.remove(&k);
                evicted += 1;
            }
            if map.len() >= self.capacity {
                return evicted; // full of current-epoch entries: refuse
            }
        }
        // A concurrent run may have registered the same key; either
        // value is byte-identical (same epoch, same SQL), keep the first.
        map.entry(key).or_insert(entry);
        evicted
    }

    /// Re-keys every entry of `db`'s logical database from the delta's
    /// old epoch to its new one: carry / patch / rematerialize / drop per
    /// the module docs. Entries registered against older epochs are
    /// discarded as stale; entries already at the new epoch (registered
    /// by a racing reader) are left alone.
    pub(crate) fn maintain(
        &self,
        db: &Database,
        applied: &AppliedDelta,
        engine: &Engine,
    ) -> MaintOutcome {
        let mut out = MaintOutcome::default();
        let mut work: Vec<(MatKey, MatEntry)> = Vec::new();
        {
            let mut map = lock(&self.entries);
            let keys: Vec<MatKey> = map
                .keys()
                .filter(|k| k.db == db.id() && k.version <= applied.old_version)
                .cloned()
                .collect();
            for k in keys {
                if let Some((key, entry)) = map.remove_entry(&k) {
                    if key.version < applied.old_version {
                        out.stale += 1;
                    } else {
                        work.push((key, entry));
                    }
                }
            }
        }
        let touched: HashSet<RelId> = applied.relations.iter().map(|r| r.rel).collect();
        let guard = QueryGuard::unlimited();
        let mut keep: Vec<(MatKey, MatEntry)> = Vec::with_capacity(work.len());
        for (key, mut entry) in work {
            let fresh = MatKey { db: key.db, version: applied.new_version, sql: key.sql };
            if !entry.rels.iter().any(|r| touched.contains(r)) {
                out.carried += 1;
                keep.push((fresh, entry));
                continue;
            }
            let patched = if entry.patchable {
                applied.relation(entry.tid_rel).and_then(|slice| {
                    eval_inserted(engine, db, &guard, &entry, &slice.inserted)
                        .ok()
                        .map(|appended| patch_result(&entry.result, &slice.deleted, &appended))
                })
            } else {
                None
            };
            if let Some(result) = patched {
                entry.result = Arc::new(result);
                out.patched += 1;
                keep.push((fresh, entry));
                continue;
            }
            let mut st = ExecStats::default();
            match materialize_pref(engine, db, &guard, &entry.select, entry.default, &mut st) {
                Ok(r) => {
                    entry.result = Arc::new(r);
                    out.rematerialized += 1;
                    keep.push((fresh, entry));
                }
                Err(_) => out.dropped += 1,
            }
        }
        let mut map = lock(&self.entries);
        for (k, e) in keep {
            // A reader racing ahead of maintenance may have rebuilt the
            // same key against the published epoch; both values are
            // byte-identical, keep whichever landed first.
            map.entry(k).or_insert(e);
        }
        out
    }
}

/// Everything [`MatRegistry::register`] learns from walking a select.
#[derive(Debug, Default)]
struct SelectShape {
    /// Distinct relations read anywhere in the select (subqueries and
    /// derived tables included), in first-reference order.
    rels: Vec<RelId>,
    /// Contains an `IN (SELECT …)`.
    subquery: bool,
    /// Reads a derived table.
    derived: bool,
    /// Calls a per-profile elastic UDF (`qp_elastic*`).
    elastic: bool,
    /// References a relation the catalog cannot resolve.
    unknown: bool,
}

fn scan_select(catalog: &Catalog, s: &Select, shape: &mut SelectShape) {
    for tr in &s.from {
        match tr {
            TableRef::Relation { name, .. } => match catalog.relation_by_name(name) {
                Ok(rel) => {
                    if !shape.rels.contains(&rel.id) {
                        shape.rels.push(rel.id);
                    }
                }
                Err(_) => shape.unknown = true,
            },
            TableRef::Derived { query, .. } => {
                shape.derived = true;
                scan_query(catalog, query, shape);
            }
        }
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            scan_expr(catalog, expr, shape);
        }
    }
    if let Some(e) = &s.where_clause {
        scan_expr(catalog, e, shape);
    }
    for e in &s.group_by {
        scan_expr(catalog, e, shape);
    }
    if let Some(e) = &s.having {
        scan_expr(catalog, e, shape);
    }
}

fn scan_query(catalog: &Catalog, q: &Query, shape: &mut SelectShape) {
    for s in q.selects() {
        scan_select(catalog, s, shape);
    }
    for o in &q.order_by {
        scan_expr(catalog, &o.expr, shape);
    }
}

fn scan_expr(catalog: &Catalog, e: &Expr, shape: &mut SelectShape) {
    match e {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => scan_expr(catalog, expr, shape),
        Expr::Binary { left, right, .. } => {
            scan_expr(catalog, left, shape);
            scan_expr(catalog, right, shape);
        }
        Expr::Between { expr, low, high, .. } => {
            scan_expr(catalog, expr, shape);
            scan_expr(catalog, low, shape);
            scan_expr(catalog, high, shape);
        }
        Expr::InList { expr, list, .. } => {
            scan_expr(catalog, expr, shape);
            for v in list {
                scan_expr(catalog, v, shape);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            shape.subquery = true;
            scan_expr(catalog, expr, shape);
            scan_query(catalog, subquery, shape);
        }
        Expr::Function { name, args, .. } => {
            if name.to_ascii_lowercase().starts_with("qp_elastic") {
                shape.elastic = true;
            }
            for a in args {
                scan_expr(catalog, a, shape);
            }
        }
    }
}

/// Re-evaluates a patchable entry's preference select against just the
/// delta's inserted row ids (the same rowid-set rebind PPA's emission
/// bursts use) and returns the qualifying `(tid, degree)` pairs in
/// canonical ascending-id order.
fn eval_inserted(
    engine: &Engine,
    db: &Database,
    guard: &QueryGuard,
    entry: &MatEntry,
    inserted: &[RowId],
) -> Result<Vec<(u64, f64)>, ExecError> {
    if inserted.is_empty() {
        return Ok(Vec::new());
    }
    let mut sq = entry.select.clone();
    merge_filter(
        &mut sq,
        builder::eq(builder::col(&entry.tid_binding, "rowid"), builder::int(0)),
    );
    let mut q = engine.prepare(db, &Query::from_select(sq))?;
    let ids: Arc<Vec<u64>> = Arc::new(inserted.iter().map(|r| r.0).collect());
    q.rebind_rowid_set(entry.tid_rel, &ids);
    let mut st = ExecStats::default();
    let rows = engine.execute_prepared_rows_guarded(db, &q, &mut st, guard)?;
    let mut seen: TidMap<()> = TidMap::with_capacity_and_hasher(rows.len(), TidBuild::default());
    let mut out: Vec<(u64, f64)> = Vec::with_capacity(rows.len());
    for r in &rows {
        let tid = match r[0].as_i64() {
            Some(t) if t >= 0 => t as u64,
            _ => continue,
        };
        if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(tid) {
            e.insert(());
            out.push((tid, r[1].as_f64().unwrap_or(entry.default)));
        }
    }
    out.sort_unstable_by_key(|&(t, _)| t);
    Ok(out)
}

/// Applies one delta to a materialized result: drop deleted ids, append
/// the delta-evaluated inserts. Inserted row ids are strictly greater
/// than every pre-delta id (slots are never reused), so filter + append
/// preserves the canonical ascending order a recompute would produce.
fn patch_result(old: &PrefResult, deleted: &[RowId], appended: &[(u64, f64)]) -> PrefResult {
    let dead: HashSet<u64> = deleted.iter().map(|r| r.0).collect();
    let mut rows: Vec<(u64, f64)> = Vec::with_capacity(old.rows.len() + appended.len());
    rows.extend(old.rows.iter().copied().filter(|(t, _)| !dead.contains(t)));
    rows.extend(appended.iter().copied().filter(|(t, _)| !old.index.contains_key(t)));
    debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "patched rows out of canon");
    let mut index: TidMap<f64> = TidMap::with_capacity_and_hasher(rows.len(), TidBuild::default());
    for &(t, d) in &rows {
        index.insert(t, d);
    }
    PrefResult { rows, index }
}

/// The write path of a maintained deployment: serializes delta publishes
/// against registry maintenance so every published epoch's registry
/// entries are re-keyed before the next delta lands, and owns the
/// wholesale-invalidation fallback for schema changes.
///
/// Readers are never blocked: they pin snapshots and hit the registry
/// lock only for map lookups. A reader racing a publish either sees the
/// old epoch (and the old epoch's entries, still keyed) or the new epoch
/// (whose entries appear as maintenance re-keys them; misses just
/// rebuild and re-register, which `MatRegistry::maintain` tolerates).
pub struct Maintainer {
    store: Arc<SnapshotStore>,
    registry: Arc<MatRegistry>,
    engine: Engine,
    profiles: Option<Arc<ProfileStore>>,
    metrics: Arc<MetricsRegistry>,
    publish_lock: Mutex<()>,
}

impl std::fmt::Debug for Maintainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maintainer").field("registry", &self.registry).finish()
    }
}

impl Maintainer {
    /// A maintainer over `store` with a fresh registry and a private
    /// engine for patch/rematerialize executions.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        let engine = Engine::new();
        let metrics = Arc::clone(engine.metrics());
        Maintainer {
            store,
            registry: Arc::new(MatRegistry::new()),
            engine,
            profiles: None,
            metrics,
            publish_lock: Mutex::new(()),
        }
    }

    /// Routes the `maint.*` counters to `metrics` (builder-style) — a
    /// server passes its shared registry so publishes show up in stats.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches the profile store whose per-user selection memos
    /// [`Maintainer::publish_schema`] must wholesale-invalidate
    /// (builder-style). Data deltas never touch it.
    pub fn with_profile_store(mut self, profiles: Arc<ProfileStore>) -> Self {
        self.profiles = Some(profiles);
        self
    }

    /// The registry to attach to serving personalizers
    /// ([`crate::Personalizer::with_maintenance`]).
    pub fn registry(&self) -> Arc<MatRegistry> {
        Arc::clone(&self.registry)
    }

    /// The snapshot store this maintainer publishes through.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Applies a typed data delta atomically and patches the registry to
    /// the published epoch, returning the new epoch, what the store
    /// applied, and how the registry absorbed it. Selection memos
    /// survive untouched (data deltas cannot change preference selection
    /// — see the module docs). A rejected delta publishes nothing and
    /// maintains nothing.
    pub fn publish(
        &self,
        delta: &DbDelta,
    ) -> Result<(Arc<Database>, AppliedDelta, MaintOutcome), StorageError> {
        let _serialized = lock(&self.publish_lock);
        let (db, applied) = self.store.publish_delta(delta)?;
        let outcome = self.registry.maintain(&db, &applied, &self.engine);
        self.metrics.counter("maint.deltas").inc();
        self.metrics.counter("maint.rows_inserted").add(applied.rows_inserted() as u64);
        self.metrics.counter("maint.rows_deleted").add(applied.rows_deleted() as u64);
        self.metrics.counter("maint.results_patched").add(outcome.patched);
        self.metrics.counter("maint.results_carried").add(outcome.carried);
        self.metrics.counter("maint.results_rematerialized").add(outcome.rematerialized);
        self.metrics.counter("maint.results_dropped").add(outcome.dropped + outcome.stale);
        // One publish that left every selection memo alive (the surgical
        // invalidation set of a data delta is empty).
        self.metrics.counter("maint.memo.kept").inc();
        Ok((db, applied, outcome))
    }

    /// Publishes a schema/catalog mutation through
    /// [`SnapshotStore::update`] and falls back to wholesale
    /// invalidation: every registry entry and every per-user selection
    /// memo is dropped, because catalog changes can change which
    /// preferences are selected and what their selects mean.
    pub fn publish_schema<T>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let _serialized = lock(&self.publish_lock);
        let out = self.store.update(f)?;
        let dropped = self.registry.clear();
        self.metrics.counter("maint.results_dropped").add(dropped as u64);
        let memos = self.profiles.as_ref().map_or(0, |p| p.clear_selection_memos());
        self.metrics.counter("maint.memo.wholesale").add(memos as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_sql::parse_query;
    use qp_storage::{Attribute, DataType, Value};

    fn seed_store() -> Arc<SnapshotStore> {
        let mut db = Database::new();
        db.create_relation(
            "R",
            vec![Attribute::new("a", DataType::Int), Attribute::new("b", DataType::Int)],
            &[],
        )
        .unwrap();
        db.create_relation("S", vec![Attribute::new("x", DataType::Int)], &[]).unwrap();
        for i in 0..10 {
            db.insert_by_name("R", vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        db.insert_by_name("S", vec![Value::Int(1)]).unwrap();
        Arc::new(SnapshotStore::new(db))
    }

    fn pref_select(sql: &str) -> Select {
        parse_query(sql).unwrap().selects()[0].clone()
    }

    /// The preference-shaped select the registry sees from PPA: rowid +
    /// degree projection over the tid relation.
    const PREF_SQL: &str = "select R.rowid as qp_tid, 0.8 as qp_degree from R where R.a >= 3";

    fn materialized(engine: &Engine, db: &Database, select: &Select) -> Arc<PrefResult> {
        let mut st = ExecStats::default();
        Arc::new(
            materialize_pref(engine, db, &QueryGuard::unlimited(), select, 0.8, &mut st).unwrap(),
        )
    }

    fn rel(db: &Database, name: &str) -> RelId {
        db.catalog().relation_by_name(name).unwrap().id
    }

    #[test]
    fn patched_entry_is_byte_identical_to_recompute() {
        let store = seed_store();
        let maintainer = Maintainer::new(Arc::clone(&store));
        let registry = maintainer.registry();
        let engine = Engine::new();
        let select = pref_select(PREF_SQL);
        let db0 = store.snapshot();
        let r = rel(&db0, "R");
        registry.register(&db0, &select, 0.8, r, "R", materialized(&engine, &db0, &select));
        assert_eq!(registry.len(), 1);

        // Delete a qualifying row, reinsert its tuple (fresh id), insert
        // one qualifying and one non-qualifying row.
        let delta = DbDelta::new()
            .delete("R", vec![Value::Int(5), Value::Int(50)])
            .insert("R", vec![Value::Int(5), Value::Int(50)])
            .insert("R", vec![Value::Int(77), Value::Int(770)])
            .insert("R", vec![Value::Int(-4), Value::Int(0)]);
        let (db1, _, _) = maintainer.publish(&delta).unwrap();

        let patched = registry.get(&db1, &select).expect("entry survived the publish");
        let recomputed = materialized(&engine, &db1, &select);
        assert_eq!(patched.rows, recomputed.rows, "patched != recompute-from-scratch");
        assert!(patched.rows.windows(2).all(|w| w[0].0 < w[1].0), "canonical order");
        // The old epoch's key is gone; the registry holds exactly the
        // re-keyed entry.
        assert!(registry.get(&db0, &select).is_none());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn untouched_relations_carry_the_same_arc() {
        let store = seed_store();
        let maintainer = Maintainer::new(Arc::clone(&store));
        let registry = maintainer.registry();
        let engine = Engine::new();
        let select = pref_select(PREF_SQL);
        let db0 = store.snapshot();
        let r = rel(&db0, "R");
        let built = materialized(&engine, &db0, &select);
        registry.register(&db0, &select, 0.8, r, "R", Arc::clone(&built));

        let delta = DbDelta::new().insert("S", vec![Value::Int(2)]);
        let (db1, _, _) = maintainer.publish(&delta).unwrap();
        let carried = registry.get(&db1, &select).expect("carried");
        assert!(Arc::ptr_eq(&carried, &built), "untouched entry must not be rebuilt");
    }

    #[test]
    fn join_entries_rematerialize_instead_of_patching() {
        let store = seed_store();
        let maintainer = Maintainer::new(Arc::clone(&store));
        let registry = maintainer.registry();
        let engine = Engine::new();
        let select = pref_select(
            "select R.rowid as qp_tid, 0.5 as qp_degree from R, S where R.a = S.x",
        );
        let db0 = store.snapshot();
        let r = rel(&db0, "R");
        registry.register(&db0, &select, 0.5, r, "R", materialized(&engine, &db0, &select));

        // Inserting into S changes which R rows join; a patch over R's
        // delta alone would miss it.
        let delta = DbDelta::new().insert("S", vec![Value::Int(7)]);
        let (db1, _, _) = maintainer.publish(&delta).unwrap();
        let maintained = registry.get(&db1, &select).expect("rematerialized");
        let recomputed = materialized(&engine, &db1, &select);
        assert_eq!(maintained.rows, recomputed.rows);
        assert!(maintained.index.contains_key(&7), "row joining the new S tuple");
    }

    #[test]
    fn elastic_and_unknown_selects_are_refused() {
        let store = seed_store();
        let registry = MatRegistry::new();
        let engine = Engine::new();
        let db = store.snapshot();
        let r = rel(&db, "R");
        let plain = pref_select(PREF_SQL);
        let result = materialized(&engine, &db, &plain);

        let elastic = pref_select(
            "select R.rowid as qp_tid, qp_elastic_0(R.a) as qp_degree from R where R.a >= 3",
        );
        registry.register(&db, &elastic, 0.8, r, "R", Arc::clone(&result));
        assert_eq!(registry.len(), 0, "elastic selects must never be cached");

        let unknown = pref_select("select NOPE.rowid as qp_tid, 1.0 as qp_degree from NOPE");
        registry.register(&db, &unknown, 1.0, r, "NOPE", result);
        assert_eq!(registry.len(), 0, "unresolvable relations must never be cached");
    }

    #[test]
    fn schema_publish_clears_registry_and_memos() {
        let store = seed_store();
        let profiles = Arc::new(ProfileStore::new());
        let maintainer =
            Maintainer::new(Arc::clone(&store)).with_profile_store(Arc::clone(&profiles));
        let registry = maintainer.registry();
        let engine = Engine::new();
        let select = pref_select(PREF_SQL);
        let db0 = store.snapshot();
        let r = rel(&db0, "R");
        registry.register(&db0, &select, 0.8, r, "R", materialized(&engine, &db0, &select));
        assert_eq!(registry.len(), 1);

        maintainer
            .publish_schema(|db| {
                db.create_relation("T2", vec![Attribute::new("z", DataType::Int)], &[])
                    .map(|_| ())
            })
            .unwrap();
        assert_eq!(registry.len(), 0, "schema change wholesale-invalidates the registry");
    }

    #[test]
    fn rejected_delta_maintains_nothing() {
        let store = seed_store();
        let maintainer = Maintainer::new(Arc::clone(&store));
        let registry = maintainer.registry();
        let engine = Engine::new();
        let select = pref_select(PREF_SQL);
        let db0 = store.snapshot();
        let r = rel(&db0, "R");
        registry.register(&db0, &select, 0.8, r, "R", materialized(&engine, &db0, &select));

        let bad = DbDelta::new().delete("R", vec![Value::Int(999), Value::Int(0)]);
        assert!(maintainer.publish(&bad).is_err());
        assert!(registry.get(&db0, &select).is_some(), "old epoch's entry untouched");
    }

    #[test]
    fn capacity_refuses_rather_than_evicting_current_epoch() {
        let store = seed_store();
        let registry = MatRegistry::with_capacity(1);
        let engine = Engine::new();
        let db = store.snapshot();
        let r = rel(&db, "R");
        let s1 = pref_select(PREF_SQL);
        let s2 = pref_select("select R.rowid as qp_tid, 0.2 as qp_degree from R where R.a < 3");
        let built = materialized(&engine, &db, &s1);
        registry.register(&db, &s1, 0.8, r, "R", Arc::clone(&built));
        registry.register(&db, &s2, 0.2, r, "R", built);
        assert_eq!(registry.len(), 1);
        assert!(registry.get(&db, &s1).is_some(), "first entry kept");
        assert!(registry.get(&db, &s2).is_none(), "second refused at capacity");
    }
}
