//! Generation of personalized answers (§5).
//!
//! Top-K preferences are integrated into the user query and a personalized
//! answer is generated. It should be (a) *interesting* — satisfy at least
//! L of the K preferences; (b) *ranked* by degree of interest; and
//! (c) *self-explanatory* — each tuple knows which preferences it
//! satisfies and fails.
//!
//! Two generators are provided:
//! * [`spa::spa`] — **Simply Personalized Answers**: the top-K preferences
//!   are integrated into one SQL statement (a union of per-preference
//!   sub-queries, grouped and ranked by a user-defined aggregate), which
//!   the engine executes as a whole.
//! * [`ppa::ppa`] — **Progressive Personalized Answers** (Figure 6):
//!   per-preference queries are executed in order of increasing
//!   selectivity, tuples are completed via parameterized queries, and
//!   results stream out as soon as the MEDI bound proves no better tuple
//!   can still appear.

pub mod explain;
pub mod maint;
pub mod ppa;
pub mod spa;
pub mod subquery;

use qp_storage::Row;

/// One tuple of a personalized answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedTuple {
    /// Row id of the tuple in the query's anchor relation (PPA only).
    pub tuple_id: Option<u64>,
    /// The initial query's projection for this tuple.
    pub row: Row,
    /// Overall degree of interest.
    pub doi: f64,
    /// Indexes (into the selected-preference list) of satisfied
    /// preferences. Empty for SPA, which the paper notes is not
    /// self-explanatory.
    pub satisfied: Vec<usize>,
    /// Indexes of failed preferences.
    pub failed: Vec<usize>,
}

/// A personalized answer: ranked, and (for PPA) self-explanatory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PersonalizedAnswer {
    /// Output column names (the initial query's projection).
    pub columns: Vec<String>,
    /// Tuples in rank order (PPA: emission order, which respects rank).
    pub tuples: Vec<PersonalizedTuple>,
}

impl PersonalizedAnswer {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Renders an aligned table with doi and explanations.
    pub fn display(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<8} {:<40} explanation\n", "doi", self.columns.join(", ")));
        for t in &self.tuples {
            let row: Vec<String> = t.row.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!(
                "{:<8.4} {:<40} +{:?} -{:?}\n",
                t.doi,
                row.join(", "),
                t.satisfied,
                t.failed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::Value;

    #[test]
    fn display_contains_rows() {
        let a = PersonalizedAnswer {
            columns: vec!["title".into()],
            tuples: vec![PersonalizedTuple {
                tuple_id: Some(1),
                row: vec![Value::str("Annie Hall")],
                doi: 0.72,
                satisfied: vec![0],
                failed: vec![1],
            }],
        };
        let s = a.display();
        assert!(s.contains("Annie Hall"));
        assert!(s.contains("0.72"));
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
