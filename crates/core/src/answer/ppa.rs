//! PPA — Progressive Personalized Answers (§5, Figure 6).
//!
//! Presence (and 1–1 absence) preferences become *presence queries* `S`,
//! 1–n absence preferences become *absence queries* `A`, each ordered by
//! increasing selectivity (histogram estimates). Presence queries return
//! tuples that *satisfy* their preference; absence queries return tuples
//! that *fail* theirs. When a query first surfaces a tuple `t`, the
//! remaining queries are evaluated for `t` alone via parameterized
//! queries `Qiˢ(t)` / `Qiᴬ(t)` — compiled once with a placeholder row id
//! and rebound per tuple, so each costs an O(1) row fetch plus a few
//! index probes. The tuple's full satisfied/failed sets — and hence its
//! exact doi under any mixed ranking function — are known immediately,
//! which is what makes the answer *self-explanatory*.
//!
//! Note that PPA never executes a `NOT IN` exclusion: 1–n absence
//! preferences are probed through their (cheap) failure-region queries,
//! the efficiency win over SPA the paper highlights.
//!
//! Progressiveness comes from **MEDI**, the Maximum Estimated Degree of
//! Interest any *unseen* tuple can still achieve. Before presence query
//! `i` runs, an unseen tuple can at best satisfy presence preferences
//! `i..` plus every absence preference; once the presence stage ends, at
//! best all absence preferences. Buffered tuples with `doi ≥ MEDI` are
//! emitted immediately — the first response typically arrives after the
//! first (most selective) presence query.
//!
//! Note on the paper's MEDI update: Figure 6 reduces MEDI to "the degree
//! of satisfying preferences corresponding to queries not yet executed".
//! During the absence stage that underestimates unseen tuples, which
//! still satisfy every *executed* absence query's preference precisely by
//! not having been returned by it. We use the corrected bound (all
//! absence preferences) so emission order provably respects rank.
//!
//! **Parallelism.** Two layers of a round are independent work. First,
//! each preference query's one-time materialization (`PrefResult`) is
//! an independent unit — the round's missing materializations fan out
//! over [`qp_exec::morsel_map`]'s work-stealing workers and are folded
//! back in worklist order, so accounting and any surfaced error match
//! the serial loop's. Second, per-tuple probes within a round are
//! independent: each round collects its fresh tuples serially (the
//! dedup against `seen` is order-sensitive), slices them into
//! `PROBE_CHUNK`-sized (256-tuple) items, and schedules the items as morsels
//! under a `ppa.parallel_round` span — a skewed round rebalances by
//! stealing instead of serializing behind the slowest contiguous chunk.
//! On the row path each worker clones the prepared probes once
//! ([`qp_exec::morsel_map_with`]'s per-worker state) and rebinds them in
//! place per tuple; on the vectorized path workers share the
//! materialized preference results read-only. Workers share the engine,
//! database and guard immutably and return their results in input
//! order, so a parallel round buffers exactly what a serial one would —
//! answers are byte-identical. On a guard trip or fault the whole
//! round's batch is discarded; every tuple of that round is bounded by
//! the round's MEDI, which is also the cut's final emission bound, so
//! the degraded answer still emits nothing it cannot prove the rank of.
//!
//! **Batched probes.** On the vectorized engine the per-tuple probe
//! executions disappear entirely: the first round that needs to probe a
//! preference materializes that preference query's *full* result once
//! (`PrefResult`) — first row per tuple id, in plan output order, which
//! is exactly the per-tuple `rows.first()` rule — and every later round
//! probes it by hash lookup. When the materialized preference's own round
//! comes up, the round replays the stored result instead of re-executing
//! the query, so a complete run executes each preference query exactly
//! once — the per-round work is pure in-memory lookups. Emission row
//! fetches are still batched per burst through
//! [`CompiledQuery::rebind_rowid_set`]: one set-fetch execution per
//! multi-tuple burst, returning rows in listed-id order. `QP_ROW_ENGINE=1`
//! falls back to per-tuple probes, which doubles as the parity oracle for
//! the batched path.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qp_exec::planner::CompiledQuery;
use qp_exec::{morsel_map, morsel_map_with, Engine, ExecError, ExecStats, QueryGuard};
use qp_sql::{builder, Query, Select, SelectItem, TableRef};
use qp_storage::{Database, RelId, Row};

use crate::answer::maint::MatRegistry;
use crate::answer::subquery::{classify, failure_select, merge_filter, satisfaction_select, IntegrationKind};
use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::degrade::{DegradeCause, DegradeEvent, Degradation, PpaPhase};
use crate::error::PrefError;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::SelectedPreference;

/// Maps an armed failpoint at `site` onto [`ExecError::Fault`]; a no-op
/// without the `failpoints` feature.
#[inline]
fn fail_point(site: &str) -> Result<(), ExecError> {
    qp_storage::failpoint::check(site).map_err(ExecError::Fault)
}

/// A splitmix64-style hasher for tuple-id keys. The tid sets and maps in
/// this module are membership-only (iteration order is never observed),
/// and at tens of thousands of probe-id operations per run the default
/// SipHash shows up in end-to-end PPA latency.
#[derive(Default)]
pub(crate) struct TidHasher(u64);

impl std::hash::Hasher for TidHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut x = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

pub(crate) type TidBuild = std::hash::BuildHasherDefault<TidHasher>;
type TidSet = HashSet<u64, TidBuild>;
pub(crate) type TidMap<V> = HashMap<u64, V, TidBuild>;

/// Instrumentation of a PPA run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PpaStats {
    /// Time until the first tuple was emitted (None for empty answers).
    pub first_response: Option<Duration>,
    /// Total execution time.
    pub total: Duration,
    /// Number of presence rounds evaluated (on the vectorized engine a
    /// round may replay an already-materialized preference result rather
    /// than re-execute its query).
    pub presence_queries: usize,
    /// Number of absence rounds evaluated (see `presence_queries`).
    pub absence_queries: usize,
    /// Number of parameterized probe executions: one per remaining query
    /// per tuple on the row path, one per preference — its one-time full
    /// materialization — on the vectorized engine.
    pub parameterized_queries: usize,
}

/// A qualified tuple buffered for emission, max-heap ordered by doi (ties
/// broken by tuple id for determinism).
#[derive(Debug, Clone)]
struct Buffered {
    doi: f64,
    tid: u64,
    satisfied: Vec<usize>,
    failed: Vec<usize>,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        self.doi == other.doi && self.tid == other.tid
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.doi.total_cmp(&other.doi).then_with(|| other.tid.cmp(&self.tid))
    }
}

/// Everything the parameterized probes learn about one candidate tuple.
struct Probed {
    /// Presence preferences the tuple satisfies, with degrees.
    sat: Vec<(usize, f64)>,
    /// Absence preferences the tuple fails, with (non-positive) degrees.
    abs_failed: Vec<(usize, f64)>,
    /// Parameterized queries executed for this tuple.
    queries: usize,
    /// Tuples covered by batched probe executions (0 on the per-tuple
    /// path; the batched path reports chunk totals on its first tuple).
    batched_tuples: usize,
    /// Execution counters those queries accrued.
    stats: ExecStats,
}

/// Fresh tuples per probe work item. Rounds slice their fresh tuples
/// into items of this size before handing them to the morsel scheduler
/// (which groups 1–4 items per morsel), so the steal granularity stays
/// fine enough to rebalance a skewed round.
const PROBE_CHUNK: usize = 256;

/// Splits `items` into consecutive chunks of at most [`PROBE_CHUNK`]
/// elements. Chunk order equals input order, so flattening the
/// per-chunk results reproduces the serial processing order exactly.
fn chunked<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let mut iter = items.into_iter();
    (0..n.div_ceil(PROBE_CHUNK))
        .map(|_| iter.by_ref().take(PROBE_CHUNK).collect())
        .collect()
}

/// One worker's private clones of the prepared probe queries, rebound in
/// place per tuple: `(presence probes, absence probes)`.
type LocalProbes = (Vec<(usize, CompiledQuery, f64)>, Vec<(usize, CompiledQuery, f64)>);

/// Clones the pristine prepared probes (compiled with the placeholder
/// row id 0) for one worker — the per-worker `init` of the row path's
/// probe fan-out, so plans are cloned once per *worker*, not per chunk
/// or per tuple.
fn clone_probes(
    s_probe: &[(usize, &CompiledQuery, f64)],
    a_probe: &[(usize, &CompiledQuery, f64)],
) -> LocalProbes {
    (
        s_probe.iter().map(|(p, q, d)| (*p, (*q).clone(), *d)).collect(),
        a_probe.iter().map(|(p, q, d)| (*p, (*q).clone(), *d)).collect(),
    )
}

/// Evaluates the remaining parameterized queries for one chunk of fresh
/// tuples, rebinding the worker's private probe clones (`probes`, built
/// by [`clone_probes`]) in place per tuple — the per-tuple cost is
/// running the probe, nothing else. The guard is shared — across
/// threads its budget atomics stay global, so a parallel round cannot
/// out-spend a serial one.
fn probe_chunk(
    engine: &Engine,
    db: &Database,
    guard: &QueryGuard,
    first_rel: RelId,
    chunk: Vec<(u64, f64)>,
    probes: &mut LocalProbes,
) -> Result<Vec<(u64, f64, Probed)>, ExecError> {
    let (s_local, a_local) = probes;
    let mut out = Vec::with_capacity(chunk.len());
    for (tid, degree) in chunk {
        let mut probed = Probed {
            sat: Vec::new(),
            abs_failed: Vec::new(),
            queries: 0,
            batched_tuples: 0,
            stats: ExecStats::default(),
        };
        for (pref, q, d_plus) in s_local.iter_mut() {
            probed.queries += 1;
            q.rebind_rowid(first_rel, tid);
            let rows = engine.execute_prepared_rows_guarded(db, q, &mut probed.stats, guard)?;
            if let Some(r) = rows.first() {
                let d = r[1].as_f64().unwrap_or(*d_plus);
                probed.sat.push((*pref, d.max(0.0)));
            }
        }
        for (pref, q, d_minus) in a_local.iter_mut() {
            probed.queries += 1;
            q.rebind_rowid(first_rel, tid);
            let rows = engine.execute_prepared_rows_guarded(db, q, &mut probed.stats, guard)?;
            if let Some(r) = rows.first() {
                let d = r[1].as_f64().unwrap_or(*d_minus);
                probed.abs_failed.push((*pref, d.min(0.0)));
            }
        }
        out.push((tid, degree, probed));
    }
    Ok(out)
}

/// One preference query's full qualifying result, materialized at most
/// once per run on the vectorized engine: first-occurrence `(tuple id,
/// degree)` pairs — the degree is the plan's first row per id, the
/// per-tuple path's `rows.first()` rule — plus a hash index over them.
/// Later rounds probe it by lookup instead of re-executing the preference
/// query against each round's fresh tuples, and the preference's own
/// round replays its query from `rows`, so a complete run executes each
/// preference query exactly once.
///
/// `rows` is kept in *canonical* ascending-tuple-id order rather than
/// plan output order. Inter-tuple order within a round is unobservable in
/// the final answer (emission pops a strictly ordered heap), and the
/// canonical order is what lets the incremental-maintenance layer
/// ([`crate::answer::maint`]) patch a materialization in place — filter
/// deleted ids, append freshly inserted ones (row ids are never reused,
/// so inserts sort after every surviving id) — and stay byte-identical
/// to a recompute-from-scratch regardless of which plan shape the
/// recompute would pick.
pub(crate) struct PrefResult {
    /// `(tid, degree)` per qualifying tuple in ascending-tid order; the
    /// degree is the plan's first row per id, NULL already defaulted to
    /// the preference's d+/d−.
    pub(crate) rows: Vec<(u64, f64)>,
    /// tid → degree over the same pairs, for O(1) probes.
    pub(crate) index: TidMap<f64>,
}

/// Executes one preference query in full (no rowid constraint) and
/// materializes its [`PrefResult`]. Runs under the shared guard with the
/// same accounting as the per-round probe executions it replaces, so a
/// deadline or budget trip mid-materialization cuts the round exactly
/// like a failed probe would.
pub(crate) fn materialize_pref(
    engine: &Engine,
    db: &Database,
    guard: &QueryGuard,
    select: &Select,
    default: f64,
    stats: &mut ExecStats,
) -> Result<PrefResult, ExecError> {
    let q = engine.prepare(db, &Query::from_select(select.clone()))?;
    let result = engine.execute_prepared_rows_guarded(db, &q, stats, guard)?;
    let mut index: TidMap<f64> =
        TidMap::with_capacity_and_hasher(result.len(), TidBuild::default());
    let mut rows = Vec::with_capacity(result.len());
    for r in &result {
        let tid = match r[0].as_i64() {
            Some(t) if t >= 0 => t as u64,
            _ => continue,
        };
        if let std::collections::hash_map::Entry::Vacant(e) = index.entry(tid) {
            let d = r[1].as_f64().unwrap_or(default);
            e.insert(d);
            rows.push((tid, d));
        }
    }
    // Canonical order (see `PrefResult`): dedup above keeps the plan's
    // first-row degree per id, the sort fixes inter-id order.
    rows.sort_unstable_by_key(|&(t, _)| t);
    Ok(PrefResult { rows, index })
}

/// The maintenance hookup of one PPA run: the attached [`MatRegistry`]
/// plus the tuple-identity facts ([`MatRegistry::register`] needs them to
/// judge patchability) resolved from the initial query.
pub(crate) struct RegistryCtx<'a> {
    /// The registry shared across runs (and with the delta publisher).
    pub(crate) registry: &'a MatRegistry,
    /// The relation whose row ids are the run's tuple ids.
    pub(crate) tid_rel: RelId,
    /// The binding name that relation carries in the preference selects.
    pub(crate) tid_binding: &'a str,
}

/// Materializes every not-yet-built preference result named by `missing`
/// (a `(preference index, query, NULL default)` worklist in the order the
/// serial loop would execute it) and stores them into `pref_results`.
/// Each [`PrefResult`] is an independent unit, so the worklist fans out
/// over the engine's morsel workers; successes are folded back in
/// worklist order so the per-query accounting matches the serial loop's,
/// and on failure the lowest-worklist-index error is returned — the same
/// error serial execution would have surfaced first.
///
/// With a [`RegistryCtx`] attached, the registry is consulted first:
/// hits are assigned without executing anything (and without counting a
/// parameterized query — no query ran), misses are built as usual and
/// registered for the *next* run. Registry traffic is counted on the
/// engine's metrics (`maint.registry.*`).
#[allow(clippy::too_many_arguments)]
fn materialize_missing(
    engine: &Engine,
    db: &Database,
    guard: &QueryGuard,
    mut missing: Vec<(usize, &Select, f64)>,
    pref_results: &mut [Option<Arc<PrefResult>>],
    stats: &mut PpaStats,
    estats: &mut ExecStats,
    reg: Option<&RegistryCtx<'_>>,
) -> Result<(), ExecError> {
    if let Some(ctx) = reg {
        let metrics = engine.metrics();
        missing.retain(|&(p, select, _)| match ctx.registry.get(db, select) {
            Some(hit) => {
                metrics.counter("maint.registry.hits").inc();
                pref_results[p] = Some(hit);
                false
            }
            None => {
                metrics.counter("maint.registry.misses").inc();
                true
            }
        });
    }
    if missing.is_empty() {
        return Ok(());
    }
    let reg_info: Vec<(usize, &Select, f64)> = if reg.is_some() { missing.clone() } else { Vec::new() };
    let workers = engine.parallelism().min(missing.len());
    let (built, pstats) = morsel_map(missing, workers, |_, (p, select, default)| {
        let mut st = ExecStats::default();
        materialize_pref(engine, db, guard, select, default, &mut st).map(|r| (p, r, st))
    });
    engine.note_pool(pstats);
    for (p, r, st) in built? {
        estats.merge(&st);
        stats.parameterized_queries += 1;
        let r = Arc::new(r);
        if let Some(ctx) = reg {
            if let Some(&(_, select, default)) = reg_info.iter().find(|&&(q, _, _)| q == p) {
                let evicted = ctx.registry.register(
                    db,
                    select,
                    default,
                    ctx.tid_rel,
                    ctx.tid_binding,
                    Arc::clone(&r),
                );
                if evicted > 0 {
                    engine.metrics().counter("maint.registry.evicted").add(evicted as u64);
                }
            }
        }
        pref_results[p] = Some(r);
    }
    Ok(())
}

/// Probes one chunk of fresh tuples against materialized preference
/// results: pure hash lookups, no engine execution. Probe-major iteration
/// in probe-list order reproduces the per-tuple path's `sat` /
/// `abs_failed` orderings byte-for-byte, and the materialized first-row
/// degrees match its `rows.first()` rule. The chunk's covered-tuple total
/// rides on the first tuple (executions are counted by the caller at
/// materialization time).
fn probe_chunk_cached(
    chunk: Vec<(u64, f64)>,
    s_probe: &[(usize, Arc<PrefResult>)],
    a_probe: &[(usize, Arc<PrefResult>)],
) -> Vec<(u64, f64, Probed)> {
    let mut out: Vec<(u64, f64, Probed)> = chunk
        .into_iter()
        .map(|(tid, degree)| {
            let probed = Probed {
                sat: Vec::new(),
                abs_failed: Vec::new(),
                queries: 0,
                batched_tuples: 0,
                stats: ExecStats::default(),
            };
            (tid, degree, probed)
        })
        .collect();
    if out.is_empty() {
        return out;
    }
    let mut batched_tuples = 0usize;
    for (pref, res) in s_probe {
        batched_tuples += out.len();
        for (tid, _, p) in out.iter_mut() {
            if let Some(&d) = res.index.get(tid) {
                p.sat.push((*pref, d.max(0.0)));
            }
        }
    }
    for (pref, res) in a_probe {
        batched_tuples += out.len();
        for (tid, _, p) in out.iter_mut() {
            if let Some(&d) = res.index.get(tid) {
                p.abs_failed.push((*pref, d.min(0.0)));
            }
        }
    }
    if let Some((_, _, p)) = out.first_mut() {
        p.batched_tuples = batched_tuples;
    }
    out
}

/// Runs PPA and returns the (emission-ordered) answer plus stats.
pub fn ppa(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
) -> Result<(PersonalizedAnswer, PpaStats), PrefError> {
    ppa_limited(db, engine, initial, profile, selected, l, ranking, None)
}

/// Runs PPA with an optional emission limit: as soon as `limit` tuples
/// have been *provably-ranked* emitted, the run stops — the progressive
/// formulation's payoff for top-N requests, where SPA must always compute
/// its entire statement first.
#[allow(clippy::too_many_arguments)]
pub fn ppa_limited(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    limit: Option<usize>,
) -> Result<(PersonalizedAnswer, PpaStats), PrefError> {
    ppa_guarded(db, engine, initial, profile, selected, l, ranking, limit, &QueryGuard::unlimited())
        .map(|(a, s, _)| (a, s))
}

/// Runs PPA under a [`QueryGuard`], degrading instead of failing.
///
/// Once the phase queries are prepared, a guard trip (deadline, budget,
/// cancellation) or an injected fault mid-phase does not error out:
/// progression stops, every buffered tuple whose doi still clears the MEDI
/// bound of the phase reached is emitted, and the cut is described in the
/// returned [`Degradation`]. The partial answer is a prefix of the
/// complete run's answer: no emitted tuple ranks below an omitted one —
/// the same MEDI argument that makes a complete run's emission order
/// correct applies to the truncated one.
///
/// Errors *before* the phase loop (an unsupported query shape, failed
/// preparation) are still returned as `Err`: there is nothing partial to
/// salvage.
#[allow(clippy::too_many_arguments)]
pub fn ppa_guarded(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    limit: Option<usize>,
    guard: &QueryGuard,
) -> Result<(PersonalizedAnswer, PpaStats, Degradation), PrefError> {
    ppa_run(db, engine, initial, profile, selected, l, ranking, limit, guard, None)
}

/// [`ppa_guarded`] with an optional materialization registry attached
/// (see [`crate::answer::maint`]): on the vectorized engine every
/// preference result is fetched from — or built into — the registry up
/// front, so a steady-state run under write traffic replays incrementally
/// maintained results instead of re-executing preference queries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ppa_run(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    limit: Option<usize>,
    guard: &QueryGuard,
    registry: Option<&MatRegistry>,
) -> Result<(PersonalizedAnswer, PpaStats, Degradation), PrefError> {
    let started = Instant::now();
    let tracer = engine.tracer().clone();
    let mut run_span = tracer.span("ppa.run");
    run_span.attr("k", selected.len());
    run_span.attr("l", l);
    let selects = initial.selects();
    if selects.len() != 1 {
        return Err(PrefError::UnsupportedQuery("initial query must be a single SELECT".into()));
    }
    let initial_select = selects[0];
    if selected.is_empty() {
        return Err(PrefError::InvalidCriterion(
            "PPA requires at least one selected preference".into(),
        ));
    }
    if l == 0 || l > selected.len() {
        return Err(PrefError::InvalidCriterion(format!(
            "L = {l} outside 1..=K ({} selected)",
            selected.len()
        )));
    }
    let catalog = db.catalog();
    // Subquery generation: classification, selectivity-based ordering,
    // and preparation of the S/A queries plus their parameterized
    // (rebindable) versions — everything before the first phase runs.
    let mut prepare_span = tracer.span("ppa.prepare");
    let infos = classify(db, engine, profile, selected);

    // order presence queries by increasing satisfaction selectivity,
    // absence queries by increasing failure selectivity
    let mut s_order: Vec<usize> = infos
        .iter()
        .filter(|i| matches!(i.kind, IntegrationKind::Presence | IntegrationKind::Absence11))
        .map(|i| i.index)
        .collect();
    s_order.sort_by(|a, b| {
        infos[*a].sat_selectivity.total_cmp(&infos[*b].sat_selectivity).then(a.cmp(b))
    });
    let mut a_order: Vec<usize> = infos
        .iter()
        .filter(|i| i.kind == IntegrationKind::Absence1N)
        .map(|i| i.index)
        .collect();
    a_order.sort_by(|a, b| {
        infos[*a].fail_selectivity.total_cmp(&infos[*b].fail_selectivity).then(a.cmp(b))
    });

    // --- tuple identity: the first FROM relation's row id -------------
    let (first_binding, first_rel) = match &initial_select.from[0] {
        TableRef::Relation { name, alias } => {
            let rel = catalog.relation_by_name(name)?;
            (alias.clone().unwrap_or_else(|| name.clone()), rel.id)
        }
        TableRef::Derived { .. } => {
            return Err(PrefError::UnsupportedQuery("derived FROM in initial query".into()))
        }
    };

    // --- per-tuple row fetch (prepared; avoids materializing the whole
    // initial query when PPA only emits a slice of it) ------------------
    let mut fetch = initial_select.clone();
    let mut fetch_items = vec![builder::item_as(builder::col(&first_binding, "rowid"), "qp_tid")];
    fetch_items.extend(fetch.items.iter().cloned());
    fetch.items = fetch_items;
    merge_filter(
        &mut fetch,
        builder::eq(builder::col(&first_binding, "rowid"), builder::int(0)),
    );
    let mut fetch_prepared = engine.prepare(db, &Query::from_select(fetch))?;
    // A second copy of the fetch plan for multi-tuple emission bursts on
    // the vectorized engine, rebound to the burst's rowid set per flush.
    let mut fetch_prepared_set = fetch_prepared.clone();
    let columns: Vec<String> = fetch_prepared.columns.iter().skip(1).cloned().collect();

    // --- build + prepare the S and A queries ---------------------------
    let projection = |binding: &str| {
        let b = binding.to_string();
        move |_anchor: &str, degree: qp_sql::Expr| -> Vec<SelectItem> {
            vec![
                builder::item_as(builder::col(&b, "rowid"), "qp_tid"),
                builder::item_as(degree, "qp_degree"),
            ]
        }
    };
    let mut s_queries: Vec<Select> = Vec::with_capacity(s_order.len());
    for &i in &s_order {
        let proj = projection(&first_binding);
        s_queries.push(satisfaction_select(catalog, initial_select, profile, &selected[i], &infos[i], &proj)?);
    }
    let mut a_queries: Vec<Select> = Vec::with_capacity(a_order.len());
    for &i in &a_order {
        let proj = projection(&first_binding);
        a_queries.push(failure_select(catalog, initial_select, profile, &selected[i], &infos[i], &proj)?);
    }
    // prepared parameterized versions with a placeholder row id
    let prepare_bound = |engine: &Engine, s: &Select| -> Result<CompiledQuery, PrefError> {
        let mut sq = s.clone();
        merge_filter(
            &mut sq,
            builder::eq(builder::col(&first_binding, "rowid"), builder::int(0)),
        );
        Ok(engine.prepare(db, &Query::from_select(sq))?)
    };
    let mut s_prepared: Vec<CompiledQuery> = Vec::with_capacity(s_queries.len());
    for s in &s_queries {
        s_prepared.push(prepare_bound(engine, s)?);
    }
    let mut a_prepared: Vec<CompiledQuery> = Vec::with_capacity(a_queries.len());
    for a in &a_queries {
        a_prepared.push(prepare_bound(engine, a)?);
    }
    prepare_span.attr("presence_queries", s_order.len());
    prepare_span.attr("absence_queries", a_order.len());
    prepare_span.finish();
    let mut estats = ExecStats::default();

    let mut stats = PpaStats::default();
    // Tuples covered by batched probe executions (metrics only; 0 on the
    // row-engine per-tuple path).
    let mut probe_batch_tuples: u64 = 0;
    // The vectorized engine materializes each preference query's full
    // result at most once and probes it by hash lookup; the row engine is
    // the per-tuple parity oracle.
    let probes_batched = !engine.row_engine();
    // Materialized preference results, indexed by preference index; only
    // populated on the vectorized path.
    let mut pref_results: Vec<Option<Arc<PrefResult>>> = vec![None; selected.len()];
    let ranking = *ranking;
    let d_plus = |i: usize| infos[i].d_plus;
    let d_minus = |i: usize| infos[i].d_minus;
    // Scratch degree buffers for the per-tuple doi computation, reused
    // across every probed tuple of the run: rounds process tens of
    // thousands of tuples, so per-tuple Vec/HashSet churn here shows up
    // directly in end-to-end PPA latency.
    let mut pos_buf: Vec<f64> = Vec::new();
    let mut neg_buf: Vec<f64> = Vec::new();

    // ranked emission machinery
    let mut buffered: BinaryHeap<Buffered> = BinaryHeap::new();
    let mut emitted: Vec<PersonalizedTuple> = Vec::new();
    let mut first_response: Option<Duration> = None;
    // Emits every buffered tuple whose doi clears the MEDI bound,
    // fetching its projected rows via the prepared row-fetch query. The
    // output budget is charged as each tuple is popped (so a budget trip
    // still emits the exact prefix the per-tuple path would). On the
    // vectorized engine a multi-tuple burst is fetched with one rowid-set
    // execution — the set fetch returns rows in listed-id order, so the
    // first row per tuple id is byte-identical to the per-tuple fetch.
    // Evaluates to `Option<ExecError>`: `Some` when the guard tripped (or
    // a fault fired) mid-emission, with unfetched tuples left buffered.
    macro_rules! emit_ready {
        ($medi:expr) => {{
            let medi: f64 = $medi;
            let mut emit_err: Option<ExecError> = None;
            let mut ready: Vec<Buffered> = Vec::new();
            while let Some(top) = buffered.peek() {
                if top.doi + 1e-12 < medi {
                    break;
                }
                // each emitted tuple is one row of user output
                if let Err(e) = guard.charge_output(1) {
                    emit_err = Some(e);
                    break;
                }
                let Some(rec) = buffered.pop() else { break };
                if first_response.is_none() {
                    first_response = Some(started.elapsed());
                }
                ready.push(rec);
            }
            if probes_batched && ready.len() > 1 {
                // one set fetch for the whole burst
                let ids: Arc<Vec<u64>> = Arc::new(ready.iter().map(|r| r.tid).collect());
                fetch_prepared_set.rebind_rowid_set(first_rel, &ids);
                match engine.execute_prepared_rows_guarded(
                    db,
                    &fetch_prepared_set,
                    &mut estats,
                    guard,
                ) {
                    Ok(rows) => {
                        let mut by_tid: TidMap<Row> = TidMap::with_capacity_and_hasher(ready.len(), TidBuild::default());
                        for r in rows {
                            let tid = match r[0].as_i64() {
                                Some(t) if t >= 0 => t as u64,
                                _ => continue,
                            };
                            by_tid.entry(tid).or_insert(r);
                        }
                        for rec in ready.drain(..) {
                            let row = by_tid
                                .remove(&rec.tid)
                                .map(|mut r| {
                                    r.remove(0);
                                    r
                                })
                                .unwrap_or_default();
                            emitted.push(PersonalizedTuple {
                                tuple_id: Some(rec.tid),
                                row,
                                doi: rec.doi,
                                satisfied: rec.satisfied,
                                failed: rec.failed,
                            });
                        }
                    }
                    Err(e) => {
                        // nothing from the burst was emitted; re-buffer it
                        // whole — emission stays a ranked prefix
                        for rec in ready.drain(..) {
                            buffered.push(rec);
                        }
                        emit_err = Some(e);
                    }
                }
            } else {
                for rec in ready.drain(..) {
                    if emit_err.is_some() {
                        // a fetch failed earlier in the burst; re-buffer
                        buffered.push(rec);
                        continue;
                    }
                    fetch_prepared.rebind_rowid(first_rel, rec.tid);
                    let row = match engine.execute_prepared_rows_guarded(
                        db,
                        &fetch_prepared,
                        &mut estats,
                        guard,
                    ) {
                        Ok(rs) => rs
                            .into_iter()
                            .next()
                            .map(|mut r| {
                                r.remove(0);
                                r
                            })
                            .unwrap_or_default(),
                        Err(e) => {
                            buffered.push(rec);
                            emit_err = Some(e);
                            continue;
                        }
                    };
                    emitted.push(PersonalizedTuple {
                        tuple_id: Some(rec.tid),
                        row,
                        doi: rec.doi,
                        satisfied: rec.satisfied,
                        failed: rec.failed,
                    });
                }
            }
            emit_err
        }};
    }

    // MEDI before presence round si: best unseen satisfies S[si..] + all A
    let medi_at = |si: usize| -> f64 {
        let pos: Vec<f64> = s_order[si..]
            .iter()
            .map(|&i| d_plus(i))
            .chain(a_order.iter().map(|&i| d_plus(i)))
            .collect();
        ranking.positive(&pos)
    };

    let mut seen: TidSet = TidSet::default();
    // Where and why the run stopped progressing, if it did.
    let mut cut: Option<(PpaPhase, DegradeCause)> = None;
    // Completed phase counts (for the degradation report and the final
    // emission bound).
    let mut presence_done = 0usize;
    let mut absence_done = 0usize;
    let mut limit_hit = false;
    // best doi an unseen tuple can reach once the presence stage is over
    let medi_abs = {
        let pos: Vec<f64> = a_order.iter().map(|&i| d_plus(i)).collect();
        ranking.positive(&pos)
    };

    // With a maintenance registry attached, fetch or build *every*
    // preference result before the first round: in steady-state serving
    // the registry already holds all K results for the current epoch, so
    // the whole run degenerates to in-memory replay (zero preference
    // query executions). A failure here cuts the run exactly like a
    // failed first presence round would.
    let reg_ctx = registry.map(|r| RegistryCtx {
        registry: r,
        tid_rel: first_rel,
        tid_binding: &first_binding,
    });
    if probes_batched && reg_ctx.is_some() {
        let mut missing: Vec<(usize, &Select, f64)> = Vec::new();
        for (sj, &p) in s_order.iter().enumerate() {
            if pref_results[p].is_none() {
                missing.push((p, &s_queries[sj], d_plus(p)));
            }
        }
        for (aj, &p) in a_order.iter().enumerate() {
            if pref_results[p].is_none() {
                missing.push((p, &a_queries[aj], d_minus(p)));
            }
        }
        if let Err(e) = materialize_missing(
            engine,
            db,
            guard,
            missing,
            &mut pref_results,
            &mut stats,
            &mut estats,
            reg_ctx.as_ref(),
        ) {
            cut = Some((PpaPhase::Presence(0), DegradeCause::from_exec(&e)));
        }
    }

    // --- presence stage ------------------------------------------------
    'presence: for (si, &pref_i) in s_order.iter().enumerate() {
        if cut.is_some() {
            break 'presence;
        }
        // remaining queries (incl. this) + all absence prefs must reach L
        if (s_order.len() - si) + a_order.len() < l {
            break;
        }
        let mut round_span = tracer.span("ppa.presence");
        round_span.attr("round", si);
        round_span.attr("pref", pref_i);
        if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.presence")) {
            cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
            break 'presence;
        }
        stats.presence_queries += 1;
        // A round whose preference result was already materialized for an
        // earlier round's probes replays it instead of re-executing the
        // query; first-occurrence order and degrees are those the
        // execution produced.
        let cached_round = if probes_batched { pref_results[pref_i].clone() } else { None };
        // Fresh tuples are collected serially (dedup against `seen`), then
        // probed — across worker threads when parallelism allows.
        let mut fresh: Vec<(u64, f64)> = Vec::new();
        if let Some(c) = &cached_round {
            for &(tid, d) in &c.rows {
                if seen.insert(tid) {
                    fresh.push((tid, d));
                }
            }
        } else {
            let rs = match engine.execute_uncharged(
                db,
                &Query::from_select(s_queries[si].clone()),
                guard,
            ) {
                Ok(rs) => rs,
                Err(e) => {
                    cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
                    break 'presence;
                }
            };
            for row in rs.rows {
                let tid = match row[0].as_i64() {
                    Some(t) if t >= 0 => t as u64,
                    _ => continue,
                };
                if !seen.insert(tid) {
                    continue;
                }
                fresh.push((tid, row[1].as_f64().unwrap_or(d_plus(pref_i))));
            }
        }
        // Vectorized path: materialize any not-yet-built later presence /
        // absence results — one full execution each, replacing every
        // per-round, per-tuple probe of that preference for the rest of
        // the run.
        let mut s_probe_c: Vec<(usize, Arc<PrefResult>)> = Vec::new();
        let mut a_probe_c: Vec<(usize, Arc<PrefResult>)> = Vec::new();
        if probes_batched && !fresh.is_empty() {
            // Worklist of missing materializations in serial execution
            // order; each is an independent full query, so they fan out
            // over the morsel workers.
            let mut missing: Vec<(usize, &Select, f64)> = Vec::new();
            for (sj, &p) in s_order.iter().enumerate().skip(si + 1) {
                if pref_results[p].is_none() {
                    missing.push((p, &s_queries[sj], d_plus(p)));
                }
            }
            for (aj, &p) in a_order.iter().enumerate() {
                if pref_results[p].is_none() {
                    missing.push((p, &a_queries[aj], d_minus(p)));
                }
            }
            if let Err(e) = materialize_missing(
                engine,
                db,
                guard,
                missing,
                &mut pref_results,
                &mut stats,
                &mut estats,
                reg_ctx.as_ref(),
            ) {
                cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
                break 'presence;
            }
            for &p in s_order.iter().skip(si + 1) {
                s_probe_c.push((p, Arc::clone(pref_results[p].as_ref().expect("materialized"))));
            }
            for &p in &a_order {
                a_probe_c.push((p, Arc::clone(pref_results[p].as_ref().expect("materialized"))));
            }
        }
        let workers = engine.parallelism().min(fresh.len());
        let par_span = (workers > 1).then(|| {
            let mut sp = tracer.span("ppa.parallel_round");
            sp.attr("phase", "presence");
            sp.attr("round", si);
            sp.attr("tuples", fresh.len());
            sp.attr("workers", workers);
            sp
        });
        let shared: &Engine = engine;
        let (probed, pstats) = if probes_batched {
            morsel_map(chunked(fresh), workers, |_, chunk| {
                Ok::<_, ExecError>(probe_chunk_cached(chunk, &s_probe_c, &a_probe_c))
            })
        } else {
            // later presence queries plus all absence queries, rebound per
            // tuple; each worker clones the prepared probes once
            let s_probe: Vec<(usize, &CompiledQuery, f64)> = s_order
                .iter()
                .enumerate()
                .skip(si + 1)
                .map(|(sj, &p)| (p, &s_prepared[sj], d_plus(p)))
                .collect();
            let a_probe: Vec<(usize, &CompiledQuery, f64)> =
                a_order.iter().enumerate().map(|(aj, &p)| (p, &a_prepared[aj], d_minus(p))).collect();
            morsel_map_with(
                chunked(fresh),
                workers,
                || clone_probes(&s_probe, &a_probe),
                |probes, _, chunk| probe_chunk(shared, db, guard, first_rel, chunk, probes),
            )
        };
        shared.note_pool(pstats);
        drop(par_span);
        let probed: Vec<(u64, f64, Probed)> = match probed {
            Ok(p) => p.into_iter().flatten().collect(),
            Err(e) => {
                // the round's batch is dropped whole: partially probed
                // tuples have unknown doi, and every tuple of this round
                // is bounded by the round's MEDI — the cut's emission
                // bound — so nothing emitted can be outranked by a drop
                cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
                break 'presence;
            }
        };
        for (tid, degree, p) in probed {
            stats.parameterized_queries += p.queries;
            probe_batch_tuples += p.batched_tuples as u64;
            estats.merge(&p.stats);
            // Satisfied presence prefs: this round's plus the probe hits;
            // a probe records each pref at most once, and every recorded
            // absence pref belongs to `a_order`, so the counts below are
            // exact without materializing the sets.
            let sat_n = 1 + p.sat.len();
            let cur_l = sat_n + (a_order.len() - p.abs_failed.len());
            if cur_l < l {
                continue;
            }
            pos_buf.clear();
            neg_buf.clear();
            let mut satisfied: Vec<usize> = Vec::with_capacity(cur_l);
            satisfied.push(pref_i);
            pos_buf.push(degree.max(0.0));
            for &(i, d) in &p.sat {
                satisfied.push(i);
                pos_buf.push(d);
            }
            let mut failed: Vec<usize> =
                Vec::with_capacity(s_order.len() + a_order.len() - cur_l);
            for &i in &s_order {
                if !satisfied[..sat_n].contains(&i) {
                    let d = d_minus(i);
                    if d < 0.0 {
                        neg_buf.push(d);
                    }
                    failed.push(i);
                }
            }
            // `p.abs_failed` lists failed absence prefs in `a_order` order,
            // so one pass over `a_order` splits it while preserving the
            // degree ordering the doi computation has always used.
            for &i in &a_order {
                match p.abs_failed.iter().find(|(j, _)| *j == i) {
                    Some(&(_, d)) => {
                        if d < 0.0 {
                            neg_buf.push(d);
                        }
                        failed.push(i);
                    }
                    None => {
                        satisfied.push(i);
                        pos_buf.push(d_plus(i));
                    }
                }
            }
            let doi = ranking.mixed(&pos_buf, &neg_buf);
            satisfied.sort_unstable();
            failed.sort_unstable();
            buffered.push(Buffered { tid, doi, satisfied, failed });
        }
        presence_done = si + 1;
        let medi = medi_at(si + 1);
        if let Some(e) = emit_ready!(medi) {
            cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
            break 'presence;
        }
        round_span.attr("emitted_total", emitted.len());
        round_span.attr("buffered", buffered.len());
        if limit.is_some_and(|n| emitted.len() >= n) {
            limit_hit = true;
            break 'presence;
        }
    }

    // --- absence stage ---------------------------------------------------
    // Unseen tuples satisfy no presence preference; they qualify only via
    // absence preferences, so the whole stage (and step 3) is skipped when
    // |A| < L.
    let mut nids: TidSet = TidSet::default();
    if a_order.len() >= l && cut.is_none() && !limit_hit {
        'absence: for (ai, &pref_i) in a_order.iter().enumerate() {
            let mut round_span = tracer.span("ppa.absence");
            round_span.attr("round", ai);
            round_span.attr("pref", pref_i);
            if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.absence")) {
                cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                break 'absence;
            }
            stats.absence_queries += 1;
            // Replay a materialized result when an earlier round's probes
            // already executed this preference query in full.
            let cached_round = if probes_batched { pref_results[pref_i].clone() } else { None };
            let mut fresh: Vec<(u64, f64)> = Vec::new();
            if let Some(c) = &cached_round {
                for &(tid, d) in &c.rows {
                    nids.insert(tid);
                    if seen.contains(&tid) {
                        continue;
                    }
                    // a new tuple fails pref_i; it can satisfy at most |A|-1
                    if a_order.len() - 1 < l {
                        continue;
                    }
                    seen.insert(tid);
                    fresh.push((tid, d));
                }
            } else {
                let rs = match engine.execute_uncharged(
                    db,
                    &Query::from_select(a_queries[ai].clone()),
                    guard,
                ) {
                    Ok(rs) => rs,
                    Err(e) => {
                        cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                        break 'absence;
                    }
                };
                for row in rs.rows {
                    let tid = match row[0].as_i64() {
                        Some(t) if t >= 0 => t as u64,
                        _ => continue,
                    };
                    nids.insert(tid);
                    if seen.contains(&tid) {
                        continue;
                    }
                    // a new tuple fails pref_i; it can satisfy at most |A|-1
                    if a_order.len() - 1 < l {
                        continue;
                    }
                    seen.insert(tid);
                    fresh.push((tid, row[1].as_f64().unwrap_or(d_minus(pref_i))));
                }
            }
            // Vectorized path: materialize any remaining absence results
            // not built during the presence stage.
            let mut a_probe_c: Vec<(usize, Arc<PrefResult>)> = Vec::new();
            if probes_batched && !fresh.is_empty() {
                let mut missing: Vec<(usize, &Select, f64)> = Vec::new();
                for (aj, &p) in a_order.iter().enumerate().skip(ai + 1) {
                    if pref_results[p].is_none() {
                        missing.push((p, &a_queries[aj], d_minus(p)));
                    }
                }
                if let Err(e) = materialize_missing(
                    engine,
                    db,
                    guard,
                    missing,
                    &mut pref_results,
                    &mut stats,
                    &mut estats,
                    reg_ctx.as_ref(),
                ) {
                    cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                    break 'absence;
                }
                for &p in a_order.iter().skip(ai + 1) {
                    a_probe_c
                        .push((p, Arc::clone(pref_results[p].as_ref().expect("materialized"))));
                }
            }
            let workers = engine.parallelism().min(fresh.len());
            let par_span = (workers > 1).then(|| {
                let mut sp = tracer.span("ppa.parallel_round");
                sp.attr("phase", "absence");
                sp.attr("round", ai);
                sp.attr("tuples", fresh.len());
                sp.attr("workers", workers);
                sp
            });
            let shared: &Engine = engine;
            let (probed, pstats) = if probes_batched {
                morsel_map(chunked(fresh), workers, |_, chunk| {
                    Ok::<_, ExecError>(probe_chunk_cached(chunk, &[], &a_probe_c))
                })
            } else {
                // remaining absence queries, rebound per tuple; each
                // worker clones the prepared probes once
                let a_probe: Vec<(usize, &CompiledQuery, f64)> = a_order
                    .iter()
                    .enumerate()
                    .skip(ai + 1)
                    .map(|(aj, &p)| (p, &a_prepared[aj], d_minus(p)))
                    .collect();
                morsel_map_with(
                    chunked(fresh),
                    workers,
                    || clone_probes(&[], &a_probe),
                    |probes, _, chunk| probe_chunk(shared, db, guard, first_rel, chunk, probes),
                )
            };
            shared.note_pool(pstats);
            drop(par_span);
            let probed: Vec<(u64, f64, Probed)> = match probed {
                Ok(p) => p.into_iter().flatten().collect(),
                Err(e) => {
                    cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                    break 'absence;
                }
            };
            for (tid, d0, p) in probed {
                stats.parameterized_queries += p.queries;
                probe_batch_tuples += p.batched_tuples as u64;
                estats.merge(&p.stats);
                // This round's pref plus the probe hits are the failed
                // absence prefs, each recorded at most once and all in
                // `a_order`, so the satisfied count needs no set.
                let failed_n = 1 + p.abs_failed.len();
                let cur_l = a_order.len() - failed_n;
                if cur_l < l {
                    continue;
                }
                pos_buf.clear();
                neg_buf.clear();
                let mut satisfied: Vec<usize> = Vec::with_capacity(cur_l);
                let mut failed: Vec<usize> = Vec::with_capacity(s_order.len() + failed_n);
                for &i in &s_order {
                    let d = d_minus(i);
                    if d < 0.0 {
                        neg_buf.push(d);
                    }
                    failed.push(i);
                }
                // Failed absence prefs arrive in `a_order` order (this
                // round's first, probes after), so one ordered pass keeps
                // the historical degree ordering for the doi.
                for &i in &a_order {
                    let d = if i == pref_i {
                        Some(d0.min(0.0))
                    } else {
                        p.abs_failed.iter().find(|(j, _)| *j == i).map(|&(_, d)| d)
                    };
                    match d {
                        Some(d) => {
                            if d < 0.0 {
                                neg_buf.push(d);
                            }
                            failed.push(i);
                        }
                        None => {
                            satisfied.push(i);
                            pos_buf.push(d_plus(i));
                        }
                    }
                }
                let doi = ranking.mixed(&pos_buf, &neg_buf);
                satisfied.sort_unstable();
                failed.sort_unstable();
                buffered.push(Buffered { tid, doi, satisfied, failed });
            }
            absence_done = ai + 1;
            if let Some(e) = emit_ready!(medi_abs) {
                cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                break 'absence;
            }
            round_span.attr("emitted_total", emitted.len());
            round_span.attr("buffered", buffered.len());
            if limit.is_some_and(|n| emitted.len() >= n) {
                limit_hit = true;
                break 'absence;
            }
        }

        // --- step 3: tuples never returned by any absence query satisfy
        // every absence preference (the full tuple-id set is materialized
        // only here, where it is genuinely needed) ----------------------
        if cut.is_none() && !limit_hit {
            let _residual_span = tracer.span("ppa.residual");
            'residual: {
                if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.step3")) {
                    cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
                    break 'residual;
                }
                let mut base_ids = initial_select.clone();
                base_ids.items =
                    vec![builder::item_as(builder::col(&first_binding, "rowid"), "qp_tid")];
                base_ids.distinct = true;
                let rs = match engine.execute_uncharged(db, &Query::from_select(base_ids), guard)
                {
                    Ok(rs) => rs,
                    Err(e) => {
                        cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
                        break 'residual;
                    }
                };
                let all_ids: Vec<u64> = rs
                    .rows
                    .iter()
                    .filter_map(|r| r[0].as_i64())
                    .filter(|t| *t >= 0)
                    .map(|t| t as u64)
                    .collect();
                for &tid in &all_ids {
                    if seen.contains(&tid) || nids.contains(&tid) {
                        continue;
                    }
                    let satisfied: Vec<usize> = a_order.clone();
                    if satisfied.len() >= l {
                        let pos: Vec<f64> = a_order.iter().map(|&i| d_plus(i)).collect();
                        let neg: Vec<f64> =
                            s_order.iter().map(|&i| d_minus(i)).filter(|d| *d < 0.0).collect();
                        let doi = ranking.mixed(&pos, &neg);
                        let mut failed: Vec<usize> = s_order.clone();
                        failed.sort_unstable();
                        let mut satisfied = satisfied;
                        satisfied.sort_unstable();
                        buffered.push(Buffered { tid, doi, satisfied, failed });
                    }
                }
            }
        }
    }

    // --- final flush -----------------------------------------------------
    // On a limit hit the emitted prefix already holds `limit` provably
    // ranked tuples; anything still buffered ranks at or below them, so
    // flushing would only be truncated away again.
    if !limit_hit {
        // The bound an unseen (never-evaluated) tuple could still reach at
        // the point the run stopped: a complete run flushes everything, a
        // cut run emits only what is provably ranked above that bound.
        let bound = match &cut {
            None => f64::NEG_INFINITY,
            Some((PpaPhase::Presence(_), _)) => medi_at(presence_done),
            Some((PpaPhase::Absence(_) | PpaPhase::Residual, _)) => medi_abs,
        };
        if let Some(e) = emit_ready!(bound) {
            if cut.is_none() {
                cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
            }
        }
    }
    if let Some(n) = limit {
        emitted.truncate(n);
    }

    let mut degradation = Degradation::default();
    if let Some((phase, cause)) = cut {
        tracer.event(
            "ppa.cut",
            &[
                ("phase", format!("{phase:?}").into()),
                ("cause", format!("{cause:?}").into()),
                ("buffered_discarded", buffered.len().into()),
            ],
        );
        degradation.push(DegradeEvent::PpaCutoff {
            phase,
            cause,
            presence_unevaluated: s_order.len() - presence_done,
            absence_unevaluated: a_order.len() - absence_done,
            buffered_discarded: buffered.len(),
        });
    }

    stats.first_response = first_response;
    stats.total = started.elapsed();

    run_span.attr("emitted", emitted.len());
    run_span.attr("presence_queries", stats.presence_queries);
    run_span.attr("absence_queries", stats.absence_queries);
    run_span.attr("parameterized_queries", stats.parameterized_queries);
    run_span.attr("degraded", !degradation.is_complete());
    let metrics = engine.metrics();
    metrics.counter("ppa.runs").inc();
    metrics.counter("ppa.presence_queries").add(stats.presence_queries as u64);
    metrics.counter("ppa.absence_queries").add(stats.absence_queries as u64);
    metrics.counter("ppa.parameterized_queries").add(stats.parameterized_queries as u64);
    // Tuples covered by batched probe executions; stays 0 under
    // `QP_ROW_ENGINE=1`, where every probe is per-tuple.
    metrics.counter("ppa.probe.batch_size").add(probe_batch_tuples);
    metrics.counter("ppa.emitted").add(emitted.len() as u64);
    // Registered unconditionally so a complete run reports `ppa.cuts = 0`
    // rather than omitting the counter from snapshots.
    metrics.counter("ppa.cuts").add(u64::from(!degradation.is_complete()));
    metrics.histogram("ppa.total_us").observe(stats.total);
    if let Some(fr) = first_response {
        metrics.histogram("ppa.first_response_us").observe(fr);
    }

    Ok((PersonalizedAnswer { columns, tuples: emitted }, stats, degradation))
}

// `RelId` is used in the prepared-query rebinds above.
#[allow(unused)]
fn _rel_id_marker(_r: RelId) {}
