//! PPA — Progressive Personalized Answers (§5, Figure 6).
//!
//! Presence (and 1–1 absence) preferences become *presence queries* `S`,
//! 1–n absence preferences become *absence queries* `A`, each ordered by
//! increasing selectivity (histogram estimates). Presence queries return
//! tuples that *satisfy* their preference; absence queries return tuples
//! that *fail* theirs. When a query first surfaces a tuple `t`, the
//! remaining queries are evaluated for `t` alone via parameterized
//! queries `Qiˢ(t)` / `Qiᴬ(t)` — compiled once with a placeholder row id
//! and rebound per tuple, so each costs an O(1) row fetch plus a few
//! index probes. The tuple's full satisfied/failed sets — and hence its
//! exact doi under any mixed ranking function — are known immediately,
//! which is what makes the answer *self-explanatory*.
//!
//! Note that PPA never executes a `NOT IN` exclusion: 1–n absence
//! preferences are probed through their (cheap) failure-region queries,
//! the efficiency win over SPA the paper highlights.
//!
//! Progressiveness comes from **MEDI**, the Maximum Estimated Degree of
//! Interest any *unseen* tuple can still achieve. Before presence query
//! `i` runs, an unseen tuple can at best satisfy presence preferences
//! `i..` plus every absence preference; once the presence stage ends, at
//! best all absence preferences. Buffered tuples with `doi ≥ MEDI` are
//! emitted immediately — the first response typically arrives after the
//! first (most selective) presence query.
//!
//! Note on the paper's MEDI update: Figure 6 reduces MEDI to "the degree
//! of satisfying preferences corresponding to queries not yet executed".
//! During the absence stage that underestimates unseen tuples, which
//! still satisfy every *executed* absence query's preference precisely by
//! not having been returned by it. We use the corrected bound (all
//! absence preferences) so emission order provably respects rank.
//!
//! **Parallelism.** Per-tuple probes within a round are independent, so
//! when the engine's parallelism allows, each round collects its fresh
//! tuples serially (the dedup against `seen` is order-sensitive), splits
//! them into contiguous chunks, and fans the chunks out over
//! [`qp_exec::parallel_map`]'s scoped worker threads under a
//! `ppa.parallel_round` span. Each worker clones the prepared probes once
//! and rebinds them in place per tuple. Workers share the engine, database
//! and guard immutably and return their results in input order, so a
//! parallel round buffers exactly what a serial one would — answers are
//! byte-identical. On a guard trip or fault the whole round's batch is
//! discarded; every tuple of that round is bounded by the round's MEDI,
//! which is also the cut's final emission bound, so the degraded answer
//! still emits nothing it cannot prove the rank of.

use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use qp_exec::planner::CompiledQuery;
use qp_exec::{parallel_map, Engine, ExecError, ExecStats, QueryGuard};
use qp_sql::{builder, Query, Select, SelectItem, TableRef};
use qp_storage::{Database, RelId};

use crate::answer::subquery::{classify, failure_select, merge_filter, satisfaction_select, IntegrationKind};
use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::degrade::{DegradeCause, DegradeEvent, Degradation, PpaPhase};
use crate::error::PrefError;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::SelectedPreference;

/// Maps an armed failpoint at `site` onto [`ExecError::Fault`]; a no-op
/// without the `failpoints` feature.
#[inline]
fn fail_point(site: &str) -> Result<(), ExecError> {
    qp_storage::failpoint::check(site).map_err(ExecError::Fault)
}

/// Instrumentation of a PPA run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PpaStats {
    /// Time until the first tuple was emitted (None for empty answers).
    pub first_response: Option<Duration>,
    /// Total execution time.
    pub total: Duration,
    /// Number of presence queries executed.
    pub presence_queries: usize,
    /// Number of absence queries executed.
    pub absence_queries: usize,
    /// Number of parameterized (per-tuple) queries executed.
    pub parameterized_queries: usize,
}

/// A qualified tuple buffered for emission, max-heap ordered by doi (ties
/// broken by tuple id for determinism).
#[derive(Debug, Clone)]
struct Buffered {
    doi: f64,
    tid: u64,
    satisfied: Vec<usize>,
    failed: Vec<usize>,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        self.doi == other.doi && self.tid == other.tid
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.doi.total_cmp(&other.doi).then_with(|| other.tid.cmp(&self.tid))
    }
}

/// Everything the parameterized probes learn about one candidate tuple.
struct Probed {
    /// Presence preferences the tuple satisfies, with degrees.
    sat: Vec<(usize, f64)>,
    /// Absence preferences the tuple fails, with (non-positive) degrees.
    abs_failed: Vec<(usize, f64)>,
    /// Parameterized queries executed for this tuple.
    queries: usize,
    /// Execution counters those queries accrued.
    stats: ExecStats,
}

/// Splits `items` into at most `workers` contiguous chunks whose sizes
/// differ by at most one. Chunk order equals input order, so flattening
/// the per-chunk results reproduces the serial processing order exactly.
fn chunked<T>(items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let base = n / workers;
    let extra = n % workers;
    let mut iter = items.into_iter();
    (0..workers).map(|w| iter.by_ref().take(base + usize::from(w < extra)).collect()).collect()
}

/// Evaluates the remaining parameterized queries for one chunk of fresh
/// tuples. The chunk clones each pristine prepared probe (compiled with
/// the placeholder row id 0) exactly once and then rebinds it in place
/// per tuple — one plan clone per probe per *worker*, not per tuple, so
/// the per-tuple cost is running the probe, nothing else. The guard is
/// shared — across threads its budget atomics stay global, so a parallel
/// round cannot out-spend a serial one.
fn probe_chunk(
    engine: &Engine,
    db: &Database,
    guard: &QueryGuard,
    first_rel: RelId,
    chunk: Vec<(u64, f64)>,
    s_probe: &[(usize, &CompiledQuery, f64)],
    a_probe: &[(usize, &CompiledQuery, f64)],
) -> Result<Vec<(u64, f64, Probed)>, ExecError> {
    let mut s_local: Vec<(usize, CompiledQuery, f64)> =
        s_probe.iter().map(|(p, q, d)| (*p, (*q).clone(), *d)).collect();
    let mut a_local: Vec<(usize, CompiledQuery, f64)> =
        a_probe.iter().map(|(p, q, d)| (*p, (*q).clone(), *d)).collect();
    let mut out = Vec::with_capacity(chunk.len());
    for (tid, degree) in chunk {
        let mut probed = Probed {
            sat: Vec::new(),
            abs_failed: Vec::new(),
            queries: 0,
            stats: ExecStats::default(),
        };
        for (pref, q, d_plus) in s_local.iter_mut() {
            probed.queries += 1;
            q.rebind_rowid(first_rel, tid);
            let rows = engine.execute_prepared_rows_guarded(db, q, &mut probed.stats, guard)?;
            if let Some(r) = rows.first() {
                let d = r[1].as_f64().unwrap_or(*d_plus);
                probed.sat.push((*pref, d.max(0.0)));
            }
        }
        for (pref, q, d_minus) in a_local.iter_mut() {
            probed.queries += 1;
            q.rebind_rowid(first_rel, tid);
            let rows = engine.execute_prepared_rows_guarded(db, q, &mut probed.stats, guard)?;
            if let Some(r) = rows.first() {
                let d = r[1].as_f64().unwrap_or(*d_minus);
                probed.abs_failed.push((*pref, d.min(0.0)));
            }
        }
        out.push((tid, degree, probed));
    }
    Ok(out)
}

/// Runs PPA and returns the (emission-ordered) answer plus stats.
pub fn ppa(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
) -> Result<(PersonalizedAnswer, PpaStats), PrefError> {
    ppa_limited(db, engine, initial, profile, selected, l, ranking, None)
}

/// Runs PPA with an optional emission limit: as soon as `limit` tuples
/// have been *provably-ranked* emitted, the run stops — the progressive
/// formulation's payoff for top-N requests, where SPA must always compute
/// its entire statement first.
#[allow(clippy::too_many_arguments)]
pub fn ppa_limited(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    limit: Option<usize>,
) -> Result<(PersonalizedAnswer, PpaStats), PrefError> {
    ppa_guarded(db, engine, initial, profile, selected, l, ranking, limit, &QueryGuard::unlimited())
        .map(|(a, s, _)| (a, s))
}

/// Runs PPA under a [`QueryGuard`], degrading instead of failing.
///
/// Once the phase queries are prepared, a guard trip (deadline, budget,
/// cancellation) or an injected fault mid-phase does not error out:
/// progression stops, every buffered tuple whose doi still clears the MEDI
/// bound of the phase reached is emitted, and the cut is described in the
/// returned [`Degradation`]. The partial answer is a prefix of the
/// complete run's answer: no emitted tuple ranks below an omitted one —
/// the same MEDI argument that makes a complete run's emission order
/// correct applies to the truncated one.
///
/// Errors *before* the phase loop (an unsupported query shape, failed
/// preparation) are still returned as `Err`: there is nothing partial to
/// salvage.
#[allow(clippy::too_many_arguments)]
pub fn ppa_guarded(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    limit: Option<usize>,
    guard: &QueryGuard,
) -> Result<(PersonalizedAnswer, PpaStats, Degradation), PrefError> {
    let started = Instant::now();
    let tracer = engine.tracer().clone();
    let mut run_span = tracer.span("ppa.run");
    run_span.attr("k", selected.len());
    run_span.attr("l", l);
    let selects = initial.selects();
    if selects.len() != 1 {
        return Err(PrefError::UnsupportedQuery("initial query must be a single SELECT".into()));
    }
    let initial_select = selects[0];
    if selected.is_empty() {
        return Err(PrefError::InvalidCriterion(
            "PPA requires at least one selected preference".into(),
        ));
    }
    if l == 0 || l > selected.len() {
        return Err(PrefError::InvalidCriterion(format!(
            "L = {l} outside 1..=K ({} selected)",
            selected.len()
        )));
    }
    let catalog = db.catalog();
    // Subquery generation: classification, selectivity-based ordering,
    // and preparation of the S/A queries plus their parameterized
    // (rebindable) versions — everything before the first phase runs.
    let mut prepare_span = tracer.span("ppa.prepare");
    let infos = classify(db, engine, profile, selected);

    // order presence queries by increasing satisfaction selectivity,
    // absence queries by increasing failure selectivity
    let mut s_order: Vec<usize> = infos
        .iter()
        .filter(|i| matches!(i.kind, IntegrationKind::Presence | IntegrationKind::Absence11))
        .map(|i| i.index)
        .collect();
    s_order.sort_by(|a, b| {
        infos[*a].sat_selectivity.total_cmp(&infos[*b].sat_selectivity).then(a.cmp(b))
    });
    let mut a_order: Vec<usize> = infos
        .iter()
        .filter(|i| i.kind == IntegrationKind::Absence1N)
        .map(|i| i.index)
        .collect();
    a_order.sort_by(|a, b| {
        infos[*a].fail_selectivity.total_cmp(&infos[*b].fail_selectivity).then(a.cmp(b))
    });

    // --- tuple identity: the first FROM relation's row id -------------
    let (first_binding, first_rel) = match &initial_select.from[0] {
        TableRef::Relation { name, alias } => {
            let rel = catalog.relation_by_name(name)?;
            (alias.clone().unwrap_or_else(|| name.clone()), rel.id)
        }
        TableRef::Derived { .. } => {
            return Err(PrefError::UnsupportedQuery("derived FROM in initial query".into()))
        }
    };

    // --- per-tuple row fetch (prepared; avoids materializing the whole
    // initial query when PPA only emits a slice of it) ------------------
    let mut fetch = initial_select.clone();
    let mut fetch_items = vec![builder::item_as(builder::col(&first_binding, "rowid"), "qp_tid")];
    fetch_items.extend(fetch.items.iter().cloned());
    fetch.items = fetch_items;
    merge_filter(
        &mut fetch,
        builder::eq(builder::col(&first_binding, "rowid"), builder::int(0)),
    );
    let mut fetch_prepared = engine.prepare(db, &Query::from_select(fetch))?;
    let columns: Vec<String> = fetch_prepared.columns.iter().skip(1).cloned().collect();

    // --- build + prepare the S and A queries ---------------------------
    let projection = |binding: &str| {
        let b = binding.to_string();
        move |_anchor: &str, degree: qp_sql::Expr| -> Vec<SelectItem> {
            vec![
                builder::item_as(builder::col(&b, "rowid"), "qp_tid"),
                builder::item_as(degree, "qp_degree"),
            ]
        }
    };
    let mut s_queries: Vec<Select> = Vec::with_capacity(s_order.len());
    for &i in &s_order {
        let proj = projection(&first_binding);
        s_queries.push(satisfaction_select(catalog, initial_select, profile, &selected[i], &infos[i], &proj)?);
    }
    let mut a_queries: Vec<Select> = Vec::with_capacity(a_order.len());
    for &i in &a_order {
        let proj = projection(&first_binding);
        a_queries.push(failure_select(catalog, initial_select, profile, &selected[i], &infos[i], &proj)?);
    }
    // prepared parameterized versions with a placeholder row id
    let prepare_bound = |engine: &Engine, s: &Select| -> Result<CompiledQuery, PrefError> {
        let mut sq = s.clone();
        merge_filter(
            &mut sq,
            builder::eq(builder::col(&first_binding, "rowid"), builder::int(0)),
        );
        Ok(engine.prepare(db, &Query::from_select(sq))?)
    };
    let mut s_prepared: Vec<CompiledQuery> = Vec::with_capacity(s_queries.len());
    for s in &s_queries {
        s_prepared.push(prepare_bound(engine, s)?);
    }
    let mut a_prepared: Vec<CompiledQuery> = Vec::with_capacity(a_queries.len());
    for a in &a_queries {
        a_prepared.push(prepare_bound(engine, a)?);
    }
    prepare_span.attr("presence_queries", s_order.len());
    prepare_span.attr("absence_queries", a_order.len());
    prepare_span.finish();
    let mut estats = ExecStats::default();

    let mut stats = PpaStats::default();
    let ranking = *ranking;
    let d_plus = |i: usize| infos[i].d_plus;
    let d_minus = |i: usize| infos[i].d_minus;

    // ranked emission machinery
    let mut buffered: BinaryHeap<Buffered> = BinaryHeap::new();
    let mut emitted: Vec<PersonalizedTuple> = Vec::new();
    let mut first_response: Option<Duration> = None;
    // Emits every buffered tuple whose doi clears the MEDI bound,
    // fetching its projected row via the prepared row-fetch query.
    // Evaluates to `Option<ExecError>`: `Some` when the guard tripped (or
    // a fault fired) mid-emission, with the unfetched tuple left buffered.
    macro_rules! emit_ready {
        ($medi:expr) => {{
            let medi: f64 = $medi;
            let mut emit_err: Option<ExecError> = None;
            while let Some(top) = buffered.peek() {
                if top.doi + 1e-12 < medi {
                    break;
                }
                // each emitted tuple is one row of user output
                if let Err(e) = guard.charge_output(1) {
                    emit_err = Some(e);
                    break;
                }
                let Some(rec) = buffered.pop() else { break };
                if first_response.is_none() {
                    first_response = Some(started.elapsed());
                }
                fetch_prepared.rebind_rowid(first_rel, rec.tid);
                let row = match engine.execute_prepared_rows_guarded(
                    db,
                    &fetch_prepared,
                    &mut estats,
                    guard,
                ) {
                    Ok(rs) => rs
                        .into_iter()
                        .next()
                        .map(|mut r| {
                            r.remove(0);
                            r
                        })
                        .unwrap_or_default(),
                    Err(e) => {
                        buffered.push(rec);
                        emit_err = Some(e);
                        break;
                    }
                };
                emitted.push(PersonalizedTuple {
                    tuple_id: Some(rec.tid),
                    row,
                    doi: rec.doi,
                    satisfied: rec.satisfied,
                    failed: rec.failed,
                });
            }
            emit_err
        }};
    }

    // MEDI before presence round si: best unseen satisfies S[si..] + all A
    let medi_at = |si: usize| -> f64 {
        let pos: Vec<f64> = s_order[si..]
            .iter()
            .map(|&i| d_plus(i))
            .chain(a_order.iter().map(|&i| d_plus(i)))
            .collect();
        ranking.positive(&pos)
    };

    let mut seen: HashSet<u64> = HashSet::new();
    // Where and why the run stopped progressing, if it did.
    let mut cut: Option<(PpaPhase, DegradeCause)> = None;
    // Completed phase counts (for the degradation report and the final
    // emission bound).
    let mut presence_done = 0usize;
    let mut absence_done = 0usize;
    let mut limit_hit = false;
    // best doi an unseen tuple can reach once the presence stage is over
    let medi_abs = {
        let pos: Vec<f64> = a_order.iter().map(|&i| d_plus(i)).collect();
        ranking.positive(&pos)
    };

    // --- presence stage ------------------------------------------------
    'presence: for (si, &pref_i) in s_order.iter().enumerate() {
        // remaining queries (incl. this) + all absence prefs must reach L
        if (s_order.len() - si) + a_order.len() < l {
            break;
        }
        let mut round_span = tracer.span("ppa.presence");
        round_span.attr("round", si);
        round_span.attr("pref", pref_i);
        if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.presence")) {
            cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
            break 'presence;
        }
        stats.presence_queries += 1;
        let rs = match engine.execute_uncharged(db, &Query::from_select(s_queries[si].clone()), guard)
        {
            Ok(rs) => rs,
            Err(e) => {
                cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
                break 'presence;
            }
        };
        // Fresh tuples are collected serially (dedup against `seen`), then
        // probed — across worker threads when parallelism allows.
        let mut fresh: Vec<(u64, f64)> = Vec::new();
        for row in rs.rows {
            let tid = match row[0].as_i64() {
                Some(t) if t >= 0 => t as u64,
                _ => continue,
            };
            if !seen.insert(tid) {
                continue;
            }
            fresh.push((tid, row[1].as_f64().unwrap_or(d_plus(pref_i))));
        }
        // later presence queries plus all absence queries, rebound per tuple
        let s_probe: Vec<(usize, &CompiledQuery, f64)> = s_order
            .iter()
            .enumerate()
            .skip(si + 1)
            .map(|(sj, &p)| (p, &s_prepared[sj], d_plus(p)))
            .collect();
        let a_probe: Vec<(usize, &CompiledQuery, f64)> =
            a_order.iter().enumerate().map(|(aj, &p)| (p, &a_prepared[aj], d_minus(p))).collect();
        let workers = engine.parallelism().min(fresh.len());
        let par_span = (workers > 1).then(|| {
            let mut sp = tracer.span("ppa.parallel_round");
            sp.attr("phase", "presence");
            sp.attr("round", si);
            sp.attr("tuples", fresh.len());
            sp.attr("workers", workers);
            sp
        });
        let shared: &Engine = engine;
        let probed = parallel_map(chunked(fresh, workers.max(1)), workers, |_, chunk| {
            probe_chunk(shared, db, guard, first_rel, chunk, &s_probe, &a_probe)
        });
        drop(par_span);
        let probed: Vec<(u64, f64, Probed)> = match probed {
            Ok(p) => p.into_iter().flatten().collect(),
            Err(e) => {
                // the round's batch is dropped whole: partially probed
                // tuples have unknown doi, and every tuple of this round
                // is bounded by the round's MEDI — the cut's emission
                // bound — so nothing emitted can be outranked by a drop
                cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
                break 'presence;
            }
        };
        for (tid, degree, p) in probed {
            stats.parameterized_queries += p.queries;
            estats.merge(&p.stats);
            let mut sat: Vec<(usize, f64)> = vec![(pref_i, degree.max(0.0))];
            sat.extend(p.sat);
            let sat_pres: HashSet<usize> = sat.iter().map(|(i, _)| *i).collect();
            let pres_failed: Vec<usize> =
                s_order.iter().copied().filter(|i| !sat_pres.contains(i)).collect();
            let abs_failed = p.abs_failed;
            let failed_abs: HashSet<usize> = abs_failed.iter().map(|(i, _)| *i).collect();
            let abs_sat: Vec<usize> =
                a_order.iter().copied().filter(|i| !failed_abs.contains(i)).collect();

            let cur_l = sat.len() + abs_sat.len();
            if cur_l >= l {
                let mut pos: Vec<f64> = sat.iter().map(|(_, d)| *d).collect();
                pos.extend(abs_sat.iter().map(|&i| d_plus(i)));
                let mut neg: Vec<f64> = pres_failed.iter().map(|&i| d_minus(i)).collect();
                neg.extend(abs_failed.iter().map(|(_, d)| *d));
                let neg: Vec<f64> = neg.into_iter().filter(|d| *d < 0.0).collect();
                let doi = ranking.mixed(&pos, &neg);
                let mut satisfied: Vec<usize> = sat_pres.iter().copied().collect();
                satisfied.extend(&abs_sat);
                satisfied.sort_unstable();
                let mut failed: Vec<usize> = pres_failed;
                failed.extend(abs_failed.iter().map(|(i, _)| *i));
                failed.sort_unstable();
                buffered.push(Buffered { tid, doi, satisfied, failed });
            }
        }
        presence_done = si + 1;
        let medi = medi_at(si + 1);
        if let Some(e) = emit_ready!(medi) {
            cut = Some((PpaPhase::Presence(si), DegradeCause::from_exec(&e)));
            break 'presence;
        }
        round_span.attr("emitted_total", emitted.len());
        round_span.attr("buffered", buffered.len());
        if limit.is_some_and(|n| emitted.len() >= n) {
            limit_hit = true;
            break 'presence;
        }
    }

    // --- absence stage ---------------------------------------------------
    // Unseen tuples satisfy no presence preference; they qualify only via
    // absence preferences, so the whole stage (and step 3) is skipped when
    // |A| < L.
    let mut nids: HashSet<u64> = HashSet::new();
    if a_order.len() >= l && cut.is_none() && !limit_hit {
        'absence: for (ai, &pref_i) in a_order.iter().enumerate() {
            let mut round_span = tracer.span("ppa.absence");
            round_span.attr("round", ai);
            round_span.attr("pref", pref_i);
            if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.absence")) {
                cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                break 'absence;
            }
            stats.absence_queries += 1;
            let rs = match engine.execute_uncharged(
                db,
                &Query::from_select(a_queries[ai].clone()),
                guard,
            ) {
                Ok(rs) => rs,
                Err(e) => {
                    cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                    break 'absence;
                }
            };
            let mut fresh: Vec<(u64, f64)> = Vec::new();
            for row in rs.rows {
                let tid = match row[0].as_i64() {
                    Some(t) if t >= 0 => t as u64,
                    _ => continue,
                };
                nids.insert(tid);
                if seen.contains(&tid) {
                    continue;
                }
                // a new tuple fails pref_i; it can satisfy at most |A|-1
                if a_order.len() - 1 < l {
                    continue;
                }
                seen.insert(tid);
                fresh.push((tid, row[1].as_f64().unwrap_or(d_minus(pref_i))));
            }
            // remaining absence queries, rebound per tuple
            let a_probe: Vec<(usize, &CompiledQuery, f64)> = a_order
                .iter()
                .enumerate()
                .skip(ai + 1)
                .map(|(aj, &p)| (p, &a_prepared[aj], d_minus(p)))
                .collect();
            let workers = engine.parallelism().min(fresh.len());
            let par_span = (workers > 1).then(|| {
                let mut sp = tracer.span("ppa.parallel_round");
                sp.attr("phase", "absence");
                sp.attr("round", ai);
                sp.attr("tuples", fresh.len());
                sp.attr("workers", workers);
                sp
            });
            let shared: &Engine = engine;
            let probed = parallel_map(chunked(fresh, workers.max(1)), workers, |_, chunk| {
                probe_chunk(shared, db, guard, first_rel, chunk, &[], &a_probe)
            });
            drop(par_span);
            let probed: Vec<(u64, f64, Probed)> = match probed {
                Ok(p) => p.into_iter().flatten().collect(),
                Err(e) => {
                    cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                    break 'absence;
                }
            };
            for (tid, d0, p) in probed {
                stats.parameterized_queries += p.queries;
                estats.merge(&p.stats);
                let mut abs_failed: Vec<(usize, f64)> = vec![(pref_i, d0.min(0.0))];
                abs_failed.extend(p.abs_failed);
                let failed_abs: HashSet<usize> = abs_failed.iter().map(|(i, _)| *i).collect();
                let abs_sat: Vec<usize> =
                    a_order.iter().copied().filter(|i| !failed_abs.contains(i)).collect();
                let cur_l = abs_sat.len();
                if cur_l >= l {
                    let pos: Vec<f64> = abs_sat.iter().map(|&i| d_plus(i)).collect();
                    let mut neg: Vec<f64> = s_order.iter().map(|&i| d_minus(i)).collect();
                    neg.extend(abs_failed.iter().map(|(_, d)| *d));
                    let neg: Vec<f64> = neg.into_iter().filter(|d| *d < 0.0).collect();
                    let doi = ranking.mixed(&pos, &neg);
                    let mut satisfied = abs_sat;
                    satisfied.sort_unstable();
                    let mut failed: Vec<usize> = s_order.clone();
                    failed.extend(abs_failed.iter().map(|(i, _)| *i));
                    failed.sort_unstable();
                    buffered.push(Buffered { tid, doi, satisfied, failed });
                }
            }
            absence_done = ai + 1;
            if let Some(e) = emit_ready!(medi_abs) {
                cut = Some((PpaPhase::Absence(ai), DegradeCause::from_exec(&e)));
                break 'absence;
            }
            round_span.attr("emitted_total", emitted.len());
            round_span.attr("buffered", buffered.len());
            if limit.is_some_and(|n| emitted.len() >= n) {
                limit_hit = true;
                break 'absence;
            }
        }

        // --- step 3: tuples never returned by any absence query satisfy
        // every absence preference (the full tuple-id set is materialized
        // only here, where it is genuinely needed) ----------------------
        if cut.is_none() && !limit_hit {
            let _residual_span = tracer.span("ppa.residual");
            'residual: {
                if let Err(e) = guard.check_now().and_then(|()| fail_point("ppa.step3")) {
                    cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
                    break 'residual;
                }
                let mut base_ids = initial_select.clone();
                base_ids.items =
                    vec![builder::item_as(builder::col(&first_binding, "rowid"), "qp_tid")];
                base_ids.distinct = true;
                let rs = match engine.execute_uncharged(db, &Query::from_select(base_ids), guard)
                {
                    Ok(rs) => rs,
                    Err(e) => {
                        cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
                        break 'residual;
                    }
                };
                let all_ids: Vec<u64> = rs
                    .rows
                    .iter()
                    .filter_map(|r| r[0].as_i64())
                    .filter(|t| *t >= 0)
                    .map(|t| t as u64)
                    .collect();
                for &tid in &all_ids {
                    if seen.contains(&tid) || nids.contains(&tid) {
                        continue;
                    }
                    let satisfied: Vec<usize> = a_order.clone();
                    if satisfied.len() >= l {
                        let pos: Vec<f64> = a_order.iter().map(|&i| d_plus(i)).collect();
                        let neg: Vec<f64> =
                            s_order.iter().map(|&i| d_minus(i)).filter(|d| *d < 0.0).collect();
                        let doi = ranking.mixed(&pos, &neg);
                        let mut failed: Vec<usize> = s_order.clone();
                        failed.sort_unstable();
                        let mut satisfied = satisfied;
                        satisfied.sort_unstable();
                        buffered.push(Buffered { tid, doi, satisfied, failed });
                    }
                }
            }
        }
    }

    // --- final flush -----------------------------------------------------
    // On a limit hit the emitted prefix already holds `limit` provably
    // ranked tuples; anything still buffered ranks at or below them, so
    // flushing would only be truncated away again.
    if !limit_hit {
        // The bound an unseen (never-evaluated) tuple could still reach at
        // the point the run stopped: a complete run flushes everything, a
        // cut run emits only what is provably ranked above that bound.
        let bound = match &cut {
            None => f64::NEG_INFINITY,
            Some((PpaPhase::Presence(_), _)) => medi_at(presence_done),
            Some((PpaPhase::Absence(_) | PpaPhase::Residual, _)) => medi_abs,
        };
        if let Some(e) = emit_ready!(bound) {
            if cut.is_none() {
                cut = Some((PpaPhase::Residual, DegradeCause::from_exec(&e)));
            }
        }
    }
    if let Some(n) = limit {
        emitted.truncate(n);
    }

    let mut degradation = Degradation::default();
    if let Some((phase, cause)) = cut {
        tracer.event(
            "ppa.cut",
            &[
                ("phase", format!("{phase:?}").into()),
                ("cause", format!("{cause:?}").into()),
                ("buffered_discarded", buffered.len().into()),
            ],
        );
        degradation.push(DegradeEvent::PpaCutoff {
            phase,
            cause,
            presence_unevaluated: s_order.len() - presence_done,
            absence_unevaluated: a_order.len() - absence_done,
            buffered_discarded: buffered.len(),
        });
    }

    stats.first_response = first_response;
    stats.total = started.elapsed();

    run_span.attr("emitted", emitted.len());
    run_span.attr("presence_queries", stats.presence_queries);
    run_span.attr("absence_queries", stats.absence_queries);
    run_span.attr("parameterized_queries", stats.parameterized_queries);
    run_span.attr("degraded", !degradation.is_complete());
    let metrics = engine.metrics();
    metrics.counter("ppa.runs").inc();
    metrics.counter("ppa.presence_queries").add(stats.presence_queries as u64);
    metrics.counter("ppa.absence_queries").add(stats.absence_queries as u64);
    metrics.counter("ppa.parameterized_queries").add(stats.parameterized_queries as u64);
    metrics.counter("ppa.emitted").add(emitted.len() as u64);
    // Registered unconditionally so a complete run reports `ppa.cuts = 0`
    // rather than omitting the counter from snapshots.
    metrics.counter("ppa.cuts").add(u64::from(!degradation.is_complete()));
    metrics.histogram("ppa.total_us").observe(stats.total);
    if let Some(fr) = first_response {
        metrics.histogram("ppa.first_response_us").observe(fr);
    }

    Ok((PersonalizedAnswer { columns, tuples: emitted }, stats, degradation))
}

// `RelId` is used in the prepared-query rebinds above.
#[allow(unused)]
fn _rel_id_marker(_r: RelId) {}
