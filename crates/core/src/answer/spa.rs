//! SPA — Simply Personalized Answers (§5, Example 6).
//!
//! The top-K preferences are integrated into the initial query as a union
//! of per-preference sub-queries; the union is grouped by the initial
//! query's projection, groups satisfying fewer than L preferences are
//! dropped (`HAVING count(*) >= L`), and the survivors are ranked by a
//! user-defined aggregate ranking function over the collected degrees.
//! The whole thing executes as *one SQL statement*.
//!
//! Shortcomings the paper points out (and PPA addresses): the answer is
//! not self-explanatory, ranking can only use the satisfied preferences,
//! 1–n absence preferences cost a `NOT IN` sub-query each, and no tuple
//! is returned before the entire statement finishes.

use qp_exec::{AggState, Engine, ExecError, QueryGuard};
use qp_sql::{builder, Expr, Query, SelectItem};
use qp_storage::{Database, Value};

use crate::answer::subquery::{classify, satisfaction_select};
use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::error::PrefError;
use crate::profile::Profile;
use crate::ranking::{Ranking, RankingKind};
use crate::select::SelectedPreference;

/// Name of the ranking aggregate UDF SPA registers.
const RANK_UDF: &str = "qp_rank";

/// Runs SPA: builds the personalized SQL statement, executes it, and
/// returns the ranked answer. `l` is the minimum number of the K selected
/// preferences a tuple must satisfy.
pub fn spa(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
) -> Result<PersonalizedAnswer, PrefError> {
    spa_guarded(db, engine, initial, profile, selected, l, ranking, &QueryGuard::unlimited())
}

/// [`spa`] under a [`QueryGuard`]. Unlike PPA, SPA is a single statement
/// and cannot degrade to a partial answer: a guard trip (or an injected
/// fault at the `spa.execute` site) fails the whole run with a typed
/// error. [`crate::Personalizer`] turns that failure into a fallback to
/// the unpersonalized query when
/// [`crate::PersonalizationOptions::fallback_to_original`] is set.
#[allow(clippy::too_many_arguments)]
pub fn spa_guarded(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
    ranking: &Ranking,
    guard: &QueryGuard,
) -> Result<PersonalizedAnswer, PrefError> {
    let started = std::time::Instant::now();
    let tracer = engine.tracer().clone();
    let mut run_span = tracer.span("spa.run");
    run_span.attr("k", selected.len());
    run_span.attr("l", l);
    // Rewriting: classification plus assembly of the single UNION ALL /
    // HAVING / ranking-UDF statement.
    let build_span = tracer.span("spa.build");
    let query = build_spa_query(db, engine, initial, profile, selected, l)?;
    register_rank_udf(engine, ranking.kind);
    build_span.finish();
    qp_storage::failpoint::check("spa.execute")
        .map_err(|msg| PrefError::from(ExecError::Fault(msg)))?;
    let exec_span = tracer.span("spa.execute");
    let (rs, _stats) = engine.execute_with_guard(db, &query, guard)?;
    exec_span.finish();
    let metrics = engine.metrics();
    metrics.counter("spa.runs").inc();
    metrics.counter("spa.answer_tuples").add(rs.rows.len() as u64);
    metrics.histogram("spa.total_us").observe(started.elapsed());
    run_span.attr("rows", rs.rows.len());
    let ncols = rs.columns.len() - 1; // last column is the score
    let tuples = rs
        .rows
        .into_iter()
        .map(|mut row| {
            let doi = row.pop().and_then(|v| v.as_f64()).unwrap_or(0.0);
            PersonalizedTuple { tuple_id: None, row, doi, satisfied: vec![], failed: vec![] }
        })
        .collect();
    let columns = initial_column_names(initial, ncols);
    Ok(PersonalizedAnswer { columns, tuples })
}

/// Builds (without executing) the single personalized SQL statement —
/// exposed separately so tests and benchmarks can inspect it.
pub fn build_spa_query(
    db: &Database,
    engine: &mut Engine,
    initial: &Query,
    profile: &Profile,
    selected: &[SelectedPreference],
    l: usize,
) -> Result<Query, PrefError> {
    let selects = initial.selects();
    if selects.len() != 1 {
        return Err(PrefError::UnsupportedQuery("initial query must be a single SELECT".into()));
    }
    let initial_select = selects[0];
    if selected.is_empty() {
        return Err(PrefError::InvalidCriterion(
            "SPA requires at least one selected preference".into(),
        ));
    }
    if l == 0 || l > selected.len() {
        return Err(PrefError::InvalidCriterion(format!(
            "L = {l} outside 1..=K ({} selected)",
            selected.len()
        )));
    }
    let catalog = db.catalog();
    let infos = classify(db, engine, profile, selected);

    // canonical names c0.. for the initial projection inside sub-queries
    let base_items: Vec<Expr> = initial_select
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => Ok(expr.clone()),
            SelectItem::Wildcard => Err(PrefError::UnsupportedQuery(
                "SELECT * cannot be personalized; project explicit columns".into(),
            )),
        })
        .collect::<Result<_, _>>()?;

    let mut branches = Vec::with_capacity(selected.len());
    for (sp, info) in selected.iter().zip(&infos) {
        let items_template = base_items.clone();
        let sub = satisfaction_select(
            catalog,
            initial_select,
            profile,
            sp,
            info,
            &move |_anchor: &str, degree: Expr| {
                let mut items: Vec<SelectItem> = items_template
                    .iter()
                    .enumerate()
                    .map(|(i, e)| builder::item_as(e.clone(), format!("c{i}")))
                    .collect();
                items.push(builder::item_as(degree, "degree"));
                items.push(builder::item_as(builder::int(info.index as i64), "pref"));
                items
            },
        )?;
        branches.push(sub);
    }
    let union = builder::union_all(branches);

    // outer: group by the projection, keep groups with >= L prefs, rank
    let mut outer = builder::SelectBuilder::new();
    for i in 0..base_items.len() {
        outer = outer.expr(builder::bare_col(format!("c{i}")));
    }
    outer = outer
        .expr_as(builder::func(RANK_UDF, vec![builder::bare_col("degree")]), "qp_score")
        .from(qp_sql::TableRef::derived(union, "qp_u"));
    for i in 0..base_items.len() {
        outer = outer.group_by(builder::bare_col(format!("c{i}")));
    }
    let outer = outer.having(builder::binary(
        builder::count_star(),
        qp_sql::BinaryOp::Ge,
        builder::int(l as i64),
    ));
    let mut query = outer.build_query();
    query.order_by.push(qp_sql::OrderByItem {
        expr: builder::bare_col("qp_score"),
        desc: true,
    });
    Ok(query)
}

/// Registers the positive ranking function as an aggregate UDF
/// (`r(degree)` of Example 6).
pub fn register_rank_udf(engine: &mut Engine, kind: RankingKind) {
    struct RankState {
        kind: RankingKind,
        degrees: Vec<f64>,
    }
    impl AggState for RankState {
        fn update(&mut self, args: &[Value]) {
            if let Some(d) = args.first().and_then(Value::as_f64) {
                self.degrees.push(d.max(0.0));
            }
        }
        fn finish(&mut self) -> Value {
            Value::Float(self.kind.positive(&self.degrees))
        }
    }
    engine
        .registry_mut()
        .register_aggregate(RANK_UDF, move || Box::new(RankState { kind, degrees: vec![] }));
}

fn initial_column_names(initial: &Query, ncols: usize) -> Vec<String> {
    let select = initial.selects()[0];
    let mut names = Vec::with_capacity(ncols);
    for item in &select.items {
        if let SelectItem::Expr { expr, alias } = item {
            let name = alias.clone().unwrap_or_else(|| match expr {
                Expr::Column { name, .. } => name.clone(),
                other => other.to_string(),
            });
            names.push(name);
        }
    }
    while names.len() < ncols {
        names.push(format!("c{}", names.len()));
    }
    names.truncate(ncols);
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PersonalizationGraph;
    use crate::ranking::MixedKind;
    use crate::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
    use qp_sql::parse_query;
    use qp_storage::{Attribute, DataType};

    /// Small movies DB with W. Allen comedies, a musical, and old films.
    fn movies_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        db.create_relation(
            "DIRECTED",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "DIRECTOR",
            vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
            &["did"],
        )
        .unwrap();
        let movies = [
            (1, "Annie Hall", 1977),
            (2, "Manhattan", 1979),
            (3, "Zelig", 1983),
            (4, "Heat", 1995),
            (5, "Chicago", 2002),
        ];
        for (mid, t, y) in movies {
            db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)])
                .unwrap();
        }
        for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
        {
            db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
        }
        for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
            db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
        }
        for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
            db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
        }
        db
    }

    fn als_profile(db: &Database) -> Profile {
        Profile::parse(
            db.catalog(),
            "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
             doi(MOVIE.year < 1980) = (-0.7, 0)\n\
             doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
             doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
             doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
             doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
        )
        .unwrap()
    }

    fn run_spa(l: usize) -> PersonalizedAnswer {
        let db = movies_db();
        let p = als_profile(&db);
        let g = PersonalizationGraph::build(&p);
        let initial = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
        let selected = fakecrit(&g, &qc, SelectionCriterion::TopK(3)).unwrap();
        assert_eq!(selected.len(), 3);
        let mut engine = Engine::new();
        let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::CountWeighted);
        spa(&db, &mut engine, &initial, &p, &selected, l, &ranking).unwrap()
    }

    #[test]
    fn example6_l2_answer() {
        // Preferences: W. Allen (presence, 0.72), year<1980 (1-1 absence,
        // d⁺=0), musical (1-n absence, d⁺=0.56).
        // Satisfaction counts: Annie Hall {Allen, ¬musical}=2,
        // Manhattan {Allen, ¬musical}=2, Zelig {Allen, ¬musical, ≥1980}=3,
        // Heat {¬musical, ≥1980}=2, Chicago {≥1980}=1.
        let a = run_spa(2);
        let titles: Vec<String> = a.tuples.iter().map(|t| t.row[0].to_string()).collect();
        assert!(titles.contains(&"Annie Hall".to_string()));
        assert!(titles.contains(&"Zelig".to_string()));
        assert!(!titles.contains(&"Chicago".to_string()), "Chicago satisfies only 1");
        assert_eq!(a.len(), 4);
        // top score: W. Allen (0.72) + musical-absence (0.56) under the
        // inflationary combination (the year-absence degree of 0
        // contributes nothing) — Annie Hall, Manhattan, and Zelig tie.
        let expect = 1.0 - (1.0 - 0.72_f64) * (1.0 - 0.56);
        for t in &a.tuples[..3] {
            assert!((t.doi - expect).abs() < 1e-9, "{t:?}");
        }
        // Heat satisfies musical-absence (0.56) and year-absence (0) only
        let heat = a.tuples.iter().find(|t| t.row[0] == Value::str("Heat")).unwrap();
        assert!((heat.doi - 0.56).abs() < 1e-9);
        // scores non-increasing
        for w in a.tuples.windows(2) {
            assert!(w[0].doi >= w[1].doi - 1e-12);
        }
    }

    #[test]
    fn l1_keeps_everything_satisfying_one() {
        let a = run_spa(1);
        assert_eq!(a.len(), 5); // every movie satisfies at least one
    }

    #[test]
    fn l3_only_zelig() {
        let a = run_spa(3);
        let titles: Vec<String> = a.tuples.iter().map(|t| t.row[0].to_string()).collect();
        assert_eq!(titles, vec!["Zelig"]);
    }

    #[test]
    fn invalid_l_rejected() {
        let db = movies_db();
        let p = als_profile(&db);
        let g = PersonalizationGraph::build(&p);
        let initial = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
        let selected = fakecrit(&g, &qc, SelectionCriterion::TopK(3)).unwrap();
        let mut engine = Engine::new();
        let r = Ranking::default();
        assert!(spa(&db, &mut engine, &initial, &p, &selected, 0, &r).is_err());
        assert!(spa(&db, &mut engine, &initial, &p, &selected, 4, &r).is_err());
        assert!(spa(&db, &mut engine, &initial, &p, &[], 1, &r).is_err());
    }

    #[test]
    fn built_sql_is_one_statement() {
        let db = movies_db();
        let p = als_profile(&db);
        let g = PersonalizationGraph::build(&p);
        let initial = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
        let selected = fakecrit(&g, &qc, SelectionCriterion::TopK(3)).unwrap();
        let mut engine = Engine::new();
        let q = build_spa_query(&db, &mut engine, &initial, &p, &selected, 2).unwrap();
        let sql = q.to_string();
        assert!(sql.contains("UNION ALL"), "{sql}");
        assert!(sql.contains("HAVING count(*) >= 2"), "{sql}");
        assert!(sql.contains("ORDER BY qp_score DESC"), "{sql}");
        // the statement round-trips through the parser
        let reparsed = qp_sql::parse_query(&sql).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn ranking_kind_changes_scores() {
        let db = movies_db();
        let p = als_profile(&db);
        let g = PersonalizationGraph::build(&p);
        let initial = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
        let selected = fakecrit(&g, &qc, SelectionCriterion::TopK(3)).unwrap();
        let mut scores = Vec::new();
        for kind in RankingKind::ALL {
            let mut engine = Engine::new();
            let r = Ranking::new(kind, MixedKind::CountWeighted);
            let a = spa(&db, &mut engine, &initial, &p, &selected, 2, &r).unwrap();
            let zelig = a
                .tuples
                .iter()
                .find(|t| t.row[0] == Value::str("Zelig"))
                .expect("zelig present")
                .doi;
            scores.push(zelig);
        }
        // inflationary ≥ dominant ≥ reserved for the same degree set
        assert!(scores[0] >= scores[1] && scores[1] >= scores[2], "{scores:?}");
    }
}
