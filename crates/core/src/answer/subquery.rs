//! Sub-query construction for SPA and PPA (§5).
//!
//! Each selected preference maps to a sub-query extending the initial
//! query by "an appropriate qualification involving the participating
//! preferences" (Example 6). The kind of sub-query depends on the
//! preference type:
//!
//! * **presence** — joins of the path plus the satisfaction condition;
//! * **1–1 absence** — same, with the condition's operator negated;
//! * **1–n absence** — a `NOT IN` sub-query excluding tuples related to
//!   the disliked values (the join path fans out, so inline negation
//!   would be wrong).
//!
//! Elastic preferences are translated into range conditions (`BETWEEN`
//! over the elastic support); their per-tuple degree is computed by a
//! scalar UDF registered on the engine.

use qp_exec::Engine;
use qp_sql::{builder, Expr, Query, Select, SelectItem, TableRef};
use qp_storage::{Catalog, Database, Value};
use qp_storage::histogram::CmpOp;
use qp_storage::schema::JoinMultiplicity;

use crate::error::PrefError;
use crate::preference::CompareOp;
use crate::profile::Profile;
use crate::select::SelectedPreference;

/// How a preference integrates into the query (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrationKind {
    /// Satisfaction region testable by extending the query.
    Presence,
    /// Absence preference whose path multiplies 1–1: inline negation.
    Absence11,
    /// Absence preference over a fanning-out path: `NOT IN` exclusion.
    Absence1N,
}

/// Pre-computed integration data for one selected preference.
#[derive(Debug, Clone)]
pub struct PrefQueryInfo {
    /// Position in the selected-preference list.
    pub index: usize,
    /// Integration kind.
    pub kind: IntegrationKind,
    /// Satisfaction degree peak (`d⁺`, scaled by the join-degree product).
    pub d_plus: f64,
    /// Failure degree (`d⁻` ≤ 0, scaled).
    pub d_minus: f64,
    /// Name of the registered scalar UDF computing the per-tuple
    /// satisfaction degree (elastic presence preferences only).
    pub elastic_udf: Option<String>,
    /// Name of the UDF computing the per-tuple failure degree (elastic
    /// preferences whose failure region is value-dependent).
    pub elastic_neg_udf: Option<String>,
    /// Estimated selectivity of the satisfaction region (used by PPA to
    /// order presence queries).
    pub sat_selectivity: f64,
    /// Estimated selectivity of the failure region (orders absence
    /// queries).
    pub fail_selectivity: f64,
}

/// Builds integration info for every selected preference, registering the
/// needed elastic UDFs on the engine.
pub fn classify(
    db: &Database,
    engine: &mut Engine,
    profile: &Profile,
    selected: &[SelectedPreference],
) -> Vec<PrefQueryInfo> {
    let catalog = db.catalog();
    selected
        .iter()
        .enumerate()
        .map(|(i, sp)| {
            let sel = sp.sel(profile);
            let kind = if sel.is_presence() {
                IntegrationKind::Presence
            } else if path_is_to_one(catalog, profile, sp) {
                IntegrationKind::Absence11
            } else {
                IntegrationKind::Absence1N
            };
            let jd = sp.join_degree;
            let mut elastic_udf = None;
            let mut elastic_neg_udf = None;
            if sel.doi.is_elastic() {
                let doi = sel.doi.clone();
                if sel.is_presence() {
                    let name = format!("qp_elastic_{i}");
                    let doi_pos = doi.clone();
                    engine.registry_mut().register_scalar(&name, move |args: &[Value]| {
                        match args.first().and_then(Value::as_f64) {
                            Some(v) => Value::Float(jd * doi_pos.d_plus_at(v)),
                            None => Value::Null,
                        }
                    });
                    elastic_udf = Some(name);
                }
                let neg_name = format!("qp_elastic_neg_{i}");
                let doi_neg = doi;
                engine.registry_mut().register_scalar(&neg_name, move |args: &[Value]| {
                    match args.first().and_then(Value::as_f64) {
                        Some(v) => Value::Float(jd * doi_neg.d_minus_at(v)),
                        None => Value::Null,
                    }
                });
                elastic_neg_udf = Some(neg_name);
            }
            let (sat_selectivity, fail_selectivity) = estimate_selectivities(db, profile, sp);
            PrefQueryInfo {
                index: i,
                kind,
                d_plus: sp.d_plus_peak(profile),
                d_minus: sp.d_minus(profile),
                elastic_udf,
                elastic_neg_udf,
                sat_selectivity,
                fail_selectivity,
            }
        })
        .collect()
}

/// Whether every join along the path is to-one (the 1–1 / 1–n distinction
/// of §5).
fn path_is_to_one(catalog: &Catalog, profile: &Profile, sp: &SelectedPreference) -> bool {
    sp.joins.iter().all(|j| {
        // a non-join id in the path would be a selection bug; treating the
        // step as to-many (the conservative 1–n classification) is safe
        profile.get(*j).as_join().is_some_and(|jp| {
            catalog.join_multiplicity(jp.from, jp.to) == JoinMultiplicity::ToOne
        })
    })
}

/// Histogram-based selectivity of the preference's satisfaction and
/// failure regions (on the condition attribute alone; join fan-out is not
/// modelled, which is what "simple histograms" gives the paper too).
fn estimate_selectivities(
    db: &Database,
    profile: &Profile,
    sp: &SelectedPreference,
) -> (f64, f64) {
    let sel = sp.sel(profile);
    let hist = db.histogram(sel.attr);
    let sat_of_condition = if sel.doi.is_elastic() {
        let e = sel.satisfaction_elastic();
        let (lo, hi) = e.support();
        hist.selectivity_between(&Value::Float(lo), &Value::Float(hi))
    } else {
        let op = match sel.condition.op {
            CompareOp::Eq => CmpOp::Eq,
            CompareOp::Neq => CmpOp::Ne,
            CompareOp::Lt => CmpOp::Lt,
            CompareOp::Le => CmpOp::Le,
            CompareOp::Gt => CmpOp::Gt,
            CompareOp::Ge => CmpOp::Ge,
        };
        hist.selectivity(op, &sel.condition.value)
    };
    if sel.is_presence() {
        (sat_of_condition, 1.0 - sat_of_condition)
    } else {
        (1.0 - sat_of_condition, sat_of_condition)
    }
}

/// The binding name of the preference's anchor relation within the
/// query's FROM list.
pub fn anchor_binding(
    catalog: &Catalog,
    select: &Select,
    sp: &SelectedPreference,
) -> Result<String, PrefError> {
    for tref in &select.from {
        if let TableRef::Relation { name, alias } = tref {
            let rel = catalog.relation_by_name(name)?;
            if rel.id == sp.anchor {
                return Ok(alias.clone().unwrap_or_else(|| name.clone()));
            }
        }
    }
    Err(PrefError::UnsupportedQuery(format!(
        "selected preference anchored at relation {:?} not in the query",
        sp.anchor
    )))
}

/// Extends `select` with the preference's join path, returning the
/// binding name holding the condition attribute. Fresh aliases `qp<i>_…`
/// are used for the appended relations.
pub fn append_path(
    catalog: &Catalog,
    select: &mut Select,
    profile: &Profile,
    sp: &SelectedPreference,
    alias_prefix: &str,
) -> Result<String, PrefError> {
    let mut prev = anchor_binding(catalog, select, sp)?;
    for (step, j) in sp.joins.iter().enumerate() {
        let jp = profile.get(*j).as_join().ok_or_else(|| {
            PrefError::InvalidCriterion(format!(
                "path step {step} of the selected preference is not a join preference"
            ))
        })?;
        let from_name = &catalog.relation(jp.from.rel).attributes[jp.from.idx as usize].name;
        let to_rel = catalog.relation(jp.to.rel);
        let to_name = &to_rel.attributes[jp.to.idx as usize].name;
        let alias = format!("{alias_prefix}{step}");
        select.from.push(TableRef::aliased(to_rel.name.clone(), alias.clone()));
        let cond = builder::eq(builder::col(prev, from_name), builder::col(&alias, to_name));
        merge_filter(select, cond);
        prev = alias;
    }
    Ok(prev)
}

/// ANDs a predicate into a select's WHERE clause.
pub fn merge_filter(select: &mut Select, expr: Expr) {
    select.where_clause = match select.where_clause.take() {
        Some(w) => Some(w.and(expr)),
        None => Some(expr),
    };
}

/// The degree expression for a satisfaction (presence-form) sub-query:
/// a constant, or the elastic UDF applied to the condition attribute.
pub fn satisfaction_degree_expr(
    catalog: &Catalog,
    profile: &Profile,
    sp: &SelectedPreference,
    info: &PrefQueryInfo,
    cond_binding: &str,
) -> Expr {
    match &info.elastic_udf {
        Some(udf) => {
            let sel = sp.sel(profile);
            let attr_name = &catalog.relation(sel.attr.rel).attributes[sel.attr.idx as usize].name;
            builder::func(udf.clone(), vec![builder::col(cond_binding, attr_name)])
        }
        None => builder::float(info.d_plus),
    }
}

/// The degree expression for a failure (absence-query) sub-query.
pub fn failure_degree_expr(
    catalog: &Catalog,
    profile: &Profile,
    sp: &SelectedPreference,
    info: &PrefQueryInfo,
    cond_binding: &str,
) -> Expr {
    match &info.elastic_neg_udf {
        Some(udf) => {
            let sel = sp.sel(profile);
            let attr_name = &catalog.relation(sel.attr.rel).attributes[sel.attr.idx as usize].name;
            builder::func(udf.clone(), vec![builder::col(cond_binding, attr_name)])
        }
        None => builder::float(info.d_minus),
    }
}

/// Builds the satisfaction-region sub-select for a preference:
/// the initial query extended with the path joins and the satisfaction
/// condition (or, for 1–n absence, a `NOT IN` exclusion). `projection`
/// supplies the output items given the anchor binding and the degree
/// expression.
pub fn satisfaction_select(
    catalog: &Catalog,
    initial: &Select,
    profile: &Profile,
    sp: &SelectedPreference,
    info: &PrefQueryInfo,
    projection: &dyn Fn(&str, Expr) -> Vec<SelectItem>,
) -> Result<Select, PrefError> {
    let sel = sp.sel(profile);
    let attr_name = |a: qp_storage::AttrId| -> String {
        catalog.relation(a.rel).attributes[a.idx as usize].name.clone()
    };
    let anchor = anchor_binding(catalog, initial, sp)?;
    let mut s = initial.clone();
    s.distinct = true;
    match info.kind {
        IntegrationKind::Presence | IntegrationKind::Absence11 => {
            let prefix = format!("qp{}_", info.index);
            let cond_binding = append_path(catalog, &mut s, profile, sp, &prefix)?;
            let cond = sel.satisfaction_expr(&cond_binding, &attr_name(sel.attr));
            merge_filter(&mut s, cond);
            let degree = satisfaction_degree_expr(catalog, profile, sp, info, &cond_binding);
            s.items = projection(&anchor, degree);
        }
        IntegrationKind::Absence1N => {
            // inner: anchor rowids related to the disliked values
            let anchor_rel = catalog.relation(sp.anchor);
            let inner_alias = format!("qpx{}", info.index);
            let mut inner = Select {
                distinct: false,
                items: vec![builder::item(builder::col(&inner_alias, "rowid"))],
                from: vec![TableRef::aliased(anchor_rel.name.clone(), inner_alias.clone())],
                where_clause: None,
                group_by: vec![],
                having: None,
            };
            // rebuild the path against the inner anchor
            let inner_sp = SelectedPreference {
                anchor: sp.anchor,
                joins: sp.joins.clone(),
                selection: sp.selection,
                join_degree: sp.join_degree,
                criticality: sp.criticality,
            };
            // append_path resolves the anchor by relation id; the inner
            // select has exactly one matching entry
            let prefix = format!("qpi{}_", info.index);
            let cond_binding = append_path(catalog, &mut inner, profile, &inner_sp, &prefix)?;
            let cond = sel.failure_expr(&cond_binding, &attr_name(sel.attr));
            merge_filter(&mut inner, cond);
            let not_in = builder::not_in_subquery(
                builder::col(&anchor, "rowid"),
                Query::from_select(inner),
            );
            merge_filter(&mut s, not_in);
            let degree = builder::float(info.d_plus);
            s.items = projection(&anchor, degree);
        }
    }
    Ok(s)
}

/// Builds the failure-region ("absence query") sub-select used by PPA for
/// 1–n absence preferences: tuples returned *fail* the preference.
pub fn failure_select(
    catalog: &Catalog,
    initial: &Select,
    profile: &Profile,
    sp: &SelectedPreference,
    info: &PrefQueryInfo,
    projection: &dyn Fn(&str, Expr) -> Vec<SelectItem>,
) -> Result<Select, PrefError> {
    let sel = sp.sel(profile);
    let anchor = anchor_binding(catalog, initial, sp)?;
    let mut s = initial.clone();
    s.distinct = true;
    let prefix = format!("qpf{}_", info.index);
    let cond_binding = append_path(catalog, &mut s, profile, sp, &prefix)?;
    let attr_name = &catalog.relation(sel.attr.rel).attributes[sel.attr.idx as usize].name;
    let cond = sel.failure_expr(&cond_binding, attr_name);
    merge_filter(&mut s, cond);
    let degree = failure_degree_expr(catalog, profile, sp, info, &cond_binding);
    s.items = projection(&anchor, degree);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::graph::PersonalizationGraph;
    use crate::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
    use qp_sql::parse_query;
    use qp_storage::{Attribute, DataType, Database};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
                Attribute::new("duration", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        db.create_relation(
            "DIRECTED",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "DIRECTOR",
            vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
            &["did"],
        )
        .unwrap();
        for i in 0..5 {
            db.insert_by_name(
                "MOVIE",
                vec![
                    Value::Int(i),
                    Value::str(format!("m{i}")),
                    Value::Int(1975 + i),
                    Value::Int(90 + 10 * (i % 4)),
                ],
            )
            .unwrap();
        }
        db
    }

    fn profile(db: &Database) -> Profile {
        Profile::parse(
            db.catalog(),
            "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
             doi(MOVIE.year < 1980) = (-0.7, 0)\n\
             doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
             doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
             doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
             doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
        )
        .unwrap()
    }

    fn selected(db: &Database, p: &Profile) -> Vec<SelectedPreference> {
        let g = PersonalizationGraph::build(p);
        let q = QueryContext::from_query(
            db.catalog(),
            &parse_query("select title from MOVIE").unwrap(),
        )
        .unwrap();
        fakecrit(&g, &q, SelectionCriterion::TopK(10)).unwrap()
    }

    #[test]
    fn classification_matches_example6() {
        let db = db();
        let p = profile(&db);
        let mut engine = Engine::new();
        let sel = selected(&db, &p);
        let infos = classify(&db, &mut engine, &p, &sel);
        // find by description
        let by_desc: Vec<(String, IntegrationKind)> = sel
            .iter()
            .zip(&infos)
            .map(|(s, i)| (s.describe(&p, db.catalog()), i.kind))
            .collect();
        let find = |needle: &str| {
            by_desc
                .iter()
                .find(|(d, _)| d.contains(needle))
                .unwrap_or_else(|| panic!("{needle} not selected: {by_desc:?}"))
                .1
        };
        // P1 (W. Allen via joins): presence
        assert_eq!(find("W. Allen"), IntegrationKind::Presence);
        // P2 (year < 1980 dislike, same relation): 1-1 absence
        assert_eq!(find("year<1980"), IntegrationKind::Absence11);
        // P5 (musical dislike via 1-n join): 1-n absence
        assert_eq!(find("musical"), IntegrationKind::Absence1N);
    }

    #[test]
    fn presence_subquery_matches_paper_q1() {
        let db = db();
        let p = profile(&db);
        let mut engine = Engine::new();
        let sel = selected(&db, &p);
        let infos = classify(&db, &mut engine, &p, &sel);
        let initial = parse_query("select title from MOVIE").unwrap();
        let i = sel
            .iter()
            .position(|s| s.describe(&p, db.catalog()).contains("W. Allen"))
            .unwrap();
        let s = satisfaction_select(
            db.catalog(),
            initial.selects()[0],
            &p,
            &sel[i],
            &infos[i],
            &|_anchor, degree| {
                vec![
                    builder::item(builder::bare_col("title")),
                    builder::item_as(degree, "degree"),
                ]
            },
        )
        .unwrap();
        let sql = s.to_string();
        assert!(sql.contains("DIRECTED"), "{sql}");
        assert!(sql.contains("DIRECTOR"), "{sql}");
        assert!(sql.contains("= 'W. Allen'"), "{sql}");
        assert!(sql.contains("0.72"), "{sql}");
        // executes without error
        let rs = engine.execute(&db, &Query::from_select(s)).unwrap();
        assert_eq!(rs.columns, vec!["title", "degree"]);
    }

    #[test]
    fn absence11_subquery_negates_operator() {
        let db = db();
        let p = profile(&db);
        let mut engine = Engine::new();
        let sel = selected(&db, &p);
        let infos = classify(&db, &mut engine, &p, &sel);
        let initial = parse_query("select title from MOVIE").unwrap();
        let i = sel
            .iter()
            .position(|s| s.describe(&p, db.catalog()).contains("year<1980"))
            .unwrap();
        let s = satisfaction_select(
            db.catalog(),
            initial.selects()[0],
            &p,
            &sel[i],
            &infos[i],
            &|_anchor, degree| {
                vec![builder::item(builder::bare_col("title")), builder::item_as(degree, "degree")]
            },
        )
        .unwrap();
        let sql = s.to_string();
        assert!(sql.contains(">= 1980"), "{sql}");
        // degree of satisfying the absence of (year < 1980) is d⁺ = 0
        assert!(sql.contains("0.0"), "{sql}");
        let rs = engine.execute(&db, &Query::from_select(s)).unwrap();
        // movies from 1980 onwards: 1980, 1981 ... mids 5? (1975+i, i<5) → 1980, 1979...
        assert_eq!(rs.len(), 0); // years 1975..1979 — none >= 1980
    }

    #[test]
    fn absence1n_subquery_uses_not_in() {
        let db = db();
        let p = profile(&db);
        let mut engine = Engine::new();
        let sel = selected(&db, &p);
        let infos = classify(&db, &mut engine, &p, &sel);
        let initial = parse_query("select title from MOVIE").unwrap();
        let i = sel
            .iter()
            .position(|s| s.describe(&p, db.catalog()).contains("musical"))
            .unwrap();
        let s = satisfaction_select(
            db.catalog(),
            initial.selects()[0],
            &p,
            &sel[i],
            &infos[i],
            &|_anchor, degree| {
                vec![builder::item(builder::bare_col("title")), builder::item_as(degree, "degree")]
            },
        )
        .unwrap();
        let sql = s.to_string();
        assert!(sql.contains("NOT IN (SELECT"), "{sql}");
        assert!(sql.contains("'musical'"), "{sql}");
        // degree of satisfying "no musical" is 0.7 · 0.8 (join degree)
        assert!((infos[i].d_plus - 0.56).abs() < 1e-12);
        let rs = engine.execute(&db, &Query::from_select(s)).unwrap();
        assert_eq!(rs.len(), 5); // no GENRE rows at all → nothing excluded
    }

    #[test]
    fn selectivity_ordering_inputs() {
        let db = db();
        let p = profile(&db);
        let mut engine = Engine::new();
        let sel = selected(&db, &p);
        let infos = classify(&db, &mut engine, &p, &sel);
        for info in &infos {
            assert!((0.0..=1.0).contains(&info.sat_selectivity));
            assert!((0.0..=1.0).contains(&info.fail_selectivity));
        }
    }
}
