//! Context-aware personalization (§1, §7).
//!
//! "Parameters K and L can be specified directly by the user or derived
//! based on various criteria on the query context, such as user location,
//! time, device" — and the conclusions list "combining personal
//! preferences with other aspects of a query's context" as ongoing work.
//!
//! A [`ContextualProfile`] is a base profile plus overlay rules: when the
//! current [`Context`]'s facets match a rule, the rule's extra
//! preferences join the profile and its degree multiplier re-weights the
//! base ones (evenings might amplify cinema-going preferences, a work
//! device might mute them). [`suggest_options`] derives K and L from the
//! context the way the paper sketches: small screens get fewer, stricter
//! results.

use std::collections::HashMap;

use crate::doi::Doi;
use crate::error::PrefError;
use crate::personalize::{AnswerAlgorithm, PersonalizationOptions, SelectionAlgorithm};
use crate::preference::Preference;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::SelectionCriterion;

/// The query context: free-form facets like `time = evening`,
/// `device = mobile`, `location = downtown`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Context {
    facets: HashMap<String, String>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Sets a facet (builder style).
    pub fn with(mut self, facet: impl Into<String>, value: impl Into<String>) -> Self {
        self.facets.insert(facet.into().to_ascii_lowercase(), value.into().to_ascii_lowercase());
        self
    }

    /// Reads a facet.
    pub fn get(&self, facet: &str) -> Option<&str> {
        self.facets.get(&facet.to_ascii_lowercase()).map(String::as_str)
    }

    /// Whether the facet has the given value (case-insensitive).
    pub fn matches(&self, facet: &str, value: &str) -> bool {
        self.get(facet).is_some_and(|v| v.eq_ignore_ascii_case(value))
    }
}

/// One context rule: extra preferences and a degree multiplier applied
/// when a facet matches.
#[derive(Debug, Clone)]
pub struct ContextRule {
    /// Facet name to test.
    pub facet: String,
    /// Facet value required.
    pub value: String,
    /// Preferences added while the rule is active.
    pub overlay: Profile,
    /// Multiplier applied to the *base* profile's selection degrees while
    /// the rule is active (1.0 = unchanged; 0 silences them). Clamped to
    /// `[0, 1]` so composed dois stay valid.
    pub base_weight: f64,
}

/// A profile plus its context rules.
#[derive(Debug, Clone)]
pub struct ContextualProfile {
    /// The always-active preferences.
    pub base: Profile,
    rules: Vec<ContextRule>,
}

impl ContextualProfile {
    /// Wraps a base profile.
    pub fn new(base: Profile) -> Self {
        ContextualProfile { base, rules: Vec::new() }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: ContextRule) -> Result<(), PrefError> {
        if !(0.0..=1.0).contains(&rule.base_weight) || !rule.base_weight.is_finite() {
            return Err(PrefError::DegreeOutOfRange(rule.base_weight));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Resolves the effective profile under a context: matching rules'
    /// overlays are appended and the strongest base re-weighting applies
    /// (the *minimum* matching weight — muting wins over neutrality).
    pub fn resolve(&self, ctx: &Context) -> Profile {
        let weight = self
            .rules
            .iter()
            .filter(|r| ctx.matches(&r.facet, &r.value))
            .map(|r| r.base_weight)
            .fold(1.0_f64, f64::min);
        let mut out = Profile::new();
        for (_, pref) in self.base.iter() {
            match pref {
                Preference::Selection(s) if weight < 1.0 => {
                    let scaled = s.doi.scaled(weight);
                    // a fully muted preference (both degrees 0) is dropped,
                    // matching the model's rule that indifference is not
                    // stored
                    if let Ok(doi) = Doi::new(scaled.on_true.clone(), scaled.on_false.clone()) {
                        let mut s = s.clone();
                        s.doi = doi;
                        out.push(Preference::Selection(s));
                    }
                }
                other => {
                    out.push(other.clone());
                }
            }
        }
        for rule in &self.rules {
            if ctx.matches(&rule.facet, &rule.value) {
                for (_, pref) in rule.overlay.iter() {
                    out.push(pref.clone());
                }
            }
        }
        out
    }
}

/// Derives personalization parameters from the context, per the paper's
/// sketch: a phone gets a short, strict answer (small K, higher L); a
/// desktop browsing session gets the default breadth; an explicit
/// "best-only" intent lowers K via a criticality threshold.
pub fn suggest_options(ctx: &Context) -> PersonalizationOptions {
    let (criterion, l) = if ctx.matches("device", "mobile") {
        (SelectionCriterion::TopK(5), 2)
    } else if ctx.matches("device", "tv") {
        (SelectionCriterion::TopK(8), 2)
    } else {
        (SelectionCriterion::TopK(10), 2)
    };
    let l = if ctx.matches("intent", "quick") { l.max(3) } else { l };
    PersonalizationOptions {
        criterion,
        l,
        ranking: Ranking::default(),
        algorithm: AnswerAlgorithm::Ppa,
        selection: SelectionAlgorithm::FakeCrit,
        fallback_to_original: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::CompareOp;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "THEATRE",
            vec![
                Attribute::new("tid", DataType::Int),
                Attribute::new("region", DataType::Text),
            ],
            &["tid"],
        )
        .unwrap();
        c.add_relation(
            "MOVIE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("year", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        c
    }

    fn base_profile(c: &Catalog) -> Profile {
        let mut p = Profile::new();
        p.add_selection(c, "MOVIE", "year", CompareOp::Ge, Value::Int(1990), Doi::presence(0.8).unwrap())
            .unwrap();
        p
    }

    #[test]
    fn facets_case_insensitive() {
        let ctx = Context::new().with("Device", "Mobile");
        assert!(ctx.matches("device", "MOBILE"));
        assert_eq!(ctx.get("DEVICE"), Some("mobile"));
        assert!(!ctx.matches("device", "desktop"));
        assert!(!ctx.matches("location", "downtown"));
    }

    #[test]
    fn overlay_applies_only_when_matching() {
        let c = catalog();
        let mut overlay = Profile::new();
        overlay
            .add_selection(&c, "THEATRE", "region", CompareOp::Eq, "downtown", Doi::presence(0.9).unwrap())
            .unwrap();
        let mut cp = ContextualProfile::new(base_profile(&c));
        cp.add_rule(ContextRule {
            facet: "time".into(),
            value: "evening".into(),
            overlay,
            base_weight: 1.0,
        })
        .unwrap();

        let morning = cp.resolve(&Context::new().with("time", "morning"));
        assert_eq!(morning.selections().count(), 1);
        let evening = cp.resolve(&Context::new().with("time", "evening"));
        assert_eq!(evening.selections().count(), 2);
    }

    #[test]
    fn base_weight_scales_degrees() {
        let c = catalog();
        let mut cp = ContextualProfile::new(base_profile(&c));
        cp.add_rule(ContextRule {
            facet: "device".into(),
            value: "work".into(),
            overlay: Profile::new(),
            base_weight: 0.5,
        })
        .unwrap();
        let at_work = cp.resolve(&Context::new().with("device", "work"));
        let (_, s) = at_work.selections().next().unwrap();
        assert!((s.doi.d_plus_peak() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_mute_drops_preferences() {
        let c = catalog();
        let mut cp = ContextualProfile::new(base_profile(&c));
        cp.add_rule(ContextRule {
            facet: "mode".into(),
            value: "incognito".into(),
            overlay: Profile::new(),
            base_weight: 0.0,
        })
        .unwrap();
        let muted = cp.resolve(&Context::new().with("mode", "incognito"));
        assert_eq!(muted.selections().count(), 0);
    }

    #[test]
    fn strongest_mute_wins() {
        let c = catalog();
        let mut cp = ContextualProfile::new(base_profile(&c));
        for (facet, value, w) in [("a", "1", 0.8), ("b", "2", 0.25)] {
            cp.add_rule(ContextRule {
                facet: facet.into(),
                value: value.into(),
                overlay: Profile::new(),
                base_weight: w,
            })
            .unwrap();
        }
        let both = cp.resolve(&Context::new().with("a", "1").with("b", "2"));
        let (_, s) = both.selections().next().unwrap();
        assert!((s.doi.d_plus_peak() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_weight_rejected() {
        let c = catalog();
        let mut cp = ContextualProfile::new(base_profile(&c));
        let err = cp.add_rule(ContextRule {
            facet: "x".into(),
            value: "y".into(),
            overlay: Profile::new(),
            base_weight: 1.5,
        });
        assert!(err.is_err());
    }

    #[test]
    fn suggested_options_shrink_on_mobile() {
        let mobile = suggest_options(&Context::new().with("device", "mobile"));
        let desktop = suggest_options(&Context::new());
        assert!(mobile.criterion.k_limit().unwrap() < desktop.criterion.k_limit().unwrap());
        let quick = suggest_options(&Context::new().with("device", "mobile").with("intent", "quick"));
        assert!(quick.l > mobile.l);
    }
}
