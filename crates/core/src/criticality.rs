//! Degree of criticality and fake criticality (§3.4, §4.1).
//!
//! The degree of criticality of an atomic preference is `c = d₀⁺ + |d₀⁻|`
//! (formula 7). Along a path, join degrees multiply; the criticality of an
//! implicit *join* path is the product of its join degrees, and of an
//! implicit *selection* the product times the terminal selection's
//! criticality. Because a selection's criticality may reach 2, an implicit
//! selection can be up to twice as critical as its longest proper join
//! prefix: `cS ≤ 2 · cJ` (formula 8) — which breaks the monotonicity a
//! plain best-first traversal needs.
//!
//! The *fake criticality* `fc` repairs this: selections carry `fc = 1`;
//! each join edge carries the maximum over the edges that can follow it of
//! their criticality — doubled for join followers, per formula 8. A
//! best-first traversal on `c · fc` then never dequeues an implicit
//! selection out of order (`c · fc` is an upper bound on the criticality
//! of every completion of the path).

use std::collections::HashMap;

use qp_storage::AttrId;

use crate::preference::{PrefId, Preference};
use crate::profile::Profile;

/// Criticality of an implicit selection preference: the path's join-degree
/// product times the terminal selection's criticality.
pub fn implicit_selection_criticality(join_degree_product: f64, selection_criticality: f64) -> f64 {
    join_degree_product * selection_criticality
}

/// Computes the fake criticality of every join preference in the profile.
///
/// For join preference `j` ending at relation `R`:
/// `fc(j) = max over preferences p composable at R of
///          { c(p) if p is a selection, 2·c(p) if p is a join }`,
/// and 0 when nothing is composable (expanding `j` can never complete into
/// an implicit selection, so its paths are dead ends).
///
/// Both creation and maintenance are cheap: `fc` depends only on the
/// *immediately following* edges, so adding or re-weighting one preference
/// requires recomputing `fc` only for join edges pointing at its relation.
pub fn compute_fake_criticalities(profile: &Profile) -> HashMap<PrefId, f64> {
    let mut fc = HashMap::new();
    for (id, pref) in profile.iter() {
        if let Preference::Join(j) = pref {
            fc.insert(id, fake_criticality_of_join(profile, j.to));
        }
    }
    fc
}

/// `fc` for a join edge ending at `to`'s relation (see
/// [`compute_fake_criticalities`]).
pub fn fake_criticality_of_join(profile: &Profile, to: AttrId) -> f64 {
    let rel = to.rel;
    let mut best: f64 = 0.0;
    for (_, pref) in profile.iter() {
        match pref {
            Preference::Selection(s) if s.attr.rel == rel => {
                best = best.max(s.criticality());
            }
            Preference::Join(j) if j.from.rel == rel => {
                best = best.max(2.0 * j.criticality());
            }
            _ => {}
        }
    }
    best
}

/// The formula-8 bound: an implicit selection extending a join prefix of
/// criticality `c_j` has criticality at most `2 · c_j`.
pub fn upper_bound_from_join(c_j: f64) -> f64 {
    2.0 * c_j
}

/// Incrementally repairs the fake-criticality labels after one preference
/// was added, removed, or re-weighted.
///
/// This is the cheapness claim of §4.1 made concrete: `fc` depends only on
/// the *immediately following* edges, so a change to preference `changed`
/// (an edge at relation `R` — the attribute's relation for a selection,
/// the source relation for a join) can only affect the labels of join
/// edges *pointing at* `R`. Everything else is untouched. Contrast with
/// the rejected alternative the paper discusses — tagging each join with
/// the true maximum downstream criticality — where "all join edges that
/// expand to paths including this edge must be updated".
///
/// `changed_rel` is that relation; pass the join's former source relation
/// when the change was a deletion. The map is updated in place.
pub fn update_fake_criticalities(
    profile: &Profile,
    changed_rel: qp_storage::RelId,
    fc: &mut HashMap<PrefId, f64>,
) {
    // join edges ending at changed_rel need their label recomputed;
    // labels of joins for which the changed edge is deeper than one hop
    // are unaffected by construction
    fc.retain(|id, _| profile.get(*id).as_join().is_some());
    for (id, pref) in profile.iter() {
        if let Preference::Join(j) = pref {
            if j.to.rel == changed_rel || !fc.contains_key(&id) {
                fc.insert(id, fake_criticality_of_join(profile, j.to));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "A",
            vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
            &["id"],
        )
        .unwrap();
        c.add_relation(
            "B",
            vec![Attribute::new("id", DataType::Int), Attribute::new("y", DataType::Int)],
            &["id"],
        )
        .unwrap();
        c.add_relation(
            "C",
            vec![Attribute::new("id", DataType::Int), Attribute::new("z", DataType::Int)],
            &["id"],
        )
        .unwrap();
        c
    }

    #[test]
    fn fc_of_terminal_join_is_zero() {
        let c = catalog();
        let mut p = Profile::new();
        let j = p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        let fc = compute_fake_criticalities(&p);
        assert_eq!(fc[&j], 0.0);
    }

    #[test]
    fn fc_takes_max_selection() {
        let c = catalog();
        let mut p = Profile::new();
        let j = p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        p.add_selection(&c, "B", "y", CompareOp::Eq, Value::Int(1), Doi::presence(0.4).unwrap())
            .unwrap();
        p.add_selection(&c, "B", "y", CompareOp::Lt, Value::Int(9), Doi::new(0.6, -0.3).unwrap())
            .unwrap();
        let fc = compute_fake_criticalities(&p);
        assert!((fc[&j] - 0.9).abs() < 1e-12); // 0.6 + 0.3
    }

    #[test]
    fn fc_doubles_join_followers() {
        let c = catalog();
        let mut p = Profile::new();
        let j1 = p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        let j2 = p.add_join(&c, ("B", "id"), ("C", "id"), 0.6).unwrap();
        p.add_selection(&c, "B", "y", CompareOp::Eq, Value::Int(1), Doi::presence(0.5).unwrap())
            .unwrap();
        let fc = compute_fake_criticalities(&p);
        // follower of j1 at B: selection c=0.5 vs join 2·0.6=1.2 → 1.2
        assert!((fc[&j1] - 1.2).abs() < 1e-12);
        assert_eq!(fc[&j2], 0.0);
    }

    #[test]
    fn c_times_fc_upper_bounds_descendants() {
        // Figure 4 scenario: c·fc at a join must dominate the criticality
        // of any selection completing it.
        let c = catalog();
        let mut p = Profile::new();
        let j1 = p.add_join(&c, ("A", "id"), ("B", "id"), 0.8).unwrap();
        p.add_join(&c, ("B", "id"), ("C", "id"), 0.7).unwrap();
        // highly critical selection two hops away
        p.add_selection(&c, "C", "z", CompareOp::Eq, Value::Int(1), Doi::new(0.9, -0.9).unwrap())
            .unwrap();
        let fc = compute_fake_criticalities(&p);
        let c_j1 = 0.8;
        let bound = c_j1 * fc[&j1];
        // actual: 0.8 · 0.7 · 1.8 = 1.008
        let actual = implicit_selection_criticality(0.8 * 0.7, 1.8);
        assert!(bound >= actual, "bound {bound} < actual {actual}");
    }

    #[test]
    fn formula8_bound() {
        assert_eq!(upper_bound_from_join(0.9), 1.8);
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        let c = catalog();
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        p.add_join(&c, ("B", "id"), ("C", "id"), 0.6).unwrap();
        p.add_selection(&c, "B", "y", CompareOp::Eq, Value::Int(1), Doi::presence(0.5).unwrap())
            .unwrap();
        let mut fc = compute_fake_criticalities(&p);

        // add a strong selection on C: only joins ending at C need repair
        p.add_selection(&c, "C", "z", CompareOp::Eq, Value::Int(1), Doi::new(0.9, -0.9).unwrap())
            .unwrap();
        let c_rel = c.relation_by_name("C").unwrap().id;
        update_fake_criticalities(&p, c_rel, &mut fc);
        assert_eq!(fc, compute_fake_criticalities(&p));

        // add a new join from C onward: labels of joins into C change too
        p.add_join(&c, ("C", "id"), ("A", "id"), 0.8).unwrap();
        update_fake_criticalities(&p, c_rel, &mut fc);
        assert_eq!(fc, compute_fake_criticalities(&p));
    }

    #[test]
    fn incremental_update_covers_new_joins() {
        let c = catalog();
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        let mut fc = compute_fake_criticalities(&p);
        // brand-new join edge gets a label even though its target relation
        // differs from the change site
        p.add_join(&c, ("B", "id"), ("C", "id"), 0.7).unwrap();
        let b_rel = c.relation_by_name("B").unwrap().id;
        update_fake_criticalities(&p, b_rel, &mut fc);
        assert_eq!(fc, compute_fake_criticalities(&p));
    }
}
