//! Degradation reports: what was cut when a personalization run hit a
//! guardrail.
//!
//! The PPA algorithm is progressive by construction, which makes it
//! naturally *degradable*: when a [`qp_exec::QueryGuard`] trips — or a
//! fault is injected mid-phase — the run stops advancing, emits every
//! buffered tuple whose degree of interest still clears the MEDI bound of
//! the phase it reached, and returns `Ok` with the partial answer plus a
//! [`Degradation`] describing the cut. Because the emission bound is the
//! same one a complete run would have used at that point, the partial
//! answer is always a *prefix* of the complete answer: no returned tuple
//! ranks below one that was omitted.
//!
//! SPA, being a single statement, cannot return a partial answer; under a
//! tripped guard it fails outright, and
//! [`crate::Personalizer`] (with
//! [`crate::PersonalizationOptions::fallback_to_original`]) degrades by
//! executing the unpersonalized query instead, recording a
//! [`DegradeEvent::Fallback`].

use std::fmt;

use qp_exec::{ExecError, ResourceKind};

/// Why a run was cut short.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeCause {
    /// The wall-clock deadline passed (limit in milliseconds).
    Deadline(u64),
    /// The result-row budget was spent.
    OutputBudget(u64),
    /// The operator-intermediate-row budget was spent.
    IntermediateBudget(u64),
    /// The cancellation token was flipped.
    Cancelled,
    /// An injected failpoint fired.
    Fault(String),
    /// A worker thread panicked; the unwind was caught at the chunk
    /// boundary and the run degraded instead of the process dying.
    WorkerPanic(String),
    /// Any other execution error encountered mid-run.
    Exec(String),
}

impl DegradeCause {
    /// Classifies an execution error.
    pub fn from_exec(e: &ExecError) -> Self {
        match e {
            ExecError::ResourceExhausted { resource: ResourceKind::Deadline, limit } => {
                DegradeCause::Deadline(*limit)
            }
            ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit } => {
                DegradeCause::OutputBudget(*limit)
            }
            ExecError::ResourceExhausted { resource: ResourceKind::IntermediateRows, limit } => {
                DegradeCause::IntermediateBudget(*limit)
            }
            ExecError::Cancelled => DegradeCause::Cancelled,
            ExecError::Fault(msg) => DegradeCause::Fault(msg.clone()),
            ExecError::WorkerPanic { message, .. } => DegradeCause::WorkerPanic(message.clone()),
            other => DegradeCause::Exec(other.to_string()),
        }
    }
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeCause::Deadline(ms) => write!(f, "deadline of {ms} ms passed"),
            DegradeCause::OutputBudget(n) => write!(f, "output budget of {n} rows spent"),
            DegradeCause::IntermediateBudget(n) => {
                write!(f, "intermediate budget of {n} rows spent")
            }
            DegradeCause::Cancelled => write!(f, "cancelled"),
            DegradeCause::Fault(msg) => write!(f, "injected fault: {msg}"),
            DegradeCause::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            DegradeCause::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

/// Which PPA phase a cut happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpaPhase {
    /// Presence query `i` (0-based, in selectivity order).
    Presence(usize),
    /// Absence query `i` (0-based, in selectivity order).
    Absence(usize),
    /// Step 3: enumerating tuples never returned by any absence query.
    Residual,
}

impl fmt::Display for PpaPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpaPhase::Presence(i) => write!(f, "presence query {i}"),
            PpaPhase::Absence(i) => write!(f, "absence query {i}"),
            PpaPhase::Residual => write!(f, "residual enumeration"),
        }
    }
}

/// One degradation that occurred during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeEvent {
    /// PPA stopped progressing at a phase; the answer holds only the
    /// tuples provably ranked at that point.
    PpaCutoff {
        /// Phase the run was in when it stopped.
        phase: PpaPhase,
        /// Why it stopped.
        cause: DegradeCause,
        /// Presence queries never executed.
        presence_unevaluated: usize,
        /// Absence queries never executed.
        absence_unevaluated: usize,
        /// Qualified tuples buffered but below the emission bound —
        /// found, but not provably ranked, so dropped.
        buffered_discarded: usize,
    },
    /// Personalization failed and the unpersonalized query was executed
    /// instead.
    Fallback {
        /// Which stage failed (`"selection"`, `"spa"`, `"ppa"`).
        stage: String,
        /// The error that triggered the fallback.
        error: String,
    },
}

impl fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeEvent::PpaCutoff {
                phase,
                cause,
                presence_unevaluated,
                absence_unevaluated,
                buffered_discarded,
            } => write!(
                f,
                "PPA cut at {phase} ({cause}): {presence_unevaluated} presence + \
                 {absence_unevaluated} absence queries unevaluated, \
                 {buffered_discarded} buffered tuples discarded"
            ),
            DegradeEvent::Fallback { stage, error } => {
                write!(f, "fell back to the unpersonalized query ({stage} failed: {error})")
            }
        }
    }
}

/// Everything that was cut from a personalization run. Empty means the
/// run completed exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// The degradations, in occurrence order.
    pub events: Vec<DegradeEvent>,
}

impl Degradation {
    /// `true` when nothing was cut: the answer is exact.
    pub fn is_complete(&self) -> bool {
        self.events.is_empty()
    }

    /// Records an event.
    pub fn push(&mut self, event: DegradeEvent) {
        self.events.push(event);
    }

    /// `true` when an event signals server-side unhealth: a deadline
    /// trip, an injected fault, a worker panic, an unexpected execution
    /// error, or a fallback substitution. Budget cuts and cancellations
    /// are excluded — they are configured or requested behaviour. This
    /// is the circuit breaker's failure signal
    /// (see [`crate::admission::CircuitBreaker`]).
    pub fn has_fault_signal(&self) -> bool {
        self.events.iter().any(|e| match e {
            DegradeEvent::Fallback { .. } => true,
            DegradeEvent::PpaCutoff { cause, .. } => matches!(
                cause,
                DegradeCause::Deadline(_)
                    | DegradeCause::Fault(_)
                    | DegradeCause::WorkerPanic(_)
                    | DegradeCause::Exec(_)
            ),
        })
    }

    /// A one-line human-readable summary (`"complete"` when empty).
    pub fn summary(&self) -> String {
        if self.is_complete() {
            "complete".to_string()
        } else {
            self.events.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ")
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_classification_round_trips_exec_errors() {
        let cases = [
            (
                ExecError::ResourceExhausted { resource: ResourceKind::Deadline, limit: 5 },
                DegradeCause::Deadline(5),
            ),
            (
                ExecError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 7 },
                DegradeCause::OutputBudget(7),
            ),
            (
                ExecError::ResourceExhausted {
                    resource: ResourceKind::IntermediateRows,
                    limit: 9,
                },
                DegradeCause::IntermediateBudget(9),
            ),
            (ExecError::Cancelled, DegradeCause::Cancelled),
            (ExecError::Fault("x".into()), DegradeCause::Fault("x".into())),
            (
                ExecError::WorkerPanic { morsel: 1, message: "boom".into() },
                DegradeCause::WorkerPanic("boom".into()),
            ),
        ];
        for (err, want) in cases {
            assert_eq!(DegradeCause::from_exec(&err), want);
        }
        assert_eq!(
            DegradeCause::from_exec(&ExecError::UnknownColumn("c".into())),
            DegradeCause::Exec("unknown column `c`".to_string())
        );
    }

    #[test]
    fn summary_reads_well() {
        let mut d = Degradation::default();
        assert!(d.is_complete());
        assert_eq!(d.summary(), "complete");
        d.push(DegradeEvent::PpaCutoff {
            phase: PpaPhase::Presence(2),
            cause: DegradeCause::Deadline(50),
            presence_unevaluated: 1,
            absence_unevaluated: 2,
            buffered_discarded: 3,
        });
        let s = d.summary();
        assert!(s.contains("presence query 2"), "{s}");
        assert!(s.contains("deadline of 50 ms"), "{s}");
        assert!(s.contains("3 buffered"), "{s}");
        assert!(!d.is_complete());
    }

    #[test]
    fn fault_signal_classification() {
        let cut = |cause| DegradeEvent::PpaCutoff {
            phase: PpaPhase::Residual,
            cause,
            presence_unevaluated: 0,
            absence_unevaluated: 0,
            buffered_discarded: 0,
        };
        let signal = |event| Degradation { events: vec![event] }.has_fault_signal();
        assert!(!Degradation::default().has_fault_signal());
        assert!(signal(cut(DegradeCause::Deadline(10))), "deadline trips are unhealth");
        assert!(signal(cut(DegradeCause::Fault("io".into()))));
        assert!(signal(cut(DegradeCause::WorkerPanic("boom".into()))));
        assert!(signal(cut(DegradeCause::Exec("oops".into()))));
        assert!(signal(DegradeEvent::Fallback { stage: "spa".into(), error: "x".into() }));
        assert!(!signal(cut(DegradeCause::OutputBudget(5))), "budget cuts are configured");
        assert!(!signal(cut(DegradeCause::IntermediateBudget(5))));
        assert!(!signal(cut(DegradeCause::Cancelled)), "cancellation is requested");
    }

    #[test]
    fn fallback_event_display() {
        let e = DegradeEvent::Fallback { stage: "spa".into(), error: "query cancelled".into() };
        let s = e.to_string();
        assert!(s.contains("unpersonalized"), "{s}");
        assert!(s.contains("spa failed"), "{s}");
    }
}
