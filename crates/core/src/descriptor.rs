//! Qualitative descriptors for desired results (§2).
//!
//! "An application may use qualitative descriptors for preferences and
//! desired results defined in terms of intervals of degrees of interest.
//! E.g., a 'best' descriptor could map to degrees between 0.9 and 1; then
//! a user could ask for 'best' answers."
//!
//! A [`QualityDescriptor`] names an interval of degrees of interest; it
//! plugs straight into the doi-driven selection of §4.2 (as the desired
//! minimum result doi `dR`) and can also filter an answer post hoc.

use crate::answer::PersonalizedAnswer;
use crate::error::PrefError;
use crate::personalize::SelectionAlgorithm;

/// A qualitative band of degrees of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityDescriptor {
    /// `doi ∈ [0.9, 1]` — the paper's example.
    Best,
    /// `doi ∈ [0.7, 1)` below Best.
    Great,
    /// `doi ∈ [0.4, 0.7)`.
    Good,
    /// `doi ∈ [0.1, 0.4)`.
    Fair,
    /// Anything non-negative.
    Any,
}

impl QualityDescriptor {
    /// All descriptors, strongest first.
    pub const ALL: [QualityDescriptor; 5] = [
        QualityDescriptor::Best,
        QualityDescriptor::Great,
        QualityDescriptor::Good,
        QualityDescriptor::Fair,
        QualityDescriptor::Any,
    ];

    /// The inclusive lower bound of the descriptor's doi interval.
    pub fn min_doi(self) -> f64 {
        match self {
            QualityDescriptor::Best => 0.9,
            QualityDescriptor::Great => 0.7,
            QualityDescriptor::Good => 0.4,
            QualityDescriptor::Fair => 0.1,
            QualityDescriptor::Any => 0.0,
        }
    }

    /// The exclusive upper bound (1.0 inclusive for `Best`).
    pub fn max_doi(self) -> f64 {
        match self {
            QualityDescriptor::Best => 1.0,
            QualityDescriptor::Great => 0.9,
            QualityDescriptor::Good => 0.7,
            QualityDescriptor::Fair => 0.4,
            QualityDescriptor::Any => 1.0,
        }
    }

    /// Parses a descriptor name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, PrefError> {
        match s.to_ascii_lowercase().as_str() {
            "best" => Ok(QualityDescriptor::Best),
            "great" => Ok(QualityDescriptor::Great),
            "good" => Ok(QualityDescriptor::Good),
            "fair" => Ok(QualityDescriptor::Fair),
            "any" => Ok(QualityDescriptor::Any),
            other => Err(PrefError::InvalidCriterion(format!(
                "unknown quality descriptor `{other}`"
            ))),
        }
    }

    /// The descriptor a degree of interest falls into.
    pub fn of(doi: f64) -> Self {
        for d in Self::ALL {
            if doi >= d.min_doi() {
                return d;
            }
        }
        QualityDescriptor::Any
    }

    /// The §4.2 selection configuration that guarantees returned tuples
    /// meet this descriptor: selection driven by the desired result doi.
    pub fn selection_algorithm(self) -> SelectionAlgorithm {
        SelectionAlgorithm::DoiBased { d_r: self.min_doi(), n_estimate: None }
    }

    /// Filters an answer to the tuples inside this descriptor's band.
    pub fn filter(self, answer: &PersonalizedAnswer) -> PersonalizedAnswer {
        PersonalizedAnswer {
            columns: answer.columns.clone(),
            tuples: answer
                .tuples
                .iter()
                .filter(|t| t.doi >= self.min_doi())
                .cloned()
                .collect(),
        }
    }
}

impl std::fmt::Display for QualityDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QualityDescriptor::Best => "best",
            QualityDescriptor::Great => "great",
            QualityDescriptor::Good => "good",
            QualityDescriptor::Fair => "fair",
            QualityDescriptor::Any => "any",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::PersonalizedTuple;

    #[test]
    fn bands_are_contiguous() {
        for w in QualityDescriptor::ALL.windows(2) {
            assert!((w[0].min_doi() - w[1].max_doi()).abs() < 1e-12 || w[1] == QualityDescriptor::Any);
        }
        assert_eq!(QualityDescriptor::Best.min_doi(), 0.9);
    }

    #[test]
    fn classification() {
        assert_eq!(QualityDescriptor::of(0.95), QualityDescriptor::Best);
        assert_eq!(QualityDescriptor::of(0.7), QualityDescriptor::Great);
        assert_eq!(QualityDescriptor::of(0.5), QualityDescriptor::Good);
        assert_eq!(QualityDescriptor::of(0.05), QualityDescriptor::Any);
    }

    #[test]
    fn parse_round_trips() {
        for d in QualityDescriptor::ALL {
            assert_eq!(QualityDescriptor::parse(&d.to_string()).unwrap(), d);
        }
        assert!(QualityDescriptor::parse("mediocre").is_err());
    }

    #[test]
    fn filter_keeps_band() {
        let answer = PersonalizedAnswer {
            columns: vec!["t".into()],
            tuples: [0.95, 0.8, 0.5, 0.2]
                .iter()
                .map(|&doi| PersonalizedTuple {
                    tuple_id: None,
                    row: vec![],
                    doi,
                    satisfied: vec![],
                    failed: vec![],
                })
                .collect(),
        };
        assert_eq!(QualityDescriptor::Best.filter(&answer).len(), 1);
        assert_eq!(QualityDescriptor::Good.filter(&answer).len(), 3);
        assert_eq!(QualityDescriptor::Any.filter(&answer).len(), 4);
    }

    #[test]
    fn selection_algorithm_carries_the_bound() {
        match QualityDescriptor::Best.selection_algorithm() {
            SelectionAlgorithm::DoiBased { d_r, .. } => assert_eq!(d_r, 0.9),
            other => panic!("{other:?}"),
        }
    }
}
