//! Degrees of interest (§3.1, §3.3).
//!
//! A selection preference's doi is the pair `(dT(u), dF(u))`: the user's
//! interest in values *satisfying* the condition being present (`dT`) and
//! in those values being *absent* (`dF`). Each component is either a
//! constant ([`Degree::Exact`]) or an [`ElasticFunction`] of the attribute
//! value ([`Degree::Elastic`]).
//!
//! From §3.3:
//! * the doi in the *satisfaction* of the preference is
//!   `d⁺(u) = max(dT(u), dF(u))`,
//! * the doi in its *failure* is `d⁻(u) = min(dT(u), dF(u))`,
//! * the *degree of criticality* is `c = d₀⁺ + |d₀⁻|` with
//!   `d₀⁺ = max_u d⁺(u)` and `d₀⁻ = min_u d⁻(u)` (formula 7).

use crate::elastic::ElasticFunction;
use crate::error::PrefError;

/// One component of a doi pair: a constant or an elastic function.
#[derive(Debug, Clone, PartialEq)]
pub enum Degree {
    /// A constant degree in `[-1, 1]` (exact preferences).
    Exact(f64),
    /// A value-dependent degree (elastic preferences over numeric
    /// domains).
    Elastic(ElasticFunction),
}

impl Degree {
    /// The degree at a specific attribute value.
    pub fn at(&self, v: f64) -> f64 {
        match self {
            Degree::Exact(d) => *d,
            Degree::Elastic(e) => e.eval(v),
        }
    }

    /// The maximum the degree attains over the domain.
    pub fn max_value(&self) -> f64 {
        match self {
            Degree::Exact(d) => *d,
            Degree::Elastic(e) => e.peak.max(0.0),
        }
    }

    /// The minimum the degree attains over the domain.
    pub fn min_value(&self) -> f64 {
        match self {
            Degree::Exact(d) => *d,
            Degree::Elastic(e) => e.peak.min(0.0),
        }
    }

    /// The peak (signed extremum) of the degree.
    pub fn peak(&self) -> f64 {
        match self {
            Degree::Exact(d) => *d,
            Degree::Elastic(e) => e.peak,
        }
    }

    /// True for [`Degree::Elastic`].
    pub fn is_elastic(&self) -> bool {
        matches!(self, Degree::Elastic(_))
    }

    /// Scales the degree by a factor in `[0, 1]` (implicit-preference
    /// composition multiplies degrees along the path, §3.2).
    pub fn scaled(&self, factor: f64) -> Degree {
        match self {
            Degree::Exact(d) => Degree::Exact(d * factor),
            Degree::Elastic(e) => {
                let mut e = e.clone();
                e.peak *= factor;
                Degree::Elastic(e)
            }
        }
    }

    fn validate(&self) -> Result<(), PrefError> {
        let p = self.peak();
        if !(-1.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(PrefError::DegreeOutOfRange(p));
        }
        Ok(())
    }
}

impl From<f64> for Degree {
    fn from(d: f64) -> Self {
        Degree::Exact(d)
    }
}

/// The degree-of-interest pair of a selection preference.
///
/// ```
/// use qp_core::Doi;
/// // P5 of the paper: "happy if the movie is not musical"
/// let doi = Doi::new(-0.9, 0.7).unwrap();
/// assert!(!doi.is_presence());          // satisfied by the condition failing
/// assert_eq!(doi.d_plus_peak(), 0.7);   // doi in satisfaction
/// assert_eq!(doi.criticality(), 1.6);   // c = d0+ + |d0-| (Example 4)
/// // liking and disliking the same value is rejected:
/// assert!(Doi::new(0.5, 0.5).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Doi {
    /// `dT(u)`: interest in the presence of values satisfying the
    /// condition.
    pub on_true: Degree,
    /// `dF(u)`: interest in the absence of those values (the condition
    /// evaluating to false).
    pub on_false: Degree,
}

impl Doi {
    /// Creates a validated doi pair. Enforces `dT·dF ≤ 0` (a normal user
    /// does not simultaneously like a value's presence *and* its absence,
    /// §3.1) and rejects the fully indifferent pair `(0, 0)`, which the
    /// paper says is never stored.
    pub fn new(on_true: impl Into<Degree>, on_false: impl Into<Degree>) -> Result<Self, PrefError> {
        let on_true = on_true.into();
        let on_false = on_false.into();
        on_true.validate()?;
        on_false.validate()?;
        let (pt, pf) = (on_true.peak(), on_false.peak());
        if pt * pf > 0.0 {
            return Err(PrefError::InconsistentDoi { d_true: pt, d_false: pf });
        }
        if pt == 0.0 && pf == 0.0 {
            return Err(PrefError::IndifferentPreference);
        }
        Ok(Doi { on_true, on_false })
    }

    /// A simple positive presence preference `(d, 0)` — the only type the
    /// earlier model \[16\] captured.
    pub fn presence(d: f64) -> Result<Self, PrefError> {
        Doi::new(d, 0.0)
    }

    /// A simple negative preference `(−d, 0)`.
    pub fn dislike(d: f64) -> Result<Self, PrefError> {
        Doi::new(-d.abs(), 0.0)
    }

    /// The doi in the preference's satisfaction at value `v`:
    /// `d⁺(u) = max(dT(u), dF(u))`. Non-negative under the validity
    /// constraint.
    pub fn d_plus_at(&self, v: f64) -> f64 {
        self.on_true.at(v).max(self.on_false.at(v))
    }

    /// The doi in the preference's failure at value `v`:
    /// `d⁻(u) = min(dT(u), dF(u))`. Non-positive under the validity
    /// constraint.
    pub fn d_minus_at(&self, v: f64) -> f64 {
        self.on_true.at(v).min(self.on_false.at(v))
    }

    /// `d₀⁺ = max_u d⁺(u)`: the satisfaction peak.
    pub fn d_plus_peak(&self) -> f64 {
        self.on_true.max_value().max(self.on_false.max_value()).max(0.0)
    }

    /// `|d₀⁻| = |min_u d⁻(u)|`: the failure peak, as a magnitude.
    pub fn d_minus_peak(&self) -> f64 {
        (-self.on_true.min_value().min(self.on_false.min_value()).min(0.0)).abs()
    }

    /// The degree of criticality `c = d₀⁺ + |d₀⁻|` (formula 7), in
    /// `[0, 2]`.
    pub fn criticality(&self) -> f64 {
        self.d_plus_peak() + self.d_minus_peak()
    }

    /// Whether the preference is *satisfied by the condition holding*
    /// (presence-type: `dT` has the positive side) or by the condition
    /// failing (absence-type).
    pub fn is_presence(&self) -> bool {
        // exactly one side can be positive; ties (one negative, one zero)
        // resolve by where the non-negative side is
        self.on_true.peak() > 0.0 || (self.on_true.peak() == 0.0 && self.on_false.peak() < 0.0)
    }

    /// Whether either component is elastic.
    pub fn is_elastic(&self) -> bool {
        self.on_true.is_elastic() || self.on_false.is_elastic()
    }

    /// Scales both components (implicit-preference composition, §3.2).
    pub fn scaled(&self, factor: f64) -> Doi {
        Doi { on_true: self.on_true.scaled(factor), on_false: self.on_false.scaled(factor) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::ElasticFunction;

    #[test]
    fn paper_example_criticalities() {
        // Example 4: P5 (−0.9, 0.7) → 1.6; P4 (e(0.7), e(−0.5)) → 1.2;
        // P1 (0.8, 0) → 0.8; ordered P5 > P4 > P1.
        let p1 = Doi::new(0.8, 0.0).unwrap();
        let p4 = Doi::new(
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap()),
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, -0.5).unwrap()),
        )
        .unwrap();
        let p5 = Doi::new(-0.9, 0.7).unwrap();
        assert!((p1.criticality() - 0.8).abs() < 1e-12);
        assert!((p4.criticality() - 1.2).abs() < 1e-12);
        assert!((p5.criticality() - 1.6).abs() < 1e-12);
        assert!(p5.criticality() > p4.criticality() && p4.criticality() > p1.criticality());
    }

    #[test]
    fn consistency_constraint() {
        assert!(Doi::new(0.5, 0.5).is_err());
        assert!(Doi::new(-0.5, -0.5).is_err());
        assert!(Doi::new(0.5, -0.5).is_ok());
        assert!(Doi::new(-0.9, 0.7).is_ok());
        assert!(Doi::new(0.8, 0.0).is_ok());
    }

    #[test]
    fn indifferent_not_stored() {
        assert!(matches!(Doi::new(0.0, 0.0), Err(PrefError::IndifferentPreference)));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Doi::new(1.2, 0.0).is_err());
        assert!(Doi::new(0.0, -1.5).is_err());
    }

    #[test]
    fn satisfaction_and_failure_signs() {
        for doi in [
            Doi::new(0.8, 0.0).unwrap(),
            Doi::new(-0.7, 0.0).unwrap(),
            Doi::new(0.7, -0.5).unwrap(),
            Doi::new(-0.9, 0.7).unwrap(),
        ] {
            assert!(doi.d_plus_peak() >= 0.0);
            assert!(doi.d_minus_peak() >= 0.0);
            assert!(doi.criticality() <= 2.0);
        }
    }

    #[test]
    fn presence_vs_absence_classification() {
        assert!(Doi::new(0.8, 0.0).unwrap().is_presence()); // P1
        assert!(!Doi::new(-0.7, 0.0).unwrap().is_presence()); // P3: satisfied by q false
        assert!(Doi::new(0.7, -0.5).unwrap().is_presence()); // P6
        assert!(!Doi::new(-0.9, 0.7).unwrap().is_presence()); // P5
    }

    #[test]
    fn elastic_evaluation() {
        let doi = Doi::new(
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap()),
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, -0.5).unwrap()),
        )
        .unwrap();
        // at the center: full satisfaction
        assert!((doi.d_plus_at(120.0) - 0.7).abs() < 1e-12);
        // half-way out
        assert!((doi.d_plus_at(135.0) - 0.35).abs() < 1e-12);
        // outside the support both components are zero
        assert_eq!(doi.d_plus_at(200.0), 0.0);
        assert_eq!(doi.d_minus_at(135.0), -0.25);
    }

    #[test]
    fn scaling_composes_degrees() {
        let doi = Doi::new(0.8, -0.5).unwrap();
        let scaled = doi.scaled(0.9);
        assert!((scaled.d_plus_peak() - 0.72).abs() < 1e-12);
        assert!((scaled.d_minus_peak() - 0.45).abs() < 1e-12);
        // criticality scales linearly (cS = join_degree · cSel)
        assert!((scaled.criticality() - 0.9 * doi.criticality()).abs() < 1e-12);
    }

    #[test]
    fn helpers() {
        assert!(Doi::presence(0.8).unwrap().is_presence());
        let d = Doi::dislike(0.7).unwrap();
        assert_eq!(d.d_plus_peak(), 0.0);
        assert!((d.d_minus_peak() - 0.7).abs() < 1e-12);
    }
}
