//! Elastic degree-of-interest functions (§3.1, Figure 1).
//!
//! Preferences over numeric domains "may be smoothly continuous over their
//! domain and may be satisfied approximately". An [`ElasticFunction`] is a
//! parametric shape around a center value: it peaks (at `peak`, which may
//! be negative for dislike-shaped functions, Figure 1's right column) and
//! decays to zero at `center ± width`.
//!
//! For query integration, §5 translates elastic preferences "into
//! appropriate range conditions using a set of rules": here the rule is
//! the support interval `[center − width, center + width]` (optionally
//! narrowed to the region where the degree stays above a threshold).

use crate::error::PrefError;

/// The shape of an elastic doi function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElasticShape {
    /// Linear rise and fall (Figure 1a): `peak · (1 − |v − center|/width)`.
    Triangular,
    /// Flat at `peak` within `plateau` of the center, then linear decay to
    /// zero at `width` (Figure 1b).
    Trapezoidal {
        /// Half-width of the flat top; must be `< width`.
        plateau: f64,
    },
    /// Smooth raised-cosine: `peak · (1 + cos(π·|v − center|/width)) / 2`.
    Cosine,
}

/// A parametric elastic doi function.
///
/// ```
/// use qp_core::ElasticFunction;
/// // "duration around 2h": peaks at 120 minutes, fades out by +-30
/// let e = ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap();
/// assert_eq!(e.eval(120.0), 0.7);
/// assert_eq!(e.eval(135.0), 0.35);
/// assert_eq!(e.eval(160.0), 0.0);
/// assert_eq!(e.support(), (90.0, 150.0)); // the BETWEEN range for queries
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticFunction {
    /// The most-preferred value.
    pub center: f64,
    /// Half-width of the support; the function is zero outside
    /// `[center − width, center + width]`.
    pub width: f64,
    /// Degree at the center, in `[-1, 1]`.
    pub peak: f64,
    /// Shape of the decay.
    pub shape: ElasticShape,
}

impl ElasticFunction {
    /// Creates a triangular elastic function (the form the paper's
    /// experiments used).
    pub fn triangular(center: f64, width: f64, peak: f64) -> Result<Self, PrefError> {
        Self::new(center, width, peak, ElasticShape::Triangular)
    }

    /// Creates an elastic function, validating the parameters.
    pub fn new(
        center: f64,
        width: f64,
        peak: f64,
        shape: ElasticShape,
    ) -> Result<Self, PrefError> {
        if width <= 0.0 || !width.is_finite() {
            return Err(PrefError::InvalidElasticWidth(width));
        }
        if !(-1.0..=1.0).contains(&peak) || !peak.is_finite() {
            return Err(PrefError::DegreeOutOfRange(peak));
        }
        if let ElasticShape::Trapezoidal { plateau } = shape {
            if !(0.0..width).contains(&plateau) {
                return Err(PrefError::InvalidElasticWidth(plateau));
            }
        }
        Ok(ElasticFunction { center, width, peak, shape })
    }

    /// Evaluates the function at `v`.
    pub fn eval(&self, v: f64) -> f64 {
        let dist = (v - self.center).abs();
        if dist >= self.width {
            return 0.0;
        }
        let factor = match self.shape {
            ElasticShape::Triangular => 1.0 - dist / self.width,
            ElasticShape::Trapezoidal { plateau } => {
                if dist <= plateau {
                    1.0
                } else {
                    1.0 - (dist - plateau) / (self.width - plateau)
                }
            }
            ElasticShape::Cosine => (1.0 + (std::f64::consts::PI * dist / self.width).cos()) / 2.0,
        };
        self.peak * factor
    }

    /// The interval outside which the function is zero.
    pub fn support(&self) -> (f64, f64) {
        (self.center - self.width, self.center + self.width)
    }

    /// The interval where `|eval(v)| ≥ threshold · |peak|` — the range
    /// condition used when integrating the preference into a query with a
    /// minimum-degree requirement. `threshold` of 0 yields the full
    /// support.
    pub fn range_above(&self, threshold: f64) -> (f64, f64) {
        let t = threshold.clamp(0.0, 1.0);
        if t == 0.0 || self.peak == 0.0 {
            return self.support();
        }
        let dist = match self.shape {
            ElasticShape::Triangular => self.width * (1.0 - t),
            ElasticShape::Trapezoidal { plateau } => plateau + (self.width - plateau) * (1.0 - t),
            ElasticShape::Cosine => {
                // (1 + cos(pi d / w)) / 2 = t  =>  d = w · acos(2t − 1)/pi
                self.width * (2.0 * t - 1.0).acos() / std::f64::consts::PI
            }
        };
        (self.center - dist, self.center + dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_shape() {
        let e = ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap();
        assert!((e.eval(120.0) - 0.7).abs() < 1e-12);
        assert!((e.eval(135.0) - 0.35).abs() < 1e-12);
        assert_eq!(e.eval(150.0), 0.0);
        assert_eq!(e.eval(85.0), 0.0);
        // symmetric
        assert!((e.eval(105.0) - e.eval(135.0)).abs() < 1e-12);
    }

    #[test]
    fn negative_peak() {
        let e = ElasticFunction::triangular(120.0, 30.0, -0.5).unwrap();
        assert!((e.eval(120.0) + 0.5).abs() < 1e-12);
        assert!(e.eval(110.0) < 0.0);
        assert_eq!(e.eval(151.0), 0.0);
    }

    #[test]
    fn trapezoid_plateau() {
        let e =
            ElasticFunction::new(6.0, 2.0, 0.5, ElasticShape::Trapezoidal { plateau: 1.0 }).unwrap();
        assert_eq!(e.eval(6.0), 0.5);
        assert_eq!(e.eval(6.9), 0.5);
        assert!((e.eval(7.5) - 0.25).abs() < 1e-12);
        assert_eq!(e.eval(8.0), 0.0);
    }

    #[test]
    fn cosine_smooth() {
        let e = ElasticFunction::new(0.0, 1.0, 1.0, ElasticShape::Cosine).unwrap();
        assert!((e.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((e.eval(0.5) - 0.5).abs() < 1e-12);
        assert!(e.eval(1.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(ElasticFunction::triangular(0.0, 0.0, 0.5).is_err());
        assert!(ElasticFunction::triangular(0.0, -1.0, 0.5).is_err());
        assert!(ElasticFunction::triangular(0.0, 1.0, 1.5).is_err());
        assert!(ElasticFunction::new(0.0, 1.0, 0.5, ElasticShape::Trapezoidal { plateau: 1.0 })
            .is_err());
    }

    #[test]
    fn support_and_range() {
        let e = ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap();
        assert_eq!(e.support(), (90.0, 150.0));
        assert_eq!(e.range_above(0.0), (90.0, 150.0));
        let (lo, hi) = e.range_above(0.5);
        assert!((lo - 105.0).abs() < 1e-9);
        assert!((hi - 135.0).abs() < 1e-9);
        // degrees at the narrowed bounds meet the threshold
        assert!((e.eval(lo) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn range_above_cosine_consistent() {
        let e = ElasticFunction::new(0.0, 1.0, 0.8, ElasticShape::Cosine).unwrap();
        let (lo, hi) = e.range_above(0.5);
        assert!((e.eval(lo) - 0.4).abs() < 1e-9);
        assert!((e.eval(hi) - 0.4).abs() < 1e-9);
    }
}
