//! Errors of the preference model and personalization algorithms.

use std::fmt;

use qp_exec::ExecError;
use qp_sql::ParseError;
use qp_storage::{DecodeError, PersistError, StorageError};

/// Errors raised while building profiles or personalizing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefError {
    /// A degree of interest was outside `[-1, 1]`.
    DegreeOutOfRange(f64),
    /// The psychological-consistency constraint `dT(u) · dF(u) ≤ 0` (§3.1)
    /// was violated.
    InconsistentDoi {
        /// Peak of the presence degree.
        d_true: f64,
        /// Peak of the absence degree.
        d_false: f64,
    },
    /// A join preference degree was outside `[0, 1]`.
    JoinDegreeOutOfRange(f64),
    /// An elastic preference was declared on a categorical attribute.
    ElasticOnCategorical(String),
    /// An elastic function was declared with a non-positive width.
    InvalidElasticWidth(f64),
    /// Both degrees of a stored preference are zero (indifferent
    /// preferences are not stored, §3.1).
    IndifferentPreference,
    /// A catalog lookup failed.
    Storage(StorageError),
    /// Profile DSL parse error.
    ProfileSyntax {
        /// Line number (1-based).
        line: usize,
        /// Description.
        message: String,
    },
    /// The initial query could not be parsed.
    Sql(ParseError),
    /// Query planning/execution failed.
    Exec(ExecError),
    /// The initial query has a shape personalization cannot handle (e.g.
    /// no FROM relation, or a union).
    UnsupportedQuery(String),
    /// A selection criterion was invalid (e.g. K = 0).
    InvalidCriterion(String),
    /// The admission controller shed the request: the in-flight limit
    /// was reached and the queue wait expired before a permit freed.
    Overloaded {
        /// Requests in flight when the shed decision was made.
        in_flight: usize,
        /// How long the request queued before being shed, in
        /// milliseconds.
        waited_ms: u64,
    },
    /// A `PersonalizeRequest::user(..)` run reached a personalizer with
    /// no [`crate::ProfileStore`] attached.
    NoProfileStore,
    /// The requested user has no profile registered in the store.
    UnknownUser {
        /// The store-assigned user id.
        user: u64,
    },
    /// A stored profile blob failed to decode — corruption, or an
    /// encoding version skew.
    ProfileDecode(DecodeError),
    /// The profile store's durability layer failed: a disk fault on the
    /// segment log / snapshot, a corrupt file at recovery, or a write
    /// refused because the store already degraded to read-only.
    Persist(PersistError),
}

impl fmt::Display for PrefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefError::DegreeOutOfRange(d) => {
                write!(f, "degree of interest {d} outside [-1, 1]")
            }
            PrefError::InconsistentDoi { d_true, d_false } => write!(
                f,
                "inconsistent doi: dT={d_true} and dF={d_false} must not both be positive \
                 (dT·dF ≤ 0)"
            ),
            PrefError::JoinDegreeOutOfRange(d) => {
                write!(f, "join preference degree {d} outside [0, 1]")
            }
            PrefError::ElasticOnCategorical(attr) => {
                write!(f, "elastic preference on categorical attribute `{attr}`")
            }
            PrefError::InvalidElasticWidth(w) => {
                write!(f, "elastic function width {w} must be positive")
            }
            PrefError::IndifferentPreference => {
                write!(f, "indifferent preferences (dT = dF = 0) are not stored")
            }
            PrefError::Storage(e) => write!(f, "{e}"),
            PrefError::ProfileSyntax { line, message } => {
                write!(f, "profile syntax error at line {line}: {message}")
            }
            PrefError::Sql(e) => write!(f, "{e}"),
            PrefError::Exec(e) => write!(f, "{e}"),
            PrefError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            PrefError::InvalidCriterion(msg) => write!(f, "invalid criterion: {msg}"),
            PrefError::Overloaded { in_flight, waited_ms } => write!(
                f,
                "overloaded: request shed after {waited_ms} ms with {in_flight} in flight"
            ),
            PrefError::NoProfileStore => {
                write!(f, "no profile store attached to this personalizer")
            }
            PrefError::UnknownUser { user } => {
                write!(f, "unknown user {user}: no profile registered in the store")
            }
            PrefError::ProfileDecode(e) => write!(f, "stored profile blob corrupt: {e}"),
            PrefError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrefError {}

impl From<StorageError> for PrefError {
    fn from(e: StorageError) -> Self {
        PrefError::Storage(e)
    }
}

impl From<ParseError> for PrefError {
    fn from(e: ParseError) -> Self {
        PrefError::Sql(e)
    }
}

impl From<ExecError> for PrefError {
    fn from(e: ExecError) -> Self {
        PrefError::Exec(e)
    }
}

impl From<DecodeError> for PrefError {
    fn from(e: DecodeError) -> Self {
        PrefError::ProfileDecode(e)
    }
}

impl From<PersistError> for PrefError {
    fn from(e: PersistError) -> Self {
        PrefError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PrefError::DegreeOutOfRange(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = PrefError::InconsistentDoi { d_true: 0.5, d_false: 0.5 };
        assert!(e.to_string().contains("dT·dF"));
    }
}
