//! The personalization graph (§3.1–§3.2).
//!
//! A directed graph extending the database schema graph: relation nodes,
//! attribute nodes, and value nodes, with selection edges (attribute →
//! value) and join edges (attribute → attribute), labelled with degrees of
//! interest. Given the 1–1 mapping between edges and atomic preferences,
//! this struct is an adjacency view over a [`Profile`]: for a relation it
//! answers "which preferences are composable here", which is exactly what
//! the path-building selection algorithms of §4 consume. It also caches
//! the fake-criticality labels of §4.1.

use std::collections::HashMap;

use qp_storage::RelId;

use crate::criticality::compute_fake_criticalities;
use crate::preference::{JoinPreference, PrefId, Preference, SelectionPreference};
use crate::profile::Profile;

/// Adjacency + fake-criticality view over a profile.
#[derive(Debug)]
pub struct PersonalizationGraph<'p> {
    profile: &'p Profile,
    /// Selection preferences grouped by their attribute's relation,
    /// ordered by decreasing criticality.
    sel_by_rel: HashMap<RelId, Vec<PrefId>>,
    /// Join preferences grouped by source relation, ordered by decreasing
    /// `c · fc`.
    join_by_rel: HashMap<RelId, Vec<PrefId>>,
    /// Fake criticality per join preference.
    fake_crit: HashMap<PrefId, f64>,
}

impl<'p> PersonalizationGraph<'p> {
    /// Builds the graph for a profile.
    pub fn build(profile: &'p Profile) -> Self {
        let fake_crit = compute_fake_criticalities(profile);
        let mut sel_by_rel: HashMap<RelId, Vec<PrefId>> = HashMap::new();
        let mut join_by_rel: HashMap<RelId, Vec<PrefId>> = HashMap::new();
        for (id, pref) in profile.iter() {
            match pref {
                Preference::Selection(s) => {
                    sel_by_rel.entry(s.attr.rel).or_default().push(id);
                }
                Preference::Join(j) => {
                    join_by_rel.entry(j.from.rel).or_default().push(id);
                }
            }
        }
        for ids in sel_by_rel.values_mut() {
            ids.sort_by(|a, b| {
                let ca = profile.get(*a).criticality();
                let cb = profile.get(*b).criticality();
                cb.partial_cmp(&ca).unwrap().then(a.cmp(b))
            });
        }
        let fc = &fake_crit;
        for ids in join_by_rel.values_mut() {
            ids.sort_by(|a, b| {
                let ka = profile.get(*a).criticality() * fc.get(a).copied().unwrap_or(0.0);
                let kb = profile.get(*b).criticality() * fc.get(b).copied().unwrap_or(0.0);
                kb.partial_cmp(&ka).unwrap().then(a.cmp(b))
            });
        }
        PersonalizationGraph { profile, sel_by_rel, join_by_rel, fake_crit }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &'p Profile {
        self.profile
    }

    /// Selection preferences on attributes of `rel`, most critical first.
    pub fn selections_at(&self, rel: RelId) -> &[PrefId] {
        self.sel_by_rel.get(&rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Join preferences leaving `rel`, highest `c · fc` first.
    pub fn joins_at(&self, rel: RelId) -> &[PrefId] {
        self.join_by_rel.get(&rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fake criticality of a preference: 1 for selections (a selection
    /// path's `c · fc` *is* its criticality), the §4.1 label for joins.
    pub fn fake_criticality(&self, id: PrefId) -> f64 {
        match self.profile.get(id) {
            Preference::Selection(_) => 1.0,
            Preference::Join(_) => self.fake_crit.get(&id).copied().unwrap_or(0.0),
        }
    }

    /// The selection preference behind an id (panics on a join id).
    pub fn selection(&self, id: PrefId) -> &'p SelectionPreference {
        self.profile.get(id).as_selection().expect("selection preference id")
    }

    /// The join preference behind an id (panics on a selection id).
    pub fn join(&self, id: PrefId) -> &'p JoinPreference {
        self.profile.get(id).as_join().expect("join preference id")
    }

    /// Number of value nodes (one per selection preference).
    pub fn value_node_count(&self) -> usize {
        self.sel_by_rel.values().map(Vec::len).sum()
    }

    /// Number of edges (atomic preferences).
    pub fn edge_count(&self) -> usize {
        self.profile.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, attrs) in [
            ("MOVIE", vec!["mid", "year"]),
            ("GENRE", vec!["mid", "genre"]),
            ("PLAY", vec!["tid", "mid"]),
        ] {
            let attrs: Vec<Attribute> =
                attrs.into_iter().map(|a| Attribute::new(a, DataType::Int)).collect();
            c.add_relation(name, attrs, &[]).unwrap();
        }
        c
    }

    fn rel(c: &Catalog, name: &str) -> RelId {
        c.relation_by_name(name).unwrap().id
    }

    #[test]
    fn adjacency_grouping() {
        let c = catalog();
        let mut p = Profile::new();
        p.add_selection(&c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        p.add_selection(&c, "GENRE", "genre", CompareOp::Eq, Value::Int(1), Doi::presence(0.9).unwrap())
            .unwrap();
        p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        let g = PersonalizationGraph::build(&p);
        assert_eq!(g.selections_at(rel(&c, "MOVIE")).len(), 1);
        assert_eq!(g.selections_at(rel(&c, "GENRE")).len(), 1);
        assert_eq!(g.joins_at(rel(&c, "MOVIE")).len(), 1);
        assert!(g.joins_at(rel(&c, "GENRE")).is_empty());
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.value_node_count(), 2);
    }

    #[test]
    fn selections_sorted_by_criticality() {
        let c = catalog();
        let mut p = Profile::new();
        let weak = p
            .add_selection(&c, "MOVIE", "year", CompareOp::Eq, Value::Int(1), Doi::presence(0.2).unwrap())
            .unwrap();
        let strong = p
            .add_selection(&c, "MOVIE", "year", CompareOp::Eq, Value::Int(2), Doi::new(0.9, -0.9).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        assert_eq!(g.selections_at(rel(&c, "MOVIE")), &[strong, weak]);
    }

    #[test]
    fn fake_criticality_defaults() {
        let c = catalog();
        let mut p = Profile::new();
        let s = p
            .add_selection(&c, "MOVIE", "year", CompareOp::Eq, Value::Int(1), Doi::presence(0.2).unwrap())
            .unwrap();
        let j = p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        let g = PersonalizationGraph::build(&p);
        assert_eq!(g.fake_criticality(s), 1.0);
        assert_eq!(g.fake_criticality(j), 0.0); // nothing composable at GENRE
    }
}
