#![warn(missing_docs)]

//! # qp-core
//!
//! The paper's contribution: a generalized preference model and query
//! personalization algorithms (Koutrika & Ioannidis, ICDE 2005).
//!
//! ## Model (§3)
//!
//! * [`Doi`] — a degree-of-interest pair `(dT, dF)` capturing the three
//!   preference dimensions: *valence* (positive / negative / indifferent),
//!   *concern* (presence / absence), and *elasticity* (exact /
//!   [`ElasticFunction`]).
//! * [`Preference`] — atomic selection preferences (a condition on an
//!   attribute plus its [`Doi`]) and directed atomic join preferences.
//! * [`Profile`] — a user's stored atomic preferences, serializable in the
//!   paper's own `doi(R.A = 'v') = (x, y)` notation (Figure 2).
//! * [`graph::PersonalizationGraph`] — the schema-graph extension over
//!   which *implicit preferences* are composed (degrees multiply along
//!   acyclic paths, §3.2), with *degree of criticality* `c = d0+ + |d0-|`
//!   and the incremental *fake criticality* labels of §4.1.
//!
//! ## Algorithms (§4–§5)
//!
//! * Preference selection: [`select::sps`] (worst-case bound `cS <= 2 cJ`),
//!   [`select::fakecrit`] (Figure 5), and [`select::doi_based`] (§4.2,
//!   selection driven by the desired doi of results via the `dworst`
//!   bound).
//! * Ranking functions (§3.3): inflationary / dominant / reserved positive
//!   and negative combinations, and the two mixed-combination formulas (5)
//!   and (6) — see [`ranking::Ranking`].
//! * Personalized answers (§5): [`answer::spa`] rewrites the query into a
//!   union of per-preference sub-queries executed as one SQL statement;
//!   [`answer::ppa`] (Figure 6) evaluates sub-queries progressively,
//!   emitting ranked, self-explanatory tuples as soon as the
//!   maximum-estimated-degree-of-interest (MEDI) bound allows.
//! * [`Personalizer`] — the high-level facade: profile + SQL in,
//!   personalized ranked answer out.

pub mod admission;
pub mod answer;
pub mod context;
pub mod criticality;
pub mod degrade;
pub mod descriptor;
pub mod doi;
pub mod elastic;
pub mod error;
pub mod graph;
pub mod mapping;
pub mod mining;
pub mod personalize;
pub mod preference;
pub mod profile;
pub mod ranking;
pub mod select;
pub mod skyline;
pub mod store;

pub use admission::{
    is_transient, AdmissionConfig, AdmissionController, AdmissionPermit, BreakerConfig,
    BreakerDecision, BreakerState, BreakerTransition, CircuitBreaker, Resilience, RetryPolicy,
    Shed,
};
pub use answer::explain::{explain_answer, explain_tuple};
pub use answer::maint::{MaintOutcome, Maintainer, MatRegistry};
pub use answer::ppa::{ppa_guarded, ppa_limited};
pub use answer::{PersonalizedAnswer, PersonalizedTuple};
pub use context::{Context, ContextRule, ContextualProfile};
pub use degrade::{DegradeCause, DegradeEvent, Degradation, PpaPhase};
pub use descriptor::QualityDescriptor;
pub use mapping::ConceptSchema;
pub use mining::{mine_profile, Feedback, MinerConfig};
pub use doi::{Degree, Doi};
pub use elastic::{ElasticFunction, ElasticShape};
pub use error::PrefError;
pub use graph::PersonalizationGraph;
pub use personalize::{
    AnswerAlgorithm, CacheActivity, DbPin, PersonalizationOptions, PersonalizeOutcome,
    PersonalizeRequest, Personalizer, ProfileStats, ResilienceActivity, SelectionAlgorithm,
};
pub use preference::{
    CompareOp, JoinPreference, PrefId, Preference, SelCondition, SelectionPreference,
};
pub use profile::{Profile, STORED_ID_BIT};
pub use ranking::{MixedKind, Ranking, RankingKind};
pub use select::{
    PrefKey, PreferenceCache, SelectedPreference, SelectionCriterion, SelectionStats,
};
pub use skyline::skyline;
pub use store::{
    CheckpointStats, FsyncPolicy, PersistOptions, ProfileHandle, ProfileStore, SelKey, UserId,
};
