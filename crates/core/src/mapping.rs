//! Higher-level preference models mapped onto the database schema (§7).
//!
//! The paper's ongoing-work section: "user preferences may be articulated
//! over a higher level graph model representing the data other than the
//! database schema. This is a useful abstraction for using a profile over
//! multiple databases with similar information but possibly different
//! schemas, and for hiding schema restructuring."
//!
//! A [`ConceptSchema`] names *concepts* (entities) and *concept
//! attributes*, each mapped to a relation attribute reachable through a
//! fixed join path. Profiles written against concepts — `doi(Film.director
//! = 'W. Allen') = (0.8, 0)` — are transparently expanded into ordinary
//! schema-level profiles: the path's joins become must-have (degree 1)
//! join preferences, so the expanded implicit preference keeps exactly
//! the criticality of the concept-level degree pair.

use std::collections::HashMap;

use qp_sql::lexer::{tokenize, Token};
use qp_storage::{AttrId, Catalog};

use crate::error::PrefError;
use crate::preference::{JoinPreference, Preference};
use crate::profile::Profile;

/// A named attribute pair, e.g. `(("MOVIE", "mid"), ("DIRECTED", "mid"))`.
pub type NamedStep<'a> = ((&'a str, &'a str), (&'a str, &'a str));

/// One join step of a concept attribute's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Attribute on the side already reached.
    pub from: AttrId,
    /// Attribute on the relation the step brings in.
    pub to: AttrId,
}

/// A concept attribute: the schema attribute it denotes plus the join
/// path leading there from the concept's base relation.
#[derive(Debug, Clone)]
pub struct ConceptAttr {
    /// Join steps from the concept's base relation (empty for direct
    /// attributes).
    pub path: Vec<PathStep>,
    /// The schema attribute the concept attribute denotes.
    pub attr: AttrId,
}

/// A concept: a named view of one base relation with renamed/derived
/// attributes.
#[derive(Debug, Clone)]
pub struct Concept {
    /// Concept name (e.g. `Film`).
    pub name: String,
    /// Base relation.
    pub relation: qp_storage::RelId,
    attrs: HashMap<String, ConceptAttr>,
}

/// A higher-level model: a set of concepts over one catalog.
#[derive(Debug, Clone)]
pub struct ConceptSchema {
    concepts: HashMap<String, Concept>,
}

impl ConceptSchema {
    /// An empty concept schema.
    pub fn new() -> Self {
        ConceptSchema { concepts: HashMap::new() }
    }

    /// Declares a concept over a base relation.
    pub fn add_concept(
        &mut self,
        catalog: &Catalog,
        name: impl Into<String>,
        relation: &str,
    ) -> Result<(), PrefError> {
        let name = name.into();
        let rel = catalog.relation_by_name(relation)?;
        self.concepts.insert(
            name.to_ascii_lowercase(),
            Concept { name, relation: rel.id, attrs: HashMap::new() },
        );
        Ok(())
    }

    /// Declares a *direct* concept attribute: a renamed attribute of the
    /// concept's base relation.
    pub fn add_direct_attr(
        &mut self,
        catalog: &Catalog,
        concept: &str,
        attr_name: impl Into<String>,
        relation_attr: (&str, &str),
    ) -> Result<(), PrefError> {
        let attr = catalog.resolve(relation_attr.0, relation_attr.1)?;
        let c = self.concept_mut(concept)?;
        if attr.rel != c.relation {
            return Err(PrefError::UnsupportedQuery(format!(
                "direct attribute {}.{} does not belong to the concept's base relation",
                relation_attr.0, relation_attr.1
            )));
        }
        c.attrs.insert(attr_name.into().to_ascii_lowercase(), ConceptAttr { path: vec![], attr });
        Ok(())
    }

    /// Declares a *derived* concept attribute reached through joins, e.g.
    /// `Film.director` → `MOVIE.mid=DIRECTED.mid, DIRECTED.did=DIRECTOR.did,
    /// DIRECTOR.name`.
    pub fn add_path_attr(
        &mut self,
        catalog: &Catalog,
        concept: &str,
        attr_name: impl Into<String>,
        path: &[NamedStep<'_>],
        target: (&str, &str),
    ) -> Result<(), PrefError> {
        let mut steps = Vec::with_capacity(path.len());
        for (from, to) in path {
            let f = catalog.resolve(from.0, from.1)?;
            let t = catalog.resolve(to.0, to.1)?;
            steps.push(PathStep { from: f, to: t });
        }
        let attr = catalog.resolve(target.0, target.1)?;
        let c = self.concept_mut(concept)?;
        // the path must start at the base relation and chain contiguously
        let mut at = c.relation;
        for s in &steps {
            if s.from.rel != at {
                return Err(PrefError::UnsupportedQuery(format!(
                    "path step {:?} does not continue from the previous relation",
                    s
                )));
            }
            at = s.to.rel;
        }
        if attr.rel != at {
            return Err(PrefError::UnsupportedQuery(
                "target attribute is not on the path's final relation".to_string(),
            ));
        }
        c.attrs
            .insert(attr_name.into().to_ascii_lowercase(), ConceptAttr { path: steps, attr });
        Ok(())
    }

    fn concept_mut(&mut self, name: &str) -> Result<&mut Concept, PrefError> {
        self.concepts.get_mut(&name.to_ascii_lowercase()).ok_or_else(|| {
            PrefError::UnsupportedQuery(format!("unknown concept `{name}`"))
        })
    }

    /// Looks a concept attribute up.
    pub fn resolve(&self, concept: &str, attr: &str) -> Option<&ConceptAttr> {
        self.concepts
            .get(&concept.to_ascii_lowercase())?
            .attrs
            .get(&attr.to_ascii_lowercase())
    }

    /// Whether `name` names a concept.
    pub fn is_concept(&self, name: &str) -> bool {
        self.concepts.contains_key(&name.to_ascii_lowercase())
    }

    /// Parses a profile written against the concept model: every
    /// `Concept.attr` on the left-hand side of a `doi(...)` line is
    /// rewritten to its mapped schema attribute, and the path's joins are
    /// materialized as degree-1 join preferences (added once each).
    /// Schema-level lines (`REL.attr`) still work unchanged, so concept
    /// and schema vocabulary can be mixed.
    pub fn parse_profile(&self, catalog: &Catalog, text: &str) -> Result<Profile, PrefError> {
        let mut rewritten = String::new();
        let mut joins: Vec<JoinPreference> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
                rewritten.push('\n');
                continue;
            }
            rewritten.push_str(&self.rewrite_line(catalog, line, lineno + 1, &mut joins)?);
            rewritten.push('\n');
        }
        let mut profile = Profile::new();
        for j in joins {
            profile.push(Preference::Join(j));
        }
        let parsed = Profile::parse(catalog, &rewritten)?;
        for (_, pref) in parsed.iter() {
            profile.push(pref.clone());
        }
        Ok(profile)
    }

    /// Rewrites one `doi(Concept.attr …)` line to schema vocabulary,
    /// collecting the join preferences its path requires.
    fn rewrite_line(
        &self,
        catalog: &Catalog,
        line: &str,
        lineno: usize,
        joins: &mut Vec<JoinPreference>,
    ) -> Result<String, PrefError> {
        let tokens = tokenize(line)
            .map_err(|e| PrefError::ProfileSyntax { line: lineno, message: e.message })?;
        // expect: Ident("doi") LParen Ident(entity) Dot Ident(attr) …
        let (entity, attr, span_start, span_end) = match (
            tokens.first(),
            tokens.get(1),
            tokens.get(2),
            tokens.get(3),
            tokens.get(4),
            tokens.get(5),
        ) {
            (
                Some(t0),
                Some(t1),
                Some(t2),
                Some(t3),
                Some(t4),
                Some(t5),
            ) => match (&t0.token, &t1.token, &t2.token, &t3.token, &t4.token) {
                (
                    Token::Ident(doi),
                    Token::LParen,
                    Token::Ident(entity),
                    Token::Dot,
                    Token::Ident(attr),
                ) if doi.eq_ignore_ascii_case("doi") => {
                    (entity.clone(), attr.clone(), t2.offset, t5.offset)
                }
                _ => return Ok(line.to_string()),
            },
            _ => return Ok(line.to_string()),
        };
        if !self.is_concept(&entity) {
            return Ok(line.to_string());
        }
        let mapped = self.resolve(&entity, &attr).ok_or_else(|| PrefError::ProfileSyntax {
            line: lineno,
            message: format!("concept `{entity}` has no attribute `{attr}`"),
        })?;
        // materialize the path's joins (deduplicated, degree 1 — the
        // mapping is structural, so it must not dilute criticality)
        for step in &mapped.path {
            if !joins.iter().any(|j| j.from == step.from && j.to == step.to) {
                joins.push(
                    JoinPreference::new(catalog, step.from, step.to, 1.0)
                        .expect("validated at declaration"),
                );
            }
        }
        let schema_name = catalog.attr_name(mapped.attr);
        Ok(format!("{}{}{}", &line[..span_start], schema_name, &line[span_end..]))
    }
}

impl Default for ConceptSchema {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::{Attribute, DataType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("title", DataType::Text),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "DIRECTED",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
            &["mid", "did"],
        )
        .unwrap();
        c.add_relation(
            "DIRECTOR",
            vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
            &["did"],
        )
        .unwrap();
        c
    }

    fn film_schema(c: &Catalog) -> ConceptSchema {
        let mut s = ConceptSchema::new();
        s.add_concept(c, "Film", "MOVIE").unwrap();
        s.add_direct_attr(c, "Film", "released", ("MOVIE", "year")).unwrap();
        s.add_path_attr(
            c,
            "Film",
            "director",
            &[(("MOVIE", "mid"), ("DIRECTED", "mid")), (("DIRECTED", "did"), ("DIRECTOR", "did"))],
            ("DIRECTOR", "name"),
        )
        .unwrap();
        s
    }

    #[test]
    fn direct_attribute_maps() {
        let c = catalog();
        let s = film_schema(&c);
        let p = s.parse_profile(&c, "doi(Film.released < 1980) = (-0.7, 0)\n").unwrap();
        assert_eq!(p.selections().count(), 1);
        assert_eq!(p.joins().count(), 0);
        let (_, sel) = p.selections().next().unwrap();
        assert_eq!(c.attr_name(sel.attr), "MOVIE.year");
    }

    #[test]
    fn path_attribute_expands_joins() {
        let c = catalog();
        let s = film_schema(&c);
        let p = s
            .parse_profile(&c, "doi(Film.director = 'W. Allen') = (0.8, 0)\n")
            .unwrap();
        assert_eq!(p.selections().count(), 1);
        assert_eq!(p.joins().count(), 2);
        let (_, sel) = p.selections().next().unwrap();
        assert_eq!(c.attr_name(sel.attr), "DIRECTOR.name");
        // every materialized join is must-have
        for (_, j) in p.joins() {
            assert_eq!(j.degree, 1.0);
        }
    }

    #[test]
    fn joins_deduplicated_across_preferences() {
        let c = catalog();
        let s = film_schema(&c);
        let p = s
            .parse_profile(
                &c,
                "doi(Film.director = 'W. Allen') = (0.8, 0)\n\
                 doi(Film.director = 'M. Mann') = (0.4, 0)\n",
            )
            .unwrap();
        assert_eq!(p.selections().count(), 2);
        assert_eq!(p.joins().count(), 2); // shared path, added once
    }

    #[test]
    fn schema_vocabulary_still_accepted() {
        let c = catalog();
        let s = film_schema(&c);
        let p = s
            .parse_profile(
                &c,
                "doi(Film.released >= 1990) = (0.6, 0)\n\
                 doi(MOVIE.year < 1950) = (-0.4, 0)\n",
            )
            .unwrap();
        assert_eq!(p.selections().count(), 2);
    }

    #[test]
    fn unknown_concept_attribute_errors() {
        let c = catalog();
        let s = film_schema(&c);
        let err = s.parse_profile(&c, "doi(Film.nosuch = 1) = (0.5, 0)\n");
        assert!(matches!(err, Err(PrefError::ProfileSyntax { .. })));
    }

    #[test]
    fn path_must_chain() {
        let c = catalog();
        let mut s = ConceptSchema::new();
        s.add_concept(&c, "Film", "MOVIE").unwrap();
        // path starting from the wrong relation
        let err = s.add_path_attr(
            &c,
            "Film",
            "director",
            &[(("DIRECTED", "did"), ("DIRECTOR", "did"))],
            ("DIRECTOR", "name"),
        );
        assert!(err.is_err());
        // target off the path
        let err = s.add_path_attr(
            &c,
            "Film",
            "director",
            &[(("MOVIE", "mid"), ("DIRECTED", "mid"))],
            ("DIRECTOR", "name"),
        );
        assert!(err.is_err());
    }

    #[test]
    fn mapped_profile_keeps_criticality() {
        // the mapping must not dilute criticality: degree-1 joins make
        // the implicit preference exactly as critical as the concept-level
        // degree pair
        let c = catalog();
        let s = film_schema(&c);
        let p = s.parse_profile(&c, "doi(Film.director = 'W. Allen') = (0.8, 0)\n").unwrap();
        let graph = crate::graph::PersonalizationGraph::build(&p);
        let q = crate::select::QueryContext::from_query(
            &c,
            &qp_sql::parse_query("select title from MOVIE").unwrap(),
        )
        .unwrap();
        let out = crate::select::fakecrit::fakecrit(
            &graph,
            &q,
            crate::select::SelectionCriterion::TopK(5),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[0].criticality - 0.8).abs() < 1e-12);
    }
}
