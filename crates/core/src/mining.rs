//! Semi-automatic profile construction (§7).
//!
//! The conclusions list "how various profiling methods proposed in the
//! literature may be adapted for (semi-)automatic construction of user
//! profiles" as ongoing work (citing preference mining, \[10\]). This
//! module implements a frequency-lift miner over tuple-level feedback:
//!
//! 1. candidate attributes are discovered by walking the schema graph
//!    from the feedback relation up to a configurable depth;
//! 2. for every categorical `(attribute, value)` the miner compares the
//!    value's frequency among *liked* tuples against its frequency across
//!    all feedback — the lift becomes the degree of interest (negative
//!    lift on disliked tuples becomes a negative preference);
//! 3. numeric attributes whose liked values cluster produce *elastic*
//!    preferences centered on the liked mean;
//! 4. join preferences are emitted for every path used, weighted by how
//!    often the relationship actually connects liked tuples.
//!
//! The output is an ordinary [`Profile`], immediately usable by the
//! selection algorithms.

use std::collections::HashMap;

use qp_storage::{AttrId, Database, DomainKind, RelId, RowId, Value};

use crate::doi::{Degree, Doi};
use crate::elastic::ElasticFunction;
use crate::error::PrefError;
use crate::preference::{CompareOp, JoinPreference, Preference, SelectionPreference};
use crate::profile::Profile;

/// Tuple-level feedback: the user liked or disliked a row of the anchor
/// relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// The row judged.
    pub row: RowId,
    /// Liked (true) or explicitly disliked (false).
    pub liked: bool,
}

/// Mining parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerConfig {
    /// Maximum join-path depth explored from the anchor relation.
    pub max_depth: usize,
    /// Minimum occurrences among liked (or disliked) tuples before a
    /// value becomes a candidate.
    pub min_support: usize,
    /// Minimum absolute lift before a preference is emitted.
    pub min_lift: f64,
    /// Maximum number of selection preferences emitted (most significant
    /// first).
    pub max_preferences: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig { max_depth: 2, min_support: 3, min_lift: 0.15, max_preferences: 20 }
    }
}

/// A join path from the anchor relation.
type Path = Vec<(AttrId, AttrId)>;

/// Mines a profile from feedback on rows of `anchor_relation`.
pub fn mine_profile(
    db: &Database,
    anchor_relation: &str,
    feedback: &[Feedback],
    config: &MinerConfig,
) -> Result<Profile, PrefError> {
    let catalog = db.catalog();
    let anchor = catalog.relation_by_name(anchor_relation)?.id;

    // --- enumerate candidate paths (BFS over the schema graph) ---------
    let mut paths: Vec<Path> = vec![vec![]];
    let mut frontier: Vec<(RelId, Path)> = vec![(anchor, vec![])];
    for _ in 0..config.max_depth {
        let mut next = Vec::new();
        for (rel, path) in &frontier {
            for fk in catalog.join_edges_from(*rel) {
                // acyclic: no revisiting relations on the path
                let visited: Vec<RelId> = std::iter::once(anchor)
                    .chain(path.iter().map(|(_, t): &(AttrId, AttrId)| t.rel))
                    .collect();
                if visited.contains(&fk.to.rel) {
                    continue;
                }
                let mut p = path.clone();
                p.push((fk.from, fk.to));
                next.push((fk.to.rel, p.clone()));
                paths.push(p);
            }
        }
        frontier = next;
    }

    // attributes that serve as join endpoints are identifiers — they
    // connect entities rather than describe them, so no preference is
    // mined on them
    let join_attrs: std::collections::HashSet<AttrId> = catalog
        .join_edges()
        .iter()
        .flat_map(|fk| [fk.from, fk.to])
        .collect();

    // --- per-feedback value extraction ---------------------------------
    // stats[(path index, attr)] -> value -> (liked count, total count)
    let mut cat_stats: HashMap<(usize, AttrId), HashMap<Value, (usize, usize)>> = HashMap::new();
    // numeric liked samples per (path index, attr)
    let mut num_liked: HashMap<(usize, AttrId), Vec<f64>> = HashMap::new();
    // join-edge coverage: per path index, how many feedback rows reach it
    let mut path_hits: HashMap<usize, usize> = HashMap::new();
    let n_liked = feedback.iter().filter(|f| f.liked).count();
    let n_total = feedback.len();
    if n_liked == 0 {
        return Ok(Profile::new());
    }

    for fb in feedback {
        for (pi, path) in paths.iter().enumerate() {
            let rows = follow_path(db, anchor, fb.row, path);
            if rows.is_empty() {
                continue;
            }
            *path_hits.entry(pi).or_insert(0) += 1;
            let end_rel = path.last().map(|(_, t)| t.rel).unwrap_or(anchor);
            let relation = catalog.relation(end_rel);
            for (ai, attr_def) in relation.attributes.iter().enumerate() {
                let attr = AttrId::new(end_rel, ai as u32);
                // skip unique columns and join endpoints: row and link
                // identifiers carry no preference signal (composite-key
                // members like GENRE.genre do, and stay in)
                if relation.attr_is_unique(ai) || join_attrs.contains(&attr) {
                    continue;
                }
                for row in &rows {
                    let v = &db.table(end_rel).get(*row).expect("row exists")[ai];
                    if v.is_null() {
                        continue;
                    }
                    match attr_def.domain {
                        DomainKind::Categorical => {
                            let e = cat_stats
                                .entry((pi, attr))
                                .or_default()
                                .entry(v.clone())
                                .or_insert((0, 0));
                            if fb.liked {
                                e.0 += 1;
                            }
                            e.1 += 1;
                        }
                        DomainKind::Numeric => {
                            if fb.liked {
                                if let Some(x) = v.as_f64() {
                                    num_liked.entry((pi, attr)).or_default().push(x);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // --- score candidates ----------------------------------------------
    struct Candidate {
        path_idx: usize,
        pref: SelectionPreference,
        score: f64,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let base_rate = n_liked as f64 / n_total as f64;
    for ((pi, attr), values) in &cat_stats {
        for (value, (liked, total)) in values {
            if *total < config.min_support {
                continue;
            }
            // lift of "liked" given the value, against the base like rate
            let rate = *liked as f64 / *total as f64;
            let lift = rate - base_rate;
            if lift.abs() < config.min_lift {
                continue;
            }
            let degree = lift.clamp(-0.95, 0.95);
            let doi = if degree > 0.0 {
                Doi::presence(degree).expect("in range")
            } else {
                Doi::dislike(-degree).expect("in range")
            };
            let pref = SelectionPreference::new(
                catalog,
                *attr,
                CompareOp::Eq,
                value.clone(),
                doi,
            )?;
            candidates.push(Candidate {
                path_idx: *pi,
                pref,
                score: lift.abs() * (*total as f64).sqrt(),
            });
        }
    }
    // numeric: liked values clustering tightly become elastic preferences
    for ((pi, attr), samples) in &num_liked {
        if samples.len() < config.min_support.max(2) {
            continue;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        // compare against the column's overall spread: clustered likes
        // indicate a real preference
        let hist = db.histogram(*attr);
        let spread = column_spread(db, *attr);
        let _ = hist;
        if spread <= 0.0 || std >= spread * 0.5 {
            continue;
        }
        let confidence = (1.0 - std / (spread * 0.5)).clamp(0.0, 1.0);
        let peak = (0.3 + 0.6 * confidence).min(0.95);
        let width = (2.0 * std).max(spread * 0.05);
        let doi = Doi::new(
            Degree::Elastic(ElasticFunction::triangular(mean, width, peak)?),
            Degree::Exact(0.0),
        )?;
        let pref = SelectionPreference::new(
            catalog,
            *attr,
            CompareOp::Eq,
            Value::Float(mean),
            doi,
        )?;
        candidates.push(Candidate { path_idx: *pi, pref, score: peak * n.sqrt() });
    }

    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    candidates.truncate(config.max_preferences);

    // --- emit: joins (deduplicated, coverage-weighted) then selections --
    let mut profile = Profile::new();
    let mut emitted_joins: Vec<(AttrId, AttrId)> = Vec::new();
    for c in &candidates {
        for (from, to) in &paths[c.path_idx] {
            if !emitted_joins.contains(&(*from, *to)) {
                emitted_joins.push((*from, *to));
                let coverage = *path_hits.get(&c.path_idx).unwrap_or(&0) as f64 / n_total as f64;
                let degree = coverage.clamp(0.3, 1.0);
                profile.push(Preference::Join(JoinPreference::new(catalog, *from, *to, degree)?));
            }
        }
    }
    for c in candidates {
        profile.push(Preference::Selection(c.pref));
    }
    Ok(profile)
}

/// Rows of the path's terminal relation reachable from `start`.
fn follow_path(db: &Database, anchor: RelId, start: RowId, path: &Path) -> Vec<RowId> {
    let mut current: Vec<(RelId, RowId)> = vec![(anchor, start)];
    for (from, to) in path {
        let mut next = Vec::new();
        let index = db.index(*to);
        for (rel, row) in &current {
            debug_assert_eq!(*rel, from.rel);
            let v = &db.table(*rel).get(*row).expect("row exists")[from.idx as usize];
            if v.is_null() {
                continue;
            }
            for hit in index.lookup(v) {
                next.push((to.rel, *hit));
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().map(|(_, r)| r).collect()
}

/// A robust spread estimate for a numeric column (max − min).
fn column_spread(db: &Database, attr: AttrId) -> f64 {
    let table = db.table(attr.rel);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in table.column(attr.idx as usize) {
        if let Some(x) = v.as_f64() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if hi > lo {
        hi - lo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::Attribute;
    use qp_storage::DataType;

    /// MOVIE(mid, year, duration) —< GENRE(mid, genre); user likes
    /// comedies around 100 minutes, dislikes horror.
    fn setup() -> (Database, Vec<Feedback>) {
        let mut db = Database::new();
        db.create_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
                Attribute::new("duration", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        db.create_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        db.catalog_mut().add_join_edge_by_name("MOVIE", "mid", "GENRE", "mid").unwrap();
        // 40 movies: even = comedy ~100min, odd = horror ~150min
        for mid in 0..40i64 {
            let (genre, dur) = if mid % 2 == 0 { ("comedy", 95 + mid % 10) } else { ("horror", 145 + mid % 10) };
            db.insert_by_name(
                "MOVIE",
                vec![Value::Int(mid), Value::Int(1990 + mid % 20), Value::Int(dur)],
            )
            .unwrap();
            db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(genre)]).unwrap();
        }
        // likes all comedies, dislikes all horror
        let feedback: Vec<Feedback> = (0..40u64)
            .map(|i| Feedback { row: RowId(i), liked: i % 2 == 0 })
            .collect();
        (db, feedback)
    }

    #[test]
    fn mines_positive_and_negative_genre_preferences() {
        let (db, feedback) = setup();
        let profile = mine_profile(&db, "MOVIE", &feedback, &MinerConfig::default()).unwrap();
        let catalog = db.catalog();
        let mut found_comedy = false;
        let mut found_horror = false;
        for (_, s) in profile.selections() {
            if catalog.attr_name(s.attr) == "GENRE.genre" {
                match s.condition.value.as_str() {
                    Some("comedy") => {
                        found_comedy = true;
                        assert!(s.is_presence(), "comedy should be liked");
                        assert!(s.doi.d_plus_peak() > 0.2);
                    }
                    Some("horror") => {
                        found_horror = true;
                        assert!(!s.is_presence(), "horror should be disliked");
                        assert!(s.doi.d_minus_peak() > 0.2);
                    }
                    _ => {}
                }
            }
        }
        assert!(found_comedy, "comedy preference not mined: {}", profile.to_dsl(catalog));
        assert!(found_horror, "horror dislike not mined: {}", profile.to_dsl(catalog));
        // the MOVIE→GENRE join was materialized
        assert!(profile.joins().count() >= 1);
    }

    #[test]
    fn mines_elastic_duration_preference() {
        let (db, feedback) = setup();
        let profile = mine_profile(&db, "MOVIE", &feedback, &MinerConfig::default()).unwrap();
        let elastic: Vec<_> = profile
            .selections()
            .filter(|(_, s)| s.doi.is_elastic())
            .map(|(_, s)| s.clone())
            .collect();
        assert!(!elastic.is_empty(), "no elastic preference mined");
        let dur = elastic
            .iter()
            .find(|s| db.catalog().attr_name(s.attr) == "MOVIE.duration")
            .expect("duration preference");
        let e = dur.satisfaction_elastic();
        assert!((e.center - 99.5).abs() < 5.0, "center {} should be near 100", e.center);
        assert!(e.peak > 0.0);
    }

    #[test]
    fn mined_profile_is_usable_for_selection() {
        let (db, feedback) = setup();
        let profile = mine_profile(&db, "MOVIE", &feedback, &MinerConfig::default()).unwrap();
        let graph = crate::graph::PersonalizationGraph::build(&profile);
        let q = crate::select::QueryContext::from_query(
            db.catalog(),
            &qp_sql::parse_query("select year from MOVIE").unwrap(),
        )
        .unwrap();
        let out = crate::select::fakecrit::fakecrit(
            &graph,
            &q,
            crate::select::SelectionCriterion::TopK(5),
        )
        .unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn empty_feedback_yields_empty_profile() {
        let (db, _) = setup();
        let profile = mine_profile(&db, "MOVIE", &[], &MinerConfig::default()).unwrap();
        assert!(profile.is_empty());
        // all-dislikes also mines nothing positive
        let all_bad: Vec<Feedback> =
            (0..10u64).map(|i| Feedback { row: RowId(i), liked: false }).collect();
        let profile = mine_profile(&db, "MOVIE", &all_bad, &MinerConfig::default()).unwrap();
        assert!(profile.is_empty());
    }

    #[test]
    fn respects_max_preferences() {
        let (db, feedback) = setup();
        let config = MinerConfig { max_preferences: 1, ..Default::default() };
        let profile = mine_profile(&db, "MOVIE", &feedback, &config).unwrap();
        assert!(profile.selections().count() <= 1);
    }

    #[test]
    fn min_support_filters_rare_values() {
        let (db, feedback) = setup();
        let config = MinerConfig { min_support: 1000, ..Default::default() };
        let profile = mine_profile(&db, "MOVIE", &feedback, &config).unwrap();
        // no categorical value reaches support 1000
        assert!(profile.selections().all(|(_, s)| s.doi.is_elastic()));
    }
}
