//! The high-level personalization façade.
//!
//! Ties the three phases of query personalization together (§1):
//! *preference selection* (top-K preferences from the profile related to
//! the query), *preference integration* (sub-query construction), and
//! *personalized answer* generation (SPA or PPA, satisfying at least L of
//! the K preferences, ranked by a configurable ranking function).

use std::time::{Duration, Instant};

use qp_exec::Engine;
use qp_sql::{parse_query, Query};
use qp_storage::Database;

use crate::answer::ppa::{ppa, PpaStats};
use crate::answer::spa::spa;
use crate::answer::PersonalizedAnswer;
use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::{
    doi_based::doi_based, fakecrit::fakecrit, sps::sps, QueryContext, SelectedPreference,
    SelectionCriterion,
};

/// Which preference-selection algorithm to run (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionAlgorithm {
    /// FakeCrit (Figure 5) — the default.
    FakeCrit,
    /// The simple algorithm with the worst-case mcsu bound.
    Sps,
    /// §4.2: select until results are guaranteed a minimum doi.
    DoiBased {
        /// Desired minimum doi of results.
        d_r: f64,
        /// Estimated number of related preferences (`None` → profile
        /// size).
        n_estimate: Option<usize>,
    },
}

/// Which answer-generation algorithm to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerAlgorithm {
    /// Single-statement query rewriting.
    Spa,
    /// Progressive evaluation with MEDI-driven emission.
    Ppa,
}

/// Personalization parameters: K (via the selection criterion), L, the
/// ranking function, and algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizationOptions {
    /// Criterion bounding the selected preferences (K).
    pub criterion: SelectionCriterion,
    /// Minimum number of selected preferences a returned tuple must
    /// satisfy (L ≤ K).
    pub l: usize,
    /// Ranking function for degrees of interest.
    pub ranking: Ranking,
    /// Answer generation algorithm.
    pub algorithm: AnswerAlgorithm,
    /// Preference selection algorithm.
    pub selection: SelectionAlgorithm,
}

impl Default for PersonalizationOptions {
    /// `K = 10, L = 2` (the paper's empirical evaluation used `L = 2`),
    /// inflationary/count-weighted ranking, FakeCrit + PPA.
    fn default() -> Self {
        PersonalizationOptions {
            criterion: SelectionCriterion::TopK(10),
            l: 2,
            ranking: Ranking::default(),
            algorithm: AnswerAlgorithm::Ppa,
            selection: SelectionAlgorithm::FakeCrit,
        }
    }
}

/// The result of personalizing one query.
#[derive(Debug, Clone)]
pub struct PersonalizationReport {
    /// The ranked (and, for PPA, self-explanatory) answer.
    pub answer: PersonalizedAnswer,
    /// The preferences that were selected and integrated, in criticality
    /// order. [`crate::answer::PersonalizedTuple::satisfied`] indexes into
    /// this list.
    pub selected: Vec<SelectedPreference>,
    /// Time spent in preference selection.
    pub selection_time: Duration,
    /// Time spent generating the answer.
    pub execution_time: Duration,
    /// Time to first emitted tuple (PPA only).
    pub first_response: Option<Duration>,
    /// PPA work counters, when PPA ran.
    pub ppa_stats: Option<PpaStats>,
}

/// The personalization engine: owns a query engine (UDF registrations for
/// elastic preferences and ranking functions land there) and borrows the
/// database.
pub struct Personalizer<'db> {
    db: &'db Database,
    engine: Engine,
}

impl<'db> Personalizer<'db> {
    /// Creates a personalizer over a database.
    pub fn new(db: &'db Database) -> Self {
        Personalizer { db, engine: Engine::new() }
    }

    /// The underlying query engine (e.g. to run non-personalized SQL for
    /// comparison).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The database.
    pub fn db(&self) -> &'db Database {
        self.db
    }

    /// Personalizes a SQL string.
    pub fn personalize_sql(
        &mut self,
        profile: &Profile,
        sql: &str,
        options: &PersonalizationOptions,
    ) -> Result<PersonalizationReport, PrefError> {
        let query = parse_query(sql)?;
        self.personalize(profile, &query, options)
    }

    /// Runs only the preference-selection phase.
    pub fn select_preferences(
        &self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        let graph = PersonalizationGraph::build(profile);
        let qc = QueryContext::from_query(self.db.catalog(), query)?;
        match options.selection {
            SelectionAlgorithm::FakeCrit => fakecrit(&graph, &qc, options.criterion),
            SelectionAlgorithm::Sps => sps(&graph, &qc, options.criterion),
            SelectionAlgorithm::DoiBased { d_r, n_estimate } => {
                doi_based(&graph, &qc, d_r, &options.ranking, n_estimate)
            }
        }
    }

    /// Personalizes a parsed query: selects preferences, integrates them,
    /// and generates the ranked answer.
    pub fn personalize(
        &mut self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<PersonalizationReport, PrefError> {
        let t0 = Instant::now();
        let selected = self.select_preferences(profile, query, options)?;
        let selection_time = t0.elapsed();

        if selected.is_empty() {
            // nothing related to this query: the answer is the plain query
            let rs = self.engine.execute(self.db, query)?;
            return Ok(PersonalizationReport {
                answer: PersonalizedAnswer {
                    columns: rs.columns,
                    tuples: rs
                        .rows
                        .into_iter()
                        .map(|row| crate::answer::PersonalizedTuple {
                            tuple_id: None,
                            row,
                            doi: 0.0,
                            satisfied: vec![],
                            failed: vec![],
                        })
                        .collect(),
                },
                selected,
                selection_time,
                execution_time: t0.elapsed() - selection_time,
                first_response: None,
                ppa_stats: None,
            });
        }

        let l = options.l.min(selected.len()).max(1);
        let t1 = Instant::now();
        let (answer, first_response, ppa_stats) = match options.algorithm {
            AnswerAlgorithm::Spa => {
                let a = spa(self.db, &mut self.engine, query, profile, &selected, l, &options.ranking)?;
                (a, None, None)
            }
            AnswerAlgorithm::Ppa => {
                let (a, st) =
                    ppa(self.db, &mut self.engine, query, profile, &selected, l, &options.ranking)?;
                (a, st.first_response, Some(st))
            }
        };
        Ok(PersonalizationReport {
            answer,
            selected,
            selection_time,
            execution_time: t1.elapsed(),
            first_response,
            ppa_stats,
        })
    }
}
