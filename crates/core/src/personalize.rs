//! The high-level personalization façade.
//!
//! Ties the three phases of query personalization together (§1):
//! *preference selection* (top-K preferences from the profile related to
//! the query), *preference integration* (sub-query construction), and
//! *personalized answer* generation (SPA or PPA, satisfying at least L of
//! the K preferences, ranked by a configurable ranking function).
//!
//! The serving API is **request/response**: describe one run with a
//! [`PersonalizeRequest`] (whose profile is either owned by the caller
//! or named by a [`UserId`] resolved from an attached
//! [`crate::ProfileStore`] — plus per-request options, guard,
//! parallelism, cache toggles and trace opt-in as builder methods), hand
//! it to [`Personalizer::run`], and get a [`PersonalizeOutcome`] back —
//! the ranked answer and degradation report, profile statistics, and the
//! run's cache activity. This is the *only* entry point: the pre-request
//! `personalize_sql` / `personalize` / `personalize_guarded` shims have
//! been removed (each maps to a one-line `PersonalizeRequest` build).
//!
//! A `Personalizer` built with [`Personalizer::shared`] owns an
//! `Arc<Database>` and is `'static`, so multi-user serving can hand each
//! worker thread its own personalizer over one shared database; the
//! borrowing [`Personalizer::new`] constructor stays for single-threaded
//! callers.

use std::ops::Deref;
use std::time::{Duration, Instant};

use std::sync::Arc;

use qp_exec::{Engine, QueryGuard};
use qp_obs::{MetricsRegistry, Tracer};
use qp_sql::{parse_query, Query};
use qp_storage::{Database, SnapshotStore};

use crate::admission::{is_transient, BreakerDecision, BreakerTransition, Resilience};

use crate::answer::maint::MatRegistry;
use crate::answer::ppa::{ppa_run, PpaStats};
use crate::answer::spa::spa_guarded;
use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::degrade::{DegradeEvent, Degradation};
use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::{
    run_algorithm, PreferenceCache, QueryContext, SelectedPreference, SelectionCriterion,
};
use crate::store::{ProfileHandle, ProfileStore, SelKey, UserId};

/// Which preference-selection algorithm to run (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionAlgorithm {
    /// FakeCrit (Figure 5) — the default.
    FakeCrit,
    /// The simple algorithm with the worst-case mcsu bound.
    Sps,
    /// §4.2: select until results are guaranteed a minimum doi.
    DoiBased {
        /// Desired minimum doi of results.
        d_r: f64,
        /// Estimated number of related preferences (`None` → profile
        /// size).
        n_estimate: Option<usize>,
    },
}

/// Which answer-generation algorithm to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerAlgorithm {
    /// Single-statement query rewriting.
    Spa,
    /// Progressive evaluation with MEDI-driven emission.
    Ppa,
}

/// Personalization parameters: K (via the selection criterion), L, the
/// ranking function, and algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizationOptions {
    /// Criterion bounding the selected preferences (K).
    pub criterion: SelectionCriterion,
    /// Minimum number of selected preferences a returned tuple must
    /// satisfy (L ≤ K).
    pub l: usize,
    /// Ranking function for degrees of interest.
    pub ranking: Ranking,
    /// Answer generation algorithm.
    pub algorithm: AnswerAlgorithm,
    /// Preference selection algorithm.
    pub selection: SelectionAlgorithm,
    /// When personalization fails (selection error, SPA under a tripped
    /// guard, an injected fault), execute the *unpersonalized* query
    /// instead of surfacing the error. The substitution is recorded as a
    /// [`DegradeEvent::Fallback`] in the report's
    /// [`PersonalizationReport::degradation`].
    pub fallback_to_original: bool,
}

impl Default for PersonalizationOptions {
    /// `K = 10, L = 2` (the paper's empirical evaluation used `L = 2`),
    /// inflationary/count-weighted ranking, FakeCrit + PPA, no fallback.
    fn default() -> Self {
        PersonalizationOptions {
            criterion: SelectionCriterion::TopK(10),
            l: 2,
            ranking: Ranking::default(),
            algorithm: AnswerAlgorithm::Ppa,
            selection: SelectionAlgorithm::FakeCrit,
            fallback_to_original: false,
        }
    }
}

/// The result of personalizing one query.
#[derive(Debug, Clone)]
pub struct PersonalizationReport {
    /// The ranked (and, for PPA, self-explanatory) answer.
    pub answer: PersonalizedAnswer,
    /// The preferences that were selected and integrated, in criticality
    /// order. [`crate::answer::PersonalizedTuple::satisfied`] indexes into
    /// this list.
    pub selected: Vec<SelectedPreference>,
    /// Time spent in preference selection.
    pub selection_time: Duration,
    /// Time spent generating the answer.
    pub execution_time: Duration,
    /// Time to first emitted tuple (PPA only).
    pub first_response: Option<Duration>,
    /// PPA work counters, when PPA ran.
    pub ppa_stats: Option<PpaStats>,
    /// What was cut or substituted when the run degraded; empty
    /// ([`Degradation::is_complete`]) for an exact answer.
    pub degradation: Degradation,
}

/// The query of a [`PersonalizeRequest`]: SQL text (parsed by the run)
/// or an already-parsed AST.
enum QueryInput<'a> {
    Sql(&'a str),
    Parsed(&'a Query),
}

/// Whose preferences a [`PersonalizeRequest`] personalizes for: a
/// profile the caller owns, or a user resolved from the personalizer's
/// attached [`ProfileStore`]. The two are mutually exclusive by
/// construction — a request is built either from a `&Profile`
/// ([`PersonalizeRequest::sql`] / [`PersonalizeRequest::query`]) or from
/// a [`UserId`] ([`PersonalizeRequest::user`] /
/// [`PersonalizeRequest::user_query`]).
enum ProfileSource<'a> {
    /// A caller-owned (ad-hoc) profile.
    Borrowed(&'a Profile),
    /// A stored profile, looked up in the attached store at run time.
    User(UserId),
}

/// One personalization run, described declaratively: who (a [`Profile`]
/// or a stored [`UserId`]), what (SQL text or parsed query), and how
/// (options, guard, parallelism, cache toggles, tracing). Build with
/// [`PersonalizeRequest::sql`], [`PersonalizeRequest::query`],
/// [`PersonalizeRequest::user`], or [`PersonalizeRequest::user_query`],
/// refine with the builder methods, and execute with
/// [`Personalizer::run`].
///
/// Every knob is optional: an unrefined request runs with the
/// personalizer's current configuration, an unlimited guard, and
/// default [`PersonalizationOptions`]. Overrides apply to **this run
/// only** — `run` restores the personalizer's configuration afterwards
/// (disabling a cache for one request does not cold-start later ones).
pub struct PersonalizeRequest<'a> {
    profile: ProfileSource<'a>,
    query: QueryInput<'a>,
    options: PersonalizationOptions,
    guard: QueryGuard,
    parallelism: Option<usize>,
    plan_cache: Option<bool>,
    preference_cache: Option<bool>,
    trace: Option<Tracer>,
}

impl<'a> PersonalizeRequest<'a> {
    /// A request personalizing a SQL string for `profile`.
    pub fn sql(profile: &'a Profile, sql: &'a str) -> Self {
        PersonalizeRequest {
            profile: ProfileSource::Borrowed(profile),
            query: QueryInput::Sql(sql),
            options: PersonalizationOptions::default(),
            guard: QueryGuard::unlimited(),
            parallelism: None,
            plan_cache: None,
            preference_cache: None,
            trace: None,
        }
    }

    /// A request personalizing an already-parsed query for `profile`.
    pub fn query(profile: &'a Profile, query: &'a Query) -> Self {
        let mut r = PersonalizeRequest::sql(profile, "");
        r.query = QueryInput::Parsed(query);
        r
    }

    /// A request personalizing a SQL string for a **stored** user: the
    /// profile is resolved at run time from the personalizer's attached
    /// [`ProfileStore`] (see [`Personalizer::with_profile_store`]).
    /// Running it without a store is a typed
    /// [`PrefError::NoProfileStore`]; an unregistered user is a typed
    /// [`PrefError::UnknownUser`].
    pub fn user(user: UserId, sql: &'a str) -> Self {
        PersonalizeRequest {
            profile: ProfileSource::User(user),
            query: QueryInput::Sql(sql),
            options: PersonalizationOptions::default(),
            guard: QueryGuard::unlimited(),
            parallelism: None,
            plan_cache: None,
            preference_cache: None,
            trace: None,
        }
    }

    /// A request personalizing an already-parsed query for a stored user
    /// (see [`PersonalizeRequest::user`]).
    pub fn user_query(user: UserId, query: &'a Query) -> Self {
        let mut r = PersonalizeRequest::user(user, "");
        r.query = QueryInput::Parsed(query);
        r
    }

    /// Replaces the whole option block (criterion, L, ranking,
    /// algorithms, fallback).
    pub fn options(mut self, options: PersonalizationOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the selection criterion (K).
    pub fn criterion(mut self, criterion: SelectionCriterion) -> Self {
        self.options.criterion = criterion;
        self
    }

    /// Sets L, the minimum number of selected preferences a returned
    /// tuple must satisfy.
    pub fn l(mut self, l: usize) -> Self {
        self.options.l = l;
        self
    }

    /// Sets the ranking function.
    pub fn ranking(mut self, ranking: Ranking) -> Self {
        self.options.ranking = ranking;
        self
    }

    /// Sets the answer-generation algorithm (SPA or PPA).
    pub fn algorithm(mut self, algorithm: AnswerAlgorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Sets the preference-selection algorithm.
    pub fn selection(mut self, selection: SelectionAlgorithm) -> Self {
        self.options.selection = selection;
        self
    }

    /// Falls back to the unpersonalized query when personalization
    /// fails, recording the substitution in the degradation report.
    pub fn fallback_to_original(mut self, fallback: bool) -> Self {
        self.options.fallback_to_original = fallback;
        self
    }

    /// Binds the run to a [`QueryGuard`] (deadline, row budgets,
    /// cancellation). The default is unlimited.
    pub fn guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Overrides the engine's parallelism for this run (worker threads
    /// for PPA probe rounds and large hash joins; 1 = serial).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Enables or disables the compiled-plan cache for this run.
    /// Disabling does not drop the personalizer's warm cache — it is
    /// set aside and restored after the run.
    pub fn plan_cache(mut self, enabled: bool) -> Self {
        self.plan_cache = Some(enabled);
        self
    }

    /// Enables or disables the preference-selection cache for this run.
    /// Disabling does not drop the warm cache (see
    /// [`PersonalizeRequest::plan_cache`]).
    pub fn preference_cache(mut self, enabled: bool) -> Self {
        self.preference_cache = Some(enabled);
        self
    }

    /// Attaches a tracer for this run only; the personalizer's tracer is
    /// restored afterwards.
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.trace = Some(tracer);
        self
    }
}

/// Snapshot of the profile a run personalized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// [`Profile::id`] of the profile.
    pub id: u64,
    /// [`Profile::version`] at run time.
    pub version: u64,
    /// Stored atomic preferences in the profile.
    pub preferences: usize,
    /// Preferences selected (and integrated) for this query.
    pub selected: usize,
}

/// Cache hit/miss activity observed during one run (deltas of the plan
/// and preference cache counters, taken before and after). With several
/// threads sharing one cache the deltas may include concurrent runs'
/// lookups — they are serving-side telemetry, not an exact audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheActivity {
    /// Compiled-plan cache hits.
    pub plan_hits: u64,
    /// Compiled-plan cache misses.
    pub plan_misses: u64,
    /// Preference-selection cache hits.
    pub pref_hits: u64,
    /// Preference-selection cache misses.
    pub pref_misses: u64,
}

impl CacheActivity {
    fn delta(&self, before: &CacheActivity) -> CacheActivity {
        CacheActivity {
            plan_hits: self.plan_hits.saturating_sub(before.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(before.plan_misses),
            pref_hits: self.pref_hits.saturating_sub(before.pref_hits),
            pref_misses: self.pref_misses.saturating_sub(before.pref_misses),
        }
    }
}

/// What the resilience layer did to one run (all zeros/false when no
/// [`Resilience`] bundle is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceActivity {
    /// Time spent queued for an admission permit.
    pub queue_wait: Duration,
    /// Transient-error retries performed (0 = first attempt stood).
    pub retries: u32,
    /// The circuit breaker short-circuited this run into the degraded
    /// path (the answer is the unpersonalized query's).
    pub short_circuited: bool,
    /// This run was the half-open probe deciding the breaker's fate.
    pub probe: bool,
}

/// What [`Personalizer::run`] returns: the full phase
/// [`PersonalizationReport`] plus run-level context.
#[derive(Debug, Clone)]
pub struct PersonalizeOutcome {
    /// The phase report: answer, selected preferences, timings, PPA
    /// stats, degradation.
    pub report: PersonalizationReport,
    /// The profile the run personalized for.
    pub profile: ProfileStats,
    /// Cache activity attributable to this run.
    pub cache: CacheActivity,
    /// What the resilience layer (admission, breaker, retry) did.
    pub resilience: ResilienceActivity,
}

impl PersonalizeOutcome {
    /// The ranked personalized answer.
    pub fn answer(&self) -> &PersonalizedAnswer {
        &self.report.answer
    }

    /// What was cut or substituted when the run degraded.
    pub fn degradation(&self) -> &Degradation {
        &self.report.degradation
    }

    /// Whether the answer is exact (nothing was cut or substituted).
    pub fn is_complete(&self) -> bool {
        self.report.degradation.is_complete()
    }
}

/// The database handle a [`Personalizer`] runs against: borrowed (the
/// classic single-threaded construction), shared via `Arc` (so one
/// database serves many personalizers across threads), or a
/// [`SnapshotStore`] (so writers can publish new epochs while requests
/// are in flight).
enum DbRef<'db> {
    Borrowed(&'db Database),
    Shared(Arc<Database>),
    Store(Arc<SnapshotStore>),
}

impl<'db> DbRef<'db> {
    /// Pins the database for one request. Borrowed and shared handles
    /// always resolve to the same database; a store handle pins the
    /// *current* snapshot epoch, so every read of the request sees one
    /// immutable database even while writers publish updates.
    ///
    /// The returned pin's lifetime is the handle's `'db`, not the
    /// `&self` borrow, so the caller can keep using `&mut self` (for the
    /// engine) while the pin is alive.
    fn pin(&self) -> DbPin<'db> {
        match self {
            DbRef::Borrowed(db) => DbPin(PinInner::Borrowed(db)),
            DbRef::Shared(db) => DbPin(PinInner::Pinned(Arc::clone(db))),
            DbRef::Store(store) => DbPin(PinInner::Pinned(store.snapshot())),
        }
    }
}

/// A database pinned for the duration of one request (dereferences to
/// [`Database`]). For a personalizer serving a [`SnapshotStore`] this is
/// one immutable epoch: updates published while the pin is held become
/// visible only to later pins, never mid-request.
pub struct DbPin<'a>(PinInner<'a>);

enum PinInner<'a> {
    Borrowed(&'a Database),
    Pinned(Arc<Database>),
}

impl Deref for DbPin<'_> {
    type Target = Database;

    fn deref(&self) -> &Database {
        match &self.0 {
            PinInner::Borrowed(db) => db,
            PinInner::Pinned(db) => db,
        }
    }
}

/// Truthy when the environment variable is set to anything but
/// `0`/`false` (case-insensitive) or the empty string.
pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false)
}

/// The personalization engine: owns a query engine (UDF registrations for
/// elastic preferences and ranking functions land there) and a database
/// handle — borrowed ([`Personalizer::new`]) or shared
/// ([`Personalizer::shared`]).
pub struct Personalizer<'db> {
    db: DbRef<'db>,
    engine: Engine,
    pref_cache: Option<Arc<PreferenceCache>>,
    resilience: Option<Arc<Resilience>>,
    profiles: Option<Arc<ProfileStore>>,
    mat_registry: Option<Arc<MatRegistry>>,
}

impl<'db> Personalizer<'db> {
    /// Creates a personalizer borrowing a database.
    pub fn new(db: &'db Database) -> Self {
        Personalizer::with_db(DbRef::Borrowed(db))
    }

    fn with_db(db: DbRef<'db>) -> Personalizer<'db> {
        let pref_cache = if env_flag("QP_DISABLE_PREF_CACHE") {
            None
        } else {
            Some(Arc::new(PreferenceCache::new()))
        };
        Personalizer {
            db,
            engine: Engine::new(),
            pref_cache,
            resilience: None,
            profiles: None,
            mat_registry: None,
        }
    }

    /// Attaches a materialization registry (builder-style): subsequent
    /// PPA runs on the vectorized engine fetch every preference result
    /// from it up front and register what they had to build, so
    /// steady-state runs under [`crate::Maintainer`]-published write
    /// traffic replay incrementally maintained results instead of
    /// re-executing preference queries. Share the registry of the
    /// [`crate::Maintainer`] that publishes this personalizer's store.
    pub fn with_maintenance(mut self, registry: Arc<MatRegistry>) -> Self {
        self.mat_registry = Some(registry);
        self
    }

    /// Attaches (or with `None`, detaches) a materialization registry;
    /// see [`Personalizer::with_maintenance`].
    pub fn set_maintenance(&mut self, registry: Option<Arc<MatRegistry>>) {
        self.mat_registry = registry;
    }

    /// Attaches a [`ProfileStore`] (builder-style): subsequent
    /// [`PersonalizeRequest::user`] runs resolve their profile from it,
    /// and selection consults the store's per-user memo before the LRU
    /// preference cache. Share one store across a serving fleet's
    /// personalizers — stored profiles carry durable `(user_id, version)`
    /// cache identity, so every personalizer's caches agree.
    pub fn with_profile_store(mut self, store: Arc<ProfileStore>) -> Self {
        self.profiles = Some(store);
        self
    }

    /// Attaches (or with `None`, detaches) a [`ProfileStore`]; see
    /// [`Personalizer::with_profile_store`].
    pub fn set_profile_store(&mut self, store: Option<Arc<ProfileStore>>) {
        self.profiles = store;
    }

    /// The attached profile store, if any.
    pub fn profile_store(&self) -> Option<&Arc<ProfileStore>> {
        self.profiles.as_ref()
    }

    /// Attaches (or with `None`, detaches) a [`Resilience`] bundle:
    /// subsequent [`Personalizer::run`] calls go through its admission
    /// controller, circuit breaker, and retry policy. Share one bundle
    /// across a serving fleet's personalizers so they shed, trip, and
    /// recover together.
    pub fn set_resilience(&mut self, resilience: Option<Arc<Resilience>>) {
        self.resilience = resilience;
    }

    /// The attached resilience bundle, if any.
    pub fn resilience(&self) -> Option<&Arc<Resilience>> {
        self.resilience.as_ref()
    }

    /// The underlying query engine (e.g. to run non-personalized SQL for
    /// comparison).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Installs a tracer; every phase of subsequent personalization runs
    /// (selection, SPA/PPA, engine-level query execution) emits spans and
    /// events to its [`qp_obs::Recorder`]. The default is a disabled
    /// tracer, which costs one branch per would-be span.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// The tracer spans are reported to (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.engine.tracer()
    }

    /// The metrics registry accumulating counters and latency histograms
    /// across every run through this personalizer (shared with the
    /// underlying engine).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.engine.metrics().clone()
    }

    /// Pins and returns the database — for a serving personalizer built
    /// with [`Personalizer::serving`], the current snapshot epoch.
    pub fn db(&self) -> DbPin<'db> {
        self.db.pin()
    }

    /// Worker threads available to PPA probe rounds and large hash
    /// joins (1 = serial; the `QP_PARALLELISM` default).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.engine.set_parallelism(parallelism);
    }

    /// Enables or disables the engine's plan cache (the
    /// [`Engine::set_plan_cache_enabled`] passthrough, so callers can
    /// override the `QP_DISABLE_PLAN_CACHE` default without reaching
    /// into the engine). Disabling drops cached plans;
    /// [`PersonalizeRequest::plan_cache`] is the non-destructive
    /// per-run override.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.engine.set_plan_cache_enabled(enabled);
    }

    /// Enables or disables the preference-selection cache. Disabling
    /// drops cached selections; [`PersonalizeRequest::preference_cache`]
    /// is the non-destructive per-run override.
    pub fn set_preference_cache_enabled(&mut self, enabled: bool) {
        match (enabled, self.pref_cache.is_some()) {
            (true, false) => self.pref_cache = Some(Arc::new(PreferenceCache::new())),
            (false, true) => self.pref_cache = None,
            _ => {}
        }
    }

    /// The preference-selection cache, when enabled.
    pub fn preference_cache(&self) -> Option<&Arc<PreferenceCache>> {
        self.pref_cache.as_ref()
    }

    /// Eagerly drops every cached selection for one profile (by
    /// [`Profile::id`]). Version-keyed lookups already never serve stale
    /// selections after a mutation; this reclaims the memory at once.
    pub fn invalidate_profile(&self, profile_id: u64) {
        if let Some(cache) = &self.pref_cache {
            cache.invalidate_profile(profile_id);
        }
    }

    /// `EXPLAIN ANALYZE` for an arbitrary query against the personalizer's
    /// database: executes it with per-operator profiling and renders the
    /// annotated plan (rows, elapsed time, observed vs. estimated
    /// selectivity). Useful for inspecting how a personalized rewriting
    /// actually ran.
    pub fn explain_analyze(&self, query: &Query) -> Result<String, PrefError> {
        let db = self.db.pin();
        Ok(self.engine.explain_analyze(&db, query)?)
    }

    /// Executes one [`PersonalizeRequest`]: consults the attached
    /// [`Resilience`] bundle (admission, breaker preflight), applies the
    /// request's per-run overrides (parallelism, cache toggles, tracer),
    /// runs the three personalization phases under its guard — retrying
    /// transient faults per the retry policy — restores the
    /// personalizer's configuration, records the outcome with the
    /// breaker, and wraps the report in a [`PersonalizeOutcome`].
    ///
    /// Resilience interventions are visible, never silent: a shed
    /// request is a typed [`PrefError::Overloaded`], a short-circuited
    /// one carries a `"breaker"` [`DegradeEvent::Fallback`] in its
    /// degradation report, and every intervention is counted in
    /// [`PersonalizeOutcome::resilience`].
    pub fn run(&mut self, request: PersonalizeRequest<'_>) -> Result<PersonalizeOutcome, PrefError> {
        let resilience = self.resilience.clone();
        let mut activity = ResilienceActivity::default();

        // Admission first: a shed request costs nothing downstream — not
        // even the SQL parse.
        let _permit = match resilience.as_deref().and_then(|r| r.admission.as_ref()) {
            Some(admission) => match admission.try_acquire() {
                Ok(permit) => {
                    activity.queue_wait = permit.waited;
                    let metrics = self.engine.metrics();
                    metrics.counter("admission.admitted").inc();
                    metrics.histogram("admission.queue_wait_us").observe(permit.waited);
                    Some(permit)
                }
                Err(shed) => {
                    let waited_ms = shed.waited.as_millis() as u64;
                    self.engine.metrics().counter("admission.shed").inc();
                    self.engine.tracer().event(
                        "admission.shed",
                        &[("in_flight", shed.in_flight.into()), ("waited_ms", waited_ms.into())],
                    );
                    return Err(PrefError::Overloaded { in_flight: shed.in_flight, waited_ms });
                }
            },
            None => None,
        };

        // Breaker preflight: full pipeline, half-open probe, or the
        // degraded short-circuit path.
        let mut probe = false;
        let mut short_circuit = false;
        if let Some(breaker) = resilience.as_deref().and_then(|r| r.breaker.as_ref()) {
            let (decision, transition) = breaker.preflight();
            self.note_breaker(transition);
            match decision {
                BreakerDecision::Allow => {}
                BreakerDecision::Probe => probe = true,
                BreakerDecision::ShortCircuit => short_circuit = true,
            }
        }
        activity.probe = probe;
        activity.short_circuited = short_circuit;

        let PersonalizeRequest {
            profile,
            query,
            options,
            guard,
            parallelism,
            plan_cache,
            preference_cache,
            trace,
        } = request;
        let parsed;
        let query: &Query = match query {
            QueryInput::Sql(sql) => {
                parsed = parse_query(sql)?;
                &parsed
            }
            QueryInput::Parsed(q) => q,
        };

        // Resolve the profile source. A stored user costs one shard
        // lookup; the decode is amortized across every request (and every
        // connection) touching the user since its last re-registration.
        let resolved: Arc<Profile>;
        let (profile, handle): (&Profile, Option<ProfileHandle>) = match profile {
            ProfileSource::Borrowed(p) => (p, None),
            ProfileSource::User(user) => {
                let store = self.profiles.as_ref().ok_or(PrefError::NoProfileStore)?;
                let handle =
                    store.get(user).ok_or(PrefError::UnknownUser { user: user.0 })?;
                resolved = handle.profile()?;
                (&resolved, Some(handle))
            }
        };

        // Apply per-run overrides, remembering what they replaced. The
        // cache objects themselves are set aside (not dropped), so a
        // disabled-for-one-run cache keeps its warm entries.
        let saved_parallelism = parallelism.map(|p| {
            let prev = self.engine.parallelism();
            self.engine.set_parallelism(p);
            prev
        });
        let saved_plan_cache = plan_cache.map(|enabled| {
            let prev = self.engine.plan_cache().cloned();
            match (enabled, prev.is_some()) {
                (true, false) => self.engine.set_plan_cache_enabled(true),
                (false, true) => self.engine.set_plan_cache(None),
                _ => {}
            }
            prev
        });
        let saved_pref_cache = preference_cache.map(|enabled| {
            let prev = self.pref_cache.take();
            self.pref_cache = match (enabled, prev.clone()) {
                (true, Some(cache)) => Some(cache),
                (true, None) => Some(Arc::new(PreferenceCache::new())),
                (false, _) => None,
            };
            prev
        });
        let saved_tracer = trace.map(|t| {
            let prev = self.engine.tracer().clone();
            self.engine.set_tracer(t);
            prev
        });

        // Pin one database epoch for the whole request: selection, answer
        // generation, retries, and the degraded path all read the same
        // immutable database even if a writer publishes mid-run.
        let db = self.db.pin();
        let before = self.cache_counters();
        let result = if short_circuit {
            self.breaker_short_circuit(&db, query, &guard)
        } else {
            match resilience.as_deref().and_then(|r| r.retry.as_ref()) {
                Some(retry) => {
                    let (result, retries) = retry.run(is_transient, |attempt| {
                        if attempt > 0 {
                            self.engine.metrics().counter("retry.attempts").inc();
                            self.engine
                                .tracer()
                                .event("retry.attempt", &[("attempt", u64::from(attempt).into())]);
                        }
                        self.personalize_inner(&db, profile, query, &options, &guard, handle.as_ref())
                    });
                    activity.retries = retries;
                    result
                }
                None => {
                    self.personalize_inner(&db, profile, query, &options, &guard, handle.as_ref())
                }
            }
        };
        let after = self.cache_counters();

        // Restore the personalizer's own configuration on every path.
        if let Some(p) = saved_parallelism {
            self.engine.set_parallelism(p);
        }
        if let Some(prev) = saved_plan_cache {
            self.engine.set_plan_cache(prev);
        }
        if let Some(prev) = saved_pref_cache {
            self.pref_cache = prev;
        }
        if let Some(t) = saved_tracer {
            self.engine.set_tracer(t);
        }

        // Feed the breaker. Short-circuited runs never exercised the
        // pipeline, so their outcome says nothing about its health.
        if !short_circuit {
            if let Some(breaker) = resilience.as_deref().and_then(|r| r.breaker.as_ref()) {
                let failed = match &result {
                    Err(_) => true,
                    Ok(report) => report.degradation.has_fault_signal(),
                };
                self.note_breaker(breaker.record(failed, probe));
            }
        }

        let report = result?;
        Ok(PersonalizeOutcome {
            profile: ProfileStats {
                id: profile.id(),
                version: profile.version(),
                preferences: profile.len(),
                selected: report.selected.len(),
            },
            cache: after.delta(&before),
            resilience: activity,
            report,
        })
    }

    /// Emits the event + counter for a breaker state change.
    fn note_breaker(&self, transition: Option<BreakerTransition>) {
        let Some(t) = transition else { return };
        let (event, counter, state) = match t {
            BreakerTransition::Opened => ("breaker.open", "breaker.opened", "open"),
            BreakerTransition::HalfOpened => {
                ("breaker.half_open", "breaker.half_opened", "half-open")
            }
            BreakerTransition::Closed => ("breaker.close", "breaker.closed", "closed"),
        };
        self.engine.tracer().event(event, &[("state", state.into())]);
        self.engine.metrics().counter(counter).inc();
    }

    /// The open-breaker path: serve the unpersonalized query and report
    /// the substitution as a `"breaker"` fallback degradation.
    fn breaker_short_circuit(
        &mut self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<PersonalizationReport, PrefError> {
        let t = Instant::now();
        self.engine.tracer().event("breaker.short_circuit", &[]);
        self.engine.metrics().counter("breaker.short_circuited").inc();
        let answer = self.plain_answer(db, query, guard)?;
        let mut degradation = Degradation::default();
        degradation.push(DegradeEvent::Fallback {
            stage: "breaker".to_string(),
            error: "circuit breaker open".to_string(),
        });
        Ok(PersonalizationReport {
            answer,
            selected: vec![],
            selection_time: Duration::ZERO,
            execution_time: t.elapsed(),
            first_response: None,
            ppa_stats: None,
            degradation,
        })
    }

    /// Current cumulative cache counters (zeros for disabled caches).
    fn cache_counters(&self) -> CacheActivity {
        let (plan_hits, plan_misses) =
            self.engine.plan_cache().map_or((0, 0), |c| (c.hits(), c.misses()));
        let (pref_hits, pref_misses) =
            self.pref_cache.as_ref().map_or((0, 0), |c| (c.hits(), c.misses()));
        CacheActivity { plan_hits, plan_misses, pref_hits, pref_misses }
    }

    /// Runs only the preference-selection phase. Consults the
    /// preference-selection cache when enabled: a hit skips the graph
    /// walk entirely (`cache.pref.hits` / `cache.pref.misses` count the
    /// traffic, a `cache.pref.hit` event marks hits on traces).
    pub fn select_preferences(
        &self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        let db = self.db.pin();
        self.select_preferences_at(&db, profile, query, options, None)
    }

    /// Preference selection for a **stored** user: resolves the profile
    /// from the attached [`ProfileStore`] and consults the user's
    /// selection memo first — a repeat query context (or one precomputed
    /// by [`ProfileStore::precompute`]) resolves without touching the
    /// graph.
    pub fn select_preferences_for_user(
        &self,
        user: UserId,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        let store = self.profiles.as_ref().ok_or(PrefError::NoProfileStore)?;
        let handle = store.get(user).ok_or(PrefError::UnknownUser { user: user.0 })?;
        let profile = handle.profile()?;
        let db = self.db.pin();
        self.select_preferences_at(&db, &profile, query, options, Some(&handle))
    }

    /// Selection against an already-pinned database epoch (so one
    /// request's phases all see the same snapshot).
    ///
    /// Lookup order for a stored profile: the store's per-user selection
    /// memo (keyed by query *context*, shared across connections and
    /// filled by [`ProfileStore::precompute`]), then the LRU preference
    /// cache (keyed by query text), then the graph walk — whose result
    /// feeds both caches.
    fn select_preferences_at(
        &self,
        db: &Database,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
        handle: Option<&ProfileHandle>,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        // The store memo keys on the query context, so compute it once up
        // front when a stored profile is in play. A query the context
        // derivation rejects falls through to the ordinary path (and will
        // fail there with a proper error if selection really needs it).
        let store_key = handle.and_then(|h| {
            let qc = QueryContext::from_query(db.catalog(), query).ok()?;
            Some((h, SelKey::new(&qc, options)))
        });
        if let Some((h, key)) = &store_key {
            if let Some(hit) = h.cached_selection(key) {
                self.engine
                    .tracer()
                    .event("profiles.select.hit", &[("selected", hit.len().into())]);
                return Ok((*hit).clone());
            }
        }
        if let Some(cache) = &self.pref_cache {
            if let Some(hit) = cache.get(profile, query, options) {
                self.engine.metrics().counter("cache.pref.hits").inc();
                self.engine
                    .tracer()
                    .event("cache.pref.hit", &[("selected", hit.len().into())]);
                if let Some((h, key)) = store_key {
                    h.cache_selection(key, (*hit).clone());
                }
                return Ok((*hit).clone());
            }
            self.engine.metrics().counter("cache.pref.misses").inc();
        }
        let result = self.compute_selection(db, profile, query, options);
        if let Ok(selected) = &result {
            if let Some(cache) = &self.pref_cache {
                cache.insert(profile, query, options, selected.clone());
            }
            if let Some((h, key)) = store_key {
                h.cache_selection(key, selected.clone());
            }
        }
        result
    }

    /// The uncached selection phase: graph construction plus the chosen
    /// selection algorithm.
    fn compute_selection(
        &self,
        db: &Database,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        let started = Instant::now();
        let tracer = self.engine.tracer().clone();
        let mut span = tracer.span("selection");
        let algorithm = match options.selection {
            SelectionAlgorithm::FakeCrit => "fakecrit",
            SelectionAlgorithm::Sps => "sps",
            SelectionAlgorithm::DoiBased { .. } => "doi_based",
        };
        span.attr("algorithm", algorithm);

        let mut graph_span = tracer.span("selection.graph");
        let graph = PersonalizationGraph::build(profile);
        graph_span.attr("preferences", profile.len());
        graph_span.finish();

        let qc = QueryContext::from_query(db.catalog(), query)?;
        let crit_span = tracer.span("selection.criterion");
        let result = run_algorithm(&graph, &qc, options);
        crit_span.finish();

        if let Ok(selected) = &result {
            span.attr("selected", selected.len());
            let metrics = self.engine.metrics();
            metrics.counter("selection.runs").inc();
            metrics.counter("selection.selected").add(selected.len() as u64);
            metrics.histogram("selection.total_us").observe(started.elapsed());
        }
        result
    }

    /// The three phases under a [`QueryGuard`].
    ///
    /// PPA degrades on its own — a guard trip mid-run yields a partial
    /// ranked answer with the cut described in
    /// [`PersonalizationReport::degradation`]. SPA and preference
    /// selection cannot return partial results; when they fail and
    /// [`PersonalizationOptions::fallback_to_original`] is set, the
    /// *unpersonalized* query is executed instead (under a fresh budget
    /// attempt — the deadline and cancellation token keep binding) and the
    /// substitution is reported as a [`DegradeEvent::Fallback`].
    fn personalize_inner(
        &mut self,
        db: &Database,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
        guard: &QueryGuard,
        handle: Option<&ProfileHandle>,
    ) -> Result<PersonalizationReport, PrefError> {
        let t0 = Instant::now();
        let tracer = self.engine.tracer().clone();
        let mut root_span = tracer.span("personalize");
        root_span.attr(
            "algorithm",
            match options.algorithm {
                AnswerAlgorithm::Spa => "spa",
                AnswerAlgorithm::Ppa => "ppa",
            },
        );
        root_span.attr("l", options.l);

        let selected = match self.select_preferences_at(db, profile, query, options, handle) {
            Ok(s) => s,
            Err(e) if options.fallback_to_original => {
                return self.fallback(db, query, vec![], t0.elapsed(), "selection", &e, guard);
            }
            Err(e) => return Err(e),
        };
        let selection_time = t0.elapsed();
        root_span.attr("selected", selected.len());

        if selected.is_empty() {
            // nothing related to this query: the answer is the plain query
            let answer = self.plain_answer(db, query, guard)?;
            return Ok(PersonalizationReport {
                answer,
                selected,
                selection_time,
                execution_time: t0.elapsed() - selection_time,
                first_response: None,
                ppa_stats: None,
                degradation: Degradation::default(),
            });
        }

        let l = options.l.min(selected.len()).max(1);
        let t1 = Instant::now();
        let outcome = match options.algorithm {
            AnswerAlgorithm::Spa => spa_guarded(
                db,
                &mut self.engine,
                query,
                profile,
                &selected,
                l,
                &options.ranking,
                guard,
            )
            .map(|a| (a, None, None, Degradation::default())),
            AnswerAlgorithm::Ppa => ppa_run(
                db,
                &mut self.engine,
                query,
                profile,
                &selected,
                l,
                &options.ranking,
                None,
                guard,
                self.mat_registry.as_deref(),
            )
            .map(|(a, st, deg)| (a, st.first_response, Some(st), deg)),
        };
        match outcome {
            Ok((answer, first_response, ppa_stats, degradation)) => {
                root_span.attr("rows", answer.tuples.len());
                root_span.attr("degraded", !degradation.is_complete());
                Ok(PersonalizationReport {
                    answer,
                    selected,
                    selection_time,
                    execution_time: t1.elapsed(),
                    first_response,
                    ppa_stats,
                    degradation,
                })
            }
            Err(e) if options.fallback_to_original => {
                let stage = match options.algorithm {
                    AnswerAlgorithm::Spa => "spa",
                    AnswerAlgorithm::Ppa => "ppa",
                };
                self.fallback(db, query, selected, selection_time, stage, &e, guard)
            }
            Err(e) => Err(e),
        }
    }

    /// Executes the unpersonalized query in place of a failed
    /// personalization, reporting the substitution.
    #[allow(clippy::too_many_arguments)]
    fn fallback(
        &mut self,
        db: &Database,
        query: &Query,
        selected: Vec<SelectedPreference>,
        selection_time: Duration,
        stage: &str,
        error: &PrefError,
        guard: &QueryGuard,
    ) -> Result<PersonalizationReport, PrefError> {
        let t = Instant::now();
        self.engine.tracer().event(
            "personalize.fallback",
            &[("stage", stage.into()), ("error", error.to_string().into())],
        );
        self.engine.metrics().counter("personalize.fallbacks").inc();
        // Row budgets restart for the retry; an expired deadline or a
        // flipped cancellation token still fails it — there is no answer
        // left to degrade to.
        let answer = self.plain_answer(db, query, &guard.fresh_attempt())?;
        let mut degradation = Degradation::default();
        degradation.push(DegradeEvent::Fallback {
            stage: stage.to_string(),
            error: error.to_string(),
        });
        Ok(PersonalizationReport {
            answer,
            selected,
            selection_time,
            execution_time: t.elapsed(),
            first_response: None,
            ppa_stats: None,
            degradation,
        })
    }

    /// The unpersonalized query's rows as a doi-0 answer.
    fn plain_answer(
        &mut self,
        db: &Database,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<PersonalizedAnswer, PrefError> {
        let (rs, _stats) = self.engine.execute_with_guard(db, query, guard)?;
        Ok(PersonalizedAnswer {
            columns: rs.columns,
            tuples: rs
                .rows
                .into_iter()
                .map(|row| PersonalizedTuple {
                    tuple_id: None,
                    row,
                    doi: 0.0,
                    satisfied: vec![],
                    failed: vec![],
                })
                .collect(),
        })
    }
}

impl Personalizer<'static> {
    /// Creates a personalizer sharing ownership of a database: the
    /// resulting personalizer is `'static`, so multi-user serving can
    /// move one per worker thread over a single shared database.
    pub fn shared(db: Arc<Database>) -> Personalizer<'static> {
        Personalizer::with_db(DbRef::Shared(db))
    }

    /// Creates a personalizer serving a [`SnapshotStore`]: every run
    /// pins the store's *current* epoch for its whole duration, so
    /// profile updates and data loads published through the store while
    /// the request is in flight are never observed mid-request — and the
    /// `(db id, version)`-keyed plan and preference caches invalidate
    /// naturally when a new epoch lands.
    pub fn serving(store: Arc<SnapshotStore>) -> Personalizer<'static> {
        Personalizer::with_db(DbRef::Store(store))
    }
}
