//! The high-level personalization façade.
//!
//! Ties the three phases of query personalization together (§1):
//! *preference selection* (top-K preferences from the profile related to
//! the query), *preference integration* (sub-query construction), and
//! *personalized answer* generation (SPA or PPA, satisfying at least L of
//! the K preferences, ranked by a configurable ranking function).

use std::time::{Duration, Instant};

use std::sync::Arc;

use qp_exec::{Engine, QueryGuard};
use qp_obs::{MetricsRegistry, Tracer};
use qp_sql::{parse_query, Query};
use qp_storage::Database;

use crate::answer::ppa::{ppa_guarded, PpaStats};
use crate::answer::spa::spa_guarded;
use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::degrade::{DegradeEvent, Degradation};
use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::profile::Profile;
use crate::ranking::Ranking;
use crate::select::{
    doi_based::doi_based, fakecrit::fakecrit, sps::sps, QueryContext, SelectedPreference,
    SelectionCriterion,
};

/// Which preference-selection algorithm to run (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionAlgorithm {
    /// FakeCrit (Figure 5) — the default.
    FakeCrit,
    /// The simple algorithm with the worst-case mcsu bound.
    Sps,
    /// §4.2: select until results are guaranteed a minimum doi.
    DoiBased {
        /// Desired minimum doi of results.
        d_r: f64,
        /// Estimated number of related preferences (`None` → profile
        /// size).
        n_estimate: Option<usize>,
    },
}

/// Which answer-generation algorithm to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerAlgorithm {
    /// Single-statement query rewriting.
    Spa,
    /// Progressive evaluation with MEDI-driven emission.
    Ppa,
}

/// Personalization parameters: K (via the selection criterion), L, the
/// ranking function, and algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizationOptions {
    /// Criterion bounding the selected preferences (K).
    pub criterion: SelectionCriterion,
    /// Minimum number of selected preferences a returned tuple must
    /// satisfy (L ≤ K).
    pub l: usize,
    /// Ranking function for degrees of interest.
    pub ranking: Ranking,
    /// Answer generation algorithm.
    pub algorithm: AnswerAlgorithm,
    /// Preference selection algorithm.
    pub selection: SelectionAlgorithm,
    /// When personalization fails (selection error, SPA under a tripped
    /// guard, an injected fault), execute the *unpersonalized* query
    /// instead of surfacing the error. The substitution is recorded as a
    /// [`DegradeEvent::Fallback`] in the report's
    /// [`PersonalizationReport::degradation`].
    pub fallback_to_original: bool,
}

impl Default for PersonalizationOptions {
    /// `K = 10, L = 2` (the paper's empirical evaluation used `L = 2`),
    /// inflationary/count-weighted ranking, FakeCrit + PPA, no fallback.
    fn default() -> Self {
        PersonalizationOptions {
            criterion: SelectionCriterion::TopK(10),
            l: 2,
            ranking: Ranking::default(),
            algorithm: AnswerAlgorithm::Ppa,
            selection: SelectionAlgorithm::FakeCrit,
            fallback_to_original: false,
        }
    }
}

/// The result of personalizing one query.
#[derive(Debug, Clone)]
pub struct PersonalizationReport {
    /// The ranked (and, for PPA, self-explanatory) answer.
    pub answer: PersonalizedAnswer,
    /// The preferences that were selected and integrated, in criticality
    /// order. [`crate::answer::PersonalizedTuple::satisfied`] indexes into
    /// this list.
    pub selected: Vec<SelectedPreference>,
    /// Time spent in preference selection.
    pub selection_time: Duration,
    /// Time spent generating the answer.
    pub execution_time: Duration,
    /// Time to first emitted tuple (PPA only).
    pub first_response: Option<Duration>,
    /// PPA work counters, when PPA ran.
    pub ppa_stats: Option<PpaStats>,
    /// What was cut or substituted when the run degraded; empty
    /// ([`Degradation::is_complete`]) for an exact answer.
    pub degradation: Degradation,
}

/// The personalization engine: owns a query engine (UDF registrations for
/// elastic preferences and ranking functions land there) and borrows the
/// database.
pub struct Personalizer<'db> {
    db: &'db Database,
    engine: Engine,
}

impl<'db> Personalizer<'db> {
    /// Creates a personalizer over a database.
    pub fn new(db: &'db Database) -> Self {
        Personalizer { db, engine: Engine::new() }
    }

    /// The underlying query engine (e.g. to run non-personalized SQL for
    /// comparison).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Installs a tracer; every phase of subsequent personalization runs
    /// (selection, SPA/PPA, engine-level query execution) emits spans and
    /// events to its [`qp_obs::Recorder`]. The default is a disabled
    /// tracer, which costs one branch per would-be span.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// The tracer spans are reported to (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.engine.tracer()
    }

    /// The metrics registry accumulating counters and latency histograms
    /// across every run through this personalizer (shared with the
    /// underlying engine).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.engine.metrics().clone()
    }

    /// The database.
    pub fn db(&self) -> &'db Database {
        self.db
    }

    /// `EXPLAIN ANALYZE` for an arbitrary query against the personalizer's
    /// database: executes it with per-operator profiling and renders the
    /// annotated plan (rows, elapsed time, observed vs. estimated
    /// selectivity). Useful for inspecting how a personalized rewriting
    /// actually ran.
    pub fn explain_analyze(&self, query: &Query) -> Result<String, PrefError> {
        Ok(self.engine.explain_analyze(self.db, query)?)
    }

    /// Personalizes a SQL string.
    pub fn personalize_sql(
        &mut self,
        profile: &Profile,
        sql: &str,
        options: &PersonalizationOptions,
    ) -> Result<PersonalizationReport, PrefError> {
        let query = parse_query(sql)?;
        self.personalize(profile, &query, options)
    }

    /// Runs only the preference-selection phase.
    pub fn select_preferences(
        &self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<Vec<SelectedPreference>, PrefError> {
        let started = Instant::now();
        let tracer = self.engine.tracer().clone();
        let mut span = tracer.span("selection");
        let algorithm = match options.selection {
            SelectionAlgorithm::FakeCrit => "fakecrit",
            SelectionAlgorithm::Sps => "sps",
            SelectionAlgorithm::DoiBased { .. } => "doi_based",
        };
        span.attr("algorithm", algorithm);

        let mut graph_span = tracer.span("selection.graph");
        let graph = PersonalizationGraph::build(profile);
        graph_span.attr("preferences", profile.len());
        graph_span.finish();

        let qc = QueryContext::from_query(self.db.catalog(), query)?;
        let crit_span = tracer.span("selection.criterion");
        let result = match options.selection {
            SelectionAlgorithm::FakeCrit => fakecrit(&graph, &qc, options.criterion),
            SelectionAlgorithm::Sps => sps(&graph, &qc, options.criterion),
            SelectionAlgorithm::DoiBased { d_r, n_estimate } => {
                doi_based(&graph, &qc, d_r, &options.ranking, n_estimate)
            }
        };
        crit_span.finish();

        if let Ok(selected) = &result {
            span.attr("selected", selected.len());
            let metrics = self.engine.metrics();
            metrics.counter("selection.runs").inc();
            metrics.counter("selection.selected").add(selected.len() as u64);
            metrics.histogram("selection.total_us").observe(started.elapsed());
        }
        result
    }

    /// Personalizes a parsed query: selects preferences, integrates them,
    /// and generates the ranked answer.
    pub fn personalize(
        &mut self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Result<PersonalizationReport, PrefError> {
        self.personalize_guarded(profile, query, options, &QueryGuard::unlimited())
    }

    /// [`Personalizer::personalize`] under a [`QueryGuard`]: the guard's
    /// deadline, row budgets, and cancellation token bind every statement
    /// the run executes.
    ///
    /// PPA degrades on its own — a guard trip mid-run yields a partial
    /// ranked answer with the cut described in
    /// [`PersonalizationReport::degradation`]. SPA and preference
    /// selection cannot return partial results; when they fail and
    /// [`PersonalizationOptions::fallback_to_original`] is set, the
    /// *unpersonalized* query is executed instead (under a fresh budget
    /// attempt — the deadline and cancellation token keep binding) and the
    /// substitution is reported as a [`DegradeEvent::Fallback`].
    pub fn personalize_guarded(
        &mut self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
        guard: &QueryGuard,
    ) -> Result<PersonalizationReport, PrefError> {
        let t0 = Instant::now();
        let tracer = self.engine.tracer().clone();
        let mut root_span = tracer.span("personalize");
        root_span.attr(
            "algorithm",
            match options.algorithm {
                AnswerAlgorithm::Spa => "spa",
                AnswerAlgorithm::Ppa => "ppa",
            },
        );
        root_span.attr("l", options.l);

        let selected = match self.select_preferences(profile, query, options) {
            Ok(s) => s,
            Err(e) if options.fallback_to_original => {
                return self.fallback(query, vec![], t0.elapsed(), "selection", &e, guard);
            }
            Err(e) => return Err(e),
        };
        let selection_time = t0.elapsed();
        root_span.attr("selected", selected.len());

        if selected.is_empty() {
            // nothing related to this query: the answer is the plain query
            let answer = self.plain_answer(query, guard)?;
            return Ok(PersonalizationReport {
                answer,
                selected,
                selection_time,
                execution_time: t0.elapsed() - selection_time,
                first_response: None,
                ppa_stats: None,
                degradation: Degradation::default(),
            });
        }

        let l = options.l.min(selected.len()).max(1);
        let t1 = Instant::now();
        let outcome = match options.algorithm {
            AnswerAlgorithm::Spa => spa_guarded(
                self.db,
                &mut self.engine,
                query,
                profile,
                &selected,
                l,
                &options.ranking,
                guard,
            )
            .map(|a| (a, None, None, Degradation::default())),
            AnswerAlgorithm::Ppa => ppa_guarded(
                self.db,
                &mut self.engine,
                query,
                profile,
                &selected,
                l,
                &options.ranking,
                None,
                guard,
            )
            .map(|(a, st, deg)| (a, st.first_response, Some(st), deg)),
        };
        match outcome {
            Ok((answer, first_response, ppa_stats, degradation)) => {
                root_span.attr("rows", answer.tuples.len());
                root_span.attr("degraded", !degradation.is_complete());
                Ok(PersonalizationReport {
                    answer,
                    selected,
                    selection_time,
                    execution_time: t1.elapsed(),
                    first_response,
                    ppa_stats,
                    degradation,
                })
            }
            Err(e) if options.fallback_to_original => {
                let stage = match options.algorithm {
                    AnswerAlgorithm::Spa => "spa",
                    AnswerAlgorithm::Ppa => "ppa",
                };
                self.fallback(query, selected, selection_time, stage, &e, guard)
            }
            Err(e) => Err(e),
        }
    }

    /// Executes the unpersonalized query in place of a failed
    /// personalization, reporting the substitution.
    fn fallback(
        &mut self,
        query: &Query,
        selected: Vec<SelectedPreference>,
        selection_time: Duration,
        stage: &str,
        error: &PrefError,
        guard: &QueryGuard,
    ) -> Result<PersonalizationReport, PrefError> {
        let t = Instant::now();
        self.engine.tracer().event(
            "personalize.fallback",
            &[("stage", stage.into()), ("error", error.to_string().into())],
        );
        self.engine.metrics().counter("personalize.fallbacks").inc();
        // Row budgets restart for the retry; an expired deadline or a
        // flipped cancellation token still fails it — there is no answer
        // left to degrade to.
        let answer = self.plain_answer(query, &guard.fresh_attempt())?;
        let mut degradation = Degradation::default();
        degradation.push(DegradeEvent::Fallback {
            stage: stage.to_string(),
            error: error.to_string(),
        });
        Ok(PersonalizationReport {
            answer,
            selected,
            selection_time,
            execution_time: t.elapsed(),
            first_response: None,
            ppa_stats: None,
            degradation,
        })
    }

    /// The unpersonalized query's rows as a doi-0 answer.
    fn plain_answer(
        &mut self,
        query: &Query,
        guard: &QueryGuard,
    ) -> Result<PersonalizedAnswer, PrefError> {
        let (rs, _stats) = self.engine.execute_with_guard(self.db, query, guard)?;
        Ok(PersonalizedAnswer {
            columns: rs.columns,
            tuples: rs
                .rows
                .into_iter()
                .map(|row| PersonalizedTuple {
                    tuple_id: None,
                    row,
                    doi: 0.0,
                    satisfied: vec![],
                    failed: vec![],
                })
                .collect(),
        })
    }
}
