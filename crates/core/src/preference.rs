//! Atomic preferences (§3.1).
//!
//! Preferences are stored at the level of atomic query elements: *atomic
//! selection preferences* (a condition on an attribute, plus the doi pair)
//! and *atomic join preferences* (a directed join between two attributes,
//! plus a degree in `[0, 1]` expressing how much the left relation's
//! results should be influenced by the right one).

use qp_sql::{builder, BinaryOp, Expr};
use qp_storage::{AttrId, Catalog, DomainKind, Value};

use crate::doi::Doi;
use crate::error::PrefError;

/// Identifier of a preference within a [`crate::Profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefId(pub usize);

/// Comparison operators usable in atomic selection conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// The SQL operator.
    pub fn to_sql(self) -> BinaryOp {
        match self {
            CompareOp::Eq => BinaryOp::Eq,
            CompareOp::Neq => BinaryOp::Neq,
            CompareOp::Lt => BinaryOp::Lt,
            CompareOp::Le => BinaryOp::Le,
            CompareOp::Gt => BinaryOp::Gt,
            CompareOp::Ge => BinaryOp::Ge,
        }
    }

    /// The logical negation (used for 1–1 absence sub-queries, §5: "the
    /// only difference is the change of the condition's operator").
    pub fn negate(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Neq,
            CompareOp::Neq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// Evaluates the comparison on two values (used for conflict checks).
    pub fn eval(self, left: &Value, right: &Value) -> Option<bool> {
        let ord = left.sql_cmp(right)?;
        Some(match self {
            CompareOp::Eq => ord.is_eq(),
            CompareOp::Neq => ord.is_ne(),
            CompareOp::Lt => ord.is_lt(),
            CompareOp::Le => ord.is_le(),
            CompareOp::Gt => ord.is_gt(),
            CompareOp::Ge => ord.is_ge(),
        })
    }
}

/// The condition of an atomic selection preference. Elasticity is not a
/// property of the condition but of the [`Doi`] attached to it (the paper
/// writes `doi(MOVIE.duration = '2h') = (e(0.7), e(−0.5))`): an elastic
/// doi makes the nominally exact equality approximately satisfiable.
#[derive(Debug, Clone, PartialEq)]
pub struct SelCondition {
    /// Comparison operator.
    pub op: CompareOp,
    /// Comparison value.
    pub value: Value,
}

/// An atomic selection preference: condition + doi.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPreference {
    /// The attribute the condition constrains.
    pub attr: AttrId,
    /// The atomic selection condition.
    pub condition: SelCondition,
    /// The degree-of-interest pair.
    pub doi: Doi,
}

impl SelectionPreference {
    /// Creates a validated selection preference. Elastic dois require a
    /// numeric attribute domain (§3.1) and an equality condition on a
    /// numeric value.
    pub fn new(
        catalog: &Catalog,
        attr: AttrId,
        op: CompareOp,
        value: Value,
        doi: Doi,
    ) -> Result<Self, PrefError> {
        let attribute = catalog.attribute(attr);
        if doi.is_elastic() {
            if attribute.domain != DomainKind::Numeric {
                return Err(PrefError::ElasticOnCategorical(catalog.attr_name(attr)));
            }
            if op != CompareOp::Eq || value.as_f64().is_none() {
                return Err(PrefError::ElasticOnCategorical(format!(
                    "{} (elastic preferences require `= <numeric>` conditions)",
                    catalog.attr_name(attr)
                )));
            }
        }
        Ok(SelectionPreference { attr, condition: SelCondition { op, value }, doi })
    }

    /// Degree of criticality (formula 7).
    pub fn criticality(&self) -> f64 {
        self.doi.criticality()
    }

    /// Whether satisfaction means the condition *holds* (presence-type) or
    /// *fails* (absence-type), per §3.3.
    pub fn is_presence(&self) -> bool {
        self.doi.is_presence()
    }

    /// The SQL expression testing the *satisfaction region* of the
    /// preference, on the given binding. Exact presence → the condition
    /// itself; exact absence → the negated condition; elastic → a
    /// `BETWEEN` over the elastic support (§5's translation rule).
    pub fn satisfaction_expr(&self, binding: &str, attr_name: &str) -> Expr {
        let col = builder::col(binding, attr_name);
        if self.doi.is_elastic() {
            let elastic = self.satisfaction_elastic();
            let (lo, hi) = elastic.support();
            if self.is_presence() {
                builder::between(col, builder::float(lo), builder::float(hi))
            } else {
                builder::not_between(col, builder::float(lo), builder::float(hi))
            }
        } else {
            let op =
                if self.is_presence() { self.condition.op } else { self.condition.op.negate() };
            builder::binary(col, op.to_sql(), value_to_literal(&self.condition.value))
        }
    }

    /// The SQL expression testing the *failure region* (used by PPA's
    /// absence queries, which are "formulated as if they corresponded to
    /// presence preferences").
    pub fn failure_expr(&self, binding: &str, attr_name: &str) -> Expr {
        let col = builder::col(binding, attr_name);
        if self.doi.is_elastic() {
            let elastic = self.satisfaction_elastic();
            let (lo, hi) = elastic.support();
            if self.is_presence() {
                builder::not_between(col, builder::float(lo), builder::float(hi))
            } else {
                builder::between(col, builder::float(lo), builder::float(hi))
            }
        } else {
            let op =
                if self.is_presence() { self.condition.op.negate() } else { self.condition.op };
            builder::binary(col, op.to_sql(), value_to_literal(&self.condition.value))
        }
    }

    /// The elastic function giving the per-value satisfaction degree. For
    /// presence preferences that is `dT`'s function; for absence
    /// preferences `dF`'s. Falls back to whichever side is elastic.
    pub fn satisfaction_elastic(&self) -> &crate::elastic::ElasticFunction {
        use crate::doi::Degree;
        let primary = if self.is_presence() { &self.doi.on_true } else { &self.doi.on_false };
        if let Degree::Elastic(e) = primary {
            return e;
        }
        let secondary = if self.is_presence() { &self.doi.on_false } else { &self.doi.on_true };
        if let Degree::Elastic(e) = secondary {
            return e;
        }
        panic!("satisfaction_elastic called on an exact preference");
    }

    /// The satisfaction degree `d⁺` for a tuple whose attribute value is
    /// `v` (`None` when the value is unavailable or non-numeric, in which
    /// case the peak is used).
    pub fn d_plus_for(&self, v: Option<f64>) -> f64 {
        match v {
            Some(v) if self.doi.is_elastic() => self.doi.d_plus_at(v),
            _ => self.doi.d_plus_peak(),
        }
    }

    /// The failure degree `d⁻` (as stored: non-positive). Elastic failure
    /// degrees use the peak magnitude — a tuple outside the satisfaction
    /// region misses the preferred region entirely.
    pub fn d_minus(&self) -> f64 {
        -self.doi.d_minus_peak()
    }
}

/// An atomic join preference: `doi(from = to) = (d)`, `d ∈ [0, 1]`,
/// *directed* — "a join preference expresses the dependence of the left
/// part of the join on the right part" (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPreference {
    /// Attribute of the relation already in the query.
    pub from: AttrId,
    /// Attribute of the relation the join would bring in.
    pub to: AttrId,
    /// Degree of interest in the join, `[0, 1]`.
    pub degree: f64,
}

impl JoinPreference {
    /// Creates a validated join preference.
    pub fn new(catalog: &Catalog, from: AttrId, to: AttrId, degree: f64) -> Result<Self, PrefError> {
        if !(0.0..=1.0).contains(&degree) || !degree.is_finite() {
            return Err(PrefError::JoinDegreeOutOfRange(degree));
        }
        let tf = catalog.attribute(from).data_type;
        let tt = catalog.attribute(to).data_type;
        if tf != tt {
            return Err(PrefError::Storage(qp_storage::StorageError::InvalidForeignKey(
                format!(
                    "join preference between {} ({tf}) and {} ({tt})",
                    catalog.attr_name(from),
                    catalog.attr_name(to)
                ),
            )));
        }
        Ok(JoinPreference { from, to, degree })
    }

    /// Criticality of a join preference: the failure doi is taken as 0
    /// (§3.4), so `c = d`.
    pub fn criticality(&self) -> f64 {
        self.degree
    }
}

/// An atomic preference.
#[derive(Debug, Clone, PartialEq)]
pub enum Preference {
    /// A selection preference.
    Selection(SelectionPreference),
    /// A join preference.
    Join(JoinPreference),
}

impl Preference {
    /// Degree of criticality.
    pub fn criticality(&self) -> f64 {
        match self {
            Preference::Selection(s) => s.criticality(),
            Preference::Join(j) => j.criticality(),
        }
    }

    /// The selection preference, if any.
    pub fn as_selection(&self) -> Option<&SelectionPreference> {
        match self {
            Preference::Selection(s) => Some(s),
            Preference::Join(_) => None,
        }
    }

    /// The join preference, if any.
    pub fn as_join(&self) -> Option<&JoinPreference> {
        match self {
            Preference::Join(j) => Some(j),
            Preference::Selection(_) => None,
        }
    }
}

/// Converts a storage value into a SQL literal expression.
pub(crate) fn value_to_literal(v: &Value) -> Expr {
    use qp_sql::Literal;
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(*i),
        Value::Float(x) => Literal::Float(*x),
        Value::Str(s) => Literal::Str(s.to_string()),
        Value::Bool(b) => Literal::Bool(*b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Degree;
    use crate::elastic::ElasticFunction;
    use qp_storage::{Attribute, DataType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
                Attribute::new("duration", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c
    }

    fn elastic_doi() -> Doi {
        Doi::new(
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, 0.7).unwrap()),
            Degree::Elastic(ElasticFunction::triangular(120.0, 30.0, -0.5).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn elastic_requires_numeric_domain() {
        let c = catalog();
        let genre = c.resolve("GENRE", "genre").unwrap();
        let err = SelectionPreference::new(
            &c,
            genre,
            CompareOp::Eq,
            Value::str("musical"),
            elastic_doi(),
        );
        assert!(matches!(err, Err(PrefError::ElasticOnCategorical(_))));
    }

    #[test]
    fn elastic_requires_eq_numeric() {
        let c = catalog();
        let dur = c.resolve("MOVIE", "duration").unwrap();
        let err =
            SelectionPreference::new(&c, dur, CompareOp::Lt, Value::Int(120), elastic_doi());
        assert!(err.is_err());
        let ok =
            SelectionPreference::new(&c, dur, CompareOp::Eq, Value::Int(120), elastic_doi());
        assert!(ok.is_ok());
    }

    #[test]
    fn satisfaction_expr_exact_presence() {
        let c = catalog();
        let genre = c.resolve("GENRE", "genre").unwrap();
        let p = SelectionPreference::new(
            &c,
            genre,
            CompareOp::Eq,
            Value::str("comedy"),
            Doi::presence(0.8).unwrap(),
        )
        .unwrap();
        assert_eq!(p.satisfaction_expr("G", "genre").to_string(), "G.genre = 'comedy'");
        assert_eq!(p.failure_expr("G", "genre").to_string(), "G.genre <> 'comedy'");
    }

    #[test]
    fn satisfaction_expr_exact_absence() {
        // P3: doi(MOVIE.year < 1980) = (−0.7, 0): satisfied when year >= 1980
        let c = catalog();
        let year = c.resolve("MOVIE", "year").unwrap();
        let p = SelectionPreference::new(
            &c,
            year,
            CompareOp::Lt,
            Value::Int(1980),
            Doi::new(-0.7, 0.0).unwrap(),
        )
        .unwrap();
        assert!(!p.is_presence());
        assert_eq!(p.satisfaction_expr("M", "year").to_string(), "M.year >= 1980");
        assert_eq!(p.failure_expr("M", "year").to_string(), "M.year < 1980");
    }

    #[test]
    fn satisfaction_expr_elastic() {
        let c = catalog();
        let dur = c.resolve("MOVIE", "duration").unwrap();
        let p =
            SelectionPreference::new(&c, dur, CompareOp::Eq, Value::Int(120), elastic_doi())
                .unwrap();
        assert!(p.is_presence());
        assert_eq!(
            p.satisfaction_expr("M", "duration").to_string(),
            "M.duration BETWEEN 90.0 AND 150.0"
        );
        assert_eq!(
            p.failure_expr("M", "duration").to_string(),
            "M.duration NOT BETWEEN 90.0 AND 150.0"
        );
    }

    #[test]
    fn degree_lookup_elastic() {
        let c = catalog();
        let dur = c.resolve("MOVIE", "duration").unwrap();
        let p =
            SelectionPreference::new(&c, dur, CompareOp::Eq, Value::Int(120), elastic_doi())
                .unwrap();
        assert!((p.d_plus_for(Some(120.0)) - 0.7).abs() < 1e-12);
        assert!((p.d_plus_for(Some(135.0)) - 0.35).abs() < 1e-12);
        assert!((p.d_minus() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn join_preference_validation() {
        let c = catalog();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let g = c.resolve("GENRE", "mid").unwrap();
        assert!(JoinPreference::new(&c, m, g, 0.8).is_ok());
        assert!(JoinPreference::new(&c, m, g, 1.2).is_err());
        assert!(JoinPreference::new(&c, m, g, -0.1).is_err());
        let genre = c.resolve("GENRE", "genre").unwrap();
        assert!(JoinPreference::new(&c, m, genre, 0.5).is_err()); // type mismatch
    }

    #[test]
    fn compare_op_negation_round_trip() {
        for op in [
            CompareOp::Eq,
            CompareOp::Neq,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn compare_op_eval() {
        assert_eq!(CompareOp::Lt.eval(&Value::Int(1), &Value::Int(2)), Some(true));
        assert_eq!(CompareOp::Eq.eval(&Value::Null, &Value::Int(2)), None);
    }
}
