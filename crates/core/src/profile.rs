//! User profiles: sets of atomic preferences, with the paper's own textual
//! notation (Figure 2) as the serialization format.
//!
//! ```text
//! # Al's profile (Figure 2)
//! doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)
//! doi(THEATRE.ticket = around(6, 2)) = (e(0.5), 0)
//! doi(MOVIE.year < 1980) = (-0.7, 0)
//! doi(MOVIE.duration = around(120, 30)) = (e(0.7), e(-0.5))
//! doi(GENRE.genre = 'musical') = (-0.9, 0.7)
//! doi(THEATRE.region = 'downtown') = (0.7, -0.5)
//! doi(MOVIE.mid = DIRECTED.mid) = (1)
//! doi(DIRECTED.did = DIRECTOR.did) = (0.9)
//! ```
//!
//! Selection preferences use `R.A <op> <literal>`; elastic preferences use
//! `R.A = around(center, width)` with `e(peak[, width])` degrees; join
//! preferences use `R.A = S.B` with a single degree `(d)`.

use std::sync::atomic::{AtomicU64, Ordering};

use qp_sql::lexer::{tokenize, Token};
use qp_storage::{AttrId, Catalog, Value};

use crate::doi::{Degree, Doi};
use crate::elastic::ElasticFunction;
use crate::error::PrefError;
use crate::preference::{
    CompareOp, JoinPreference, PrefId, Preference, SelectionPreference,
};

/// A user profile: an ordered collection of atomic preferences.
///
/// ```
/// use qp_core::Profile;
/// use qp_storage::{Attribute, Catalog, DataType};
/// let mut catalog = Catalog::new();
/// catalog.add_relation(
///     "MOVIE",
///     vec![Attribute::new("mid", DataType::Int), Attribute::new("year", DataType::Int)],
///     &["mid"],
/// ).unwrap();
/// let profile = Profile::parse(
///     &catalog,
///     "doi(MOVIE.year < 1980) = (-0.7, 0)\n\
///      doi(MOVIE.year = around(1995, 10)) = (e(0.6), 0)\n",
/// ).unwrap();
/// assert_eq!(profile.selections().count(), 2);
/// // the profile serializes back to the paper's own notation
/// assert!(profile.to_dsl(&catalog).contains("doi(MOVIE.year < 1980)"));
/// ```
#[derive(Debug)]
pub struct Profile {
    prefs: Vec<Preference>,
    /// Process-unique identity; see [`Profile::id`].
    id: u64,
    /// Mutation counter; see [`Profile::version`].
    version: u64,
}

/// Process-wide source of unique profile ids for *ad-hoc* profiles
/// (built, parsed, or cloned in this process). Profiles resident in a
/// [`crate::ProfileStore`] do **not** draw from this sequence — they get
/// the durable `STORED_ID_BIT | user_id` identity instead, so their
/// cache keys survive restarts and are shared across connections.
static NEXT_PROFILE_ID: AtomicU64 = AtomicU64::new(1);

/// High bit marking a [`Profile::id`] as store-assigned (derived from a
/// [`crate::store::UserId`]) rather than drawn from the process-local
/// sequence. The two id spaces can therefore never collide: ad-hoc ids
/// count up from 1, stored ids all have this bit set.
pub const STORED_ID_BIT: u64 = 1 << 63;

fn next_profile_id() -> u64 {
    NEXT_PROFILE_ID.fetch_add(1, Ordering::Relaxed)
}

impl Default for Profile {
    fn default() -> Self {
        Profile { prefs: Vec::new(), id: next_profile_id(), version: 0 }
    }
}

impl Clone for Profile {
    /// Clones the preferences into a **detached** profile with a fresh
    /// process-local identity (new id, version 0). Two clones that later
    /// diverge must never share an `(id, version)` pair, or
    /// preference-selection caches keyed on it would serve one clone's
    /// selections to the other.
    ///
    /// This applies to stored profiles too: decoding a
    /// [`crate::ProfileStore`] entry yields handles that all share the
    /// durable `(user_id, version)` identity — so they share cache
    /// entries — but the moment one is cloned (the only way to mutate
    /// it, since handles are `Arc`-shared), the clone leaves the stored
    /// identity space and its mutations can never poison the stored
    /// profile's cache keys.
    fn clone(&self) -> Self {
        Profile { prefs: self.prefs.clone(), id: next_profile_id(), version: 0 }
    }
}

impl PartialEq for Profile {
    /// Profiles compare by *content* (their preferences); the cache
    /// identity fields are deliberately excluded so parse/serialize
    /// round-trips and clones still compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.prefs == other.prefs
    }
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// The identifier caches key on (together with [`Profile::version`]).
    ///
    /// Two id spaces exist:
    /// * **ad-hoc** profiles (built, parsed, or cloned in this process)
    ///   draw a process-unique id — cloning produces a *new* id, parsing
    ///   produces a new id;
    /// * **stored** profiles decoded from a [`crate::ProfileStore`] carry
    ///   the durable `STORED_ID_BIT | user_id` identity ([`STORED_ID_BIT`]
    ///   keeps the spaces disjoint), so every handle to the same stored
    ///   profile — on any connection, before or after a restart — shares
    ///   one cache key.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True when this profile carries a store-assigned durable identity
    /// (see [`Profile::id`]).
    pub fn is_stored(&self) -> bool {
        self.id & STORED_ID_BIT != 0
    }

    /// The version component of the cache identity. For ad-hoc profiles
    /// it is a mutation counter: every added preference bumps it, which
    /// invalidates preference-selection cache entries keyed on the
    /// previous version. For stored profiles it is the store's
    /// registration version for the user — bumped on every re-register,
    /// which invalidates exactly the same way.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of stored preferences.
    pub fn len(&self) -> usize {
        self.prefs.len()
    }

    /// True iff no preferences are stored.
    pub fn is_empty(&self) -> bool {
        self.prefs.is_empty()
    }

    /// The preference behind an id.
    pub fn get(&self, id: PrefId) -> &Preference {
        &self.prefs[id.0]
    }

    /// Iterates `(id, preference)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PrefId, &Preference)> {
        self.prefs.iter().enumerate().map(|(i, p)| (PrefId(i), p))
    }

    /// Iterates the selection preferences.
    pub fn selections(&self) -> impl Iterator<Item = (PrefId, &SelectionPreference)> {
        self.iter().filter_map(|(id, p)| p.as_selection().map(|s| (id, s)))
    }

    /// Iterates the join preferences.
    pub fn joins(&self) -> impl Iterator<Item = (PrefId, &JoinPreference)> {
        self.iter().filter_map(|(id, p)| p.as_join().map(|j| (id, j)))
    }

    /// Adds a validated selection preference by attribute name.
    pub fn add_selection(
        &mut self,
        catalog: &Catalog,
        relation: &str,
        attribute: &str,
        op: CompareOp,
        value: impl Into<Value>,
        doi: Doi,
    ) -> Result<PrefId, PrefError> {
        let attr = catalog.resolve(relation, attribute)?;
        let pref = SelectionPreference::new(catalog, attr, op, value.into(), doi)?;
        Ok(self.push(Preference::Selection(pref)))
    }

    /// Adds a validated join preference by attribute names.
    pub fn add_join(
        &mut self,
        catalog: &Catalog,
        from: (&str, &str),
        to: (&str, &str),
        degree: f64,
    ) -> Result<PrefId, PrefError> {
        let f = catalog.resolve(from.0, from.1)?;
        let t = catalog.resolve(to.0, to.1)?;
        let pref = JoinPreference::new(catalog, f, t, degree)?;
        Ok(self.push(Preference::Join(pref)))
    }

    /// Adds a pre-built preference. Bumps [`Profile::version`].
    pub fn push(&mut self, pref: Preference) -> PrefId {
        self.version += 1;
        self.prefs.push(pref);
        PrefId(self.prefs.len() - 1)
    }

    /// Rebuilds a profile decoded from a [`crate::ProfileStore`] blob,
    /// stamping the durable `(user_id, version)` identity instead of
    /// drawing from the process-local id sequence.
    pub(crate) fn from_stored_parts(prefs: Vec<Preference>, user_id: u64, version: u64) -> Profile {
        Profile { prefs, id: STORED_ID_BIT | user_id, version }
    }

    /// Parses a profile from the Figure-2 notation. Lines starting with
    /// `#` (or `--`) and blank lines are skipped.
    pub fn parse(catalog: &Catalog, text: &str) -> Result<Profile, PrefError> {
        let mut profile = Profile::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
                continue;
            }
            parse_line(catalog, line, lineno + 1, &mut profile)?;
        }
        Ok(profile)
    }

    /// Serializes the profile back to the Figure-2 notation; the output
    /// re-parses to an equal profile.
    pub fn to_dsl(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (_, pref) in self.iter() {
            match pref {
                Preference::Selection(s) => {
                    let attr = catalog.attr_name(s.attr);
                    if s.doi.is_elastic() {
                        let e = primary_elastic(&s.doi);
                        out.push_str(&format!(
                            "doi({attr} = around({}, {})) = ({}, {})\n",
                            fmt_num(e.center),
                            fmt_num(e.width),
                            fmt_degree(&s.doi.on_true, e.width),
                            fmt_degree(&s.doi.on_false, e.width),
                        ));
                    } else {
                        out.push_str(&format!(
                            "doi({attr} {} {}) = ({}, {})\n",
                            op_str(s.condition.op),
                            fmt_value(&s.condition.value),
                            fmt_degree(&s.doi.on_true, 0.0),
                            fmt_degree(&s.doi.on_false, 0.0),
                        ));
                    }
                }
                Preference::Join(j) => {
                    out.push_str(&format!(
                        "doi({} = {}) = ({})\n",
                        catalog.attr_name(j.from),
                        catalog.attr_name(j.to),
                        fmt_num(j.degree)
                    ));
                }
            }
        }
        out
    }
}

fn primary_elastic(doi: &Doi) -> &ElasticFunction {
    if let Degree::Elastic(e) = &doi.on_true {
        e
    } else if let Degree::Elastic(e) = &doi.on_false {
        e
    } else {
        unreachable!("is_elastic checked")
    }
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => fmt_num_value(other),
    }
}

fn fmt_num_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.fract() == 0.0 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        other => other.to_string(),
    }
}

fn fmt_degree(d: &Degree, default_width: f64) -> String {
    match d {
        Degree::Exact(x) => fmt_num(*x),
        Degree::Elastic(e) => {
            if (e.width - default_width).abs() < 1e-12 {
                format!("e({})", fmt_num(e.peak))
            } else {
                format!("e({}, {})", fmt_num(e.peak), fmt_num(e.width))
            }
        }
    }
}

fn op_str(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::Neq => "<>",
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
    }
}

// --- line parser -------------------------------------------------------

struct LineParser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    line: usize,
    text: &'a str,
}

impl<'a> LineParser<'a> {
    fn err(&self, msg: impl Into<String>) -> PrefError {
        PrefError::ProfileSyntax {
            line: self.line,
            message: format!("{} in `{}`", msg.into(), self.text),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), PrefError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, PrefError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        let hit = matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw));
        if hit {
            self.pos += 1;
        }
        hit
    }

    /// Parses a signed number.
    fn number(&mut self, what: &str) -> Result<f64, PrefError> {
        let neg = if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        let x = match self.next() {
            Some(Token::Int(i)) => i as f64,
            Some(Token::Float(f)) => f,
            _ => return Err(self.err(format!("expected {what}"))),
        };
        Ok(if neg { -x } else { x })
    }
}

fn parse_line(
    catalog: &Catalog,
    line: &str,
    lineno: usize,
    profile: &mut Profile,
) -> Result<(), PrefError> {
    let tokens = tokenize(line)
        .map_err(|e| PrefError::ProfileSyntax { line: lineno, message: e.message })?
        .into_iter()
        .map(|s| s.token)
        .collect();
    let mut p = LineParser { tokens, pos: 0, line: lineno, text: line };

    if !p.keyword("doi") {
        return Err(p.err("expected `doi`"));
    }
    p.expect(&Token::LParen, "`(`")?;
    // left side: R.A
    let rel = p.ident("relation name")?;
    p.expect(&Token::Dot, "`.`")?;
    let attr_name = p.ident("attribute name")?;
    let attr = catalog.resolve(&rel, &attr_name)?;
    // operator
    let op = match p.next() {
        Some(Token::Eq) => CompareOp::Eq,
        Some(Token::Neq) => CompareOp::Neq,
        Some(Token::Lt) => CompareOp::Lt,
        Some(Token::Le) => CompareOp::Le,
        Some(Token::Gt) => CompareOp::Gt,
        Some(Token::Ge) => CompareOp::Ge,
        _ => return Err(p.err("expected comparison operator")),
    };
    // right side
    enum Rhs {
        Literal(Value),
        Around { center: f64, width: f64 },
        Attr(AttrId),
    }
    let rhs = match p.peek().cloned() {
        Some(Token::Ident(id)) if id.eq_ignore_ascii_case("around") => {
            p.pos += 1;
            p.expect(&Token::LParen, "`(` after around")?;
            let center = p.number("center")?;
            p.expect(&Token::Comma, "`,`")?;
            let width = p.number("width")?;
            p.expect(&Token::RParen, "`)`")?;
            Rhs::Around { center, width }
        }
        Some(Token::Ident(id)) if id.eq_ignore_ascii_case("true") => {
            p.pos += 1;
            Rhs::Literal(Value::Bool(true))
        }
        Some(Token::Ident(id)) if id.eq_ignore_ascii_case("false") => {
            p.pos += 1;
            Rhs::Literal(Value::Bool(false))
        }
        Some(Token::Ident(rel2)) => {
            p.pos += 1;
            p.expect(&Token::Dot, "`.` (join preference)")?;
            let attr2 = p.ident("attribute name")?;
            Rhs::Attr(catalog.resolve(&rel2, &attr2)?)
        }
        Some(Token::Str(s)) => {
            p.pos += 1;
            Rhs::Literal(Value::str(s))
        }
        Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Minus) => {
            let x = p.number("literal")?;
            if x.fract() == 0.0 && x.abs() < 1e15 {
                Rhs::Literal(Value::Int(x as i64))
            } else {
                Rhs::Literal(Value::Float(x))
            }
        }
        _ => return Err(p.err("expected literal, around(...), or R.A")),
    };
    p.expect(&Token::RParen, "`)` closing the condition")?;
    p.expect(&Token::Eq, "`=`")?;
    p.expect(&Token::LParen, "`(` opening the degrees")?;

    match rhs {
        Rhs::Attr(to) => {
            if op != CompareOp::Eq {
                return Err(p.err("join preferences require `=`"));
            }
            let d = p.number("join degree")?;
            p.expect(&Token::RParen, "`)`")?;
            let pref = JoinPreference::new(catalog, attr, to, d)?;
            profile.push(Preference::Join(pref));
        }
        Rhs::Literal(value) => {
            let dt = parse_degree(&mut p, None)?;
            p.expect(&Token::Comma, "`,` between the two degrees")?;
            let df = parse_degree(&mut p, None)?;
            p.expect(&Token::RParen, "`)`")?;
            let doi = Doi::new(dt, df)?;
            let pref = SelectionPreference::new(catalog, attr, op, value, doi)?;
            profile.push(Preference::Selection(pref));
        }
        Rhs::Around { center, width } => {
            if op != CompareOp::Eq {
                return Err(p.err("around(...) requires `=`"));
            }
            let around = Some((center, width));
            let dt = parse_degree(&mut p, around)?;
            p.expect(&Token::Comma, "`,` between the two degrees")?;
            let df = parse_degree(&mut p, around)?;
            p.expect(&Token::RParen, "`)`")?;
            if !dt.is_elastic() && !df.is_elastic() {
                return Err(p.err("around(...) requires at least one e(...) degree"));
            }
            let doi = Doi::new(dt, df)?;
            let value = if center.fract() == 0.0 {
                Value::Int(center as i64)
            } else {
                Value::Float(center)
            };
            let pref = SelectionPreference::new(catalog, attr, CompareOp::Eq, value, doi)?;
            profile.push(Preference::Selection(pref));
        }
    }
    if p.peek().is_some() {
        return Err(p.err("trailing tokens"));
    }
    Ok(())
}

/// Parses one degree: a number, or `e(peak[, width])` when `around` gives
/// a default center/width.
fn parse_degree(
    p: &mut LineParser<'_>,
    around: Option<(f64, f64)>,
) -> Result<Degree, PrefError> {
    if let Some(Token::Ident(id)) = p.peek() {
        if id.eq_ignore_ascii_case("e") {
            let Some((center, default_width)) = around else {
                return Err(p.err("e(...) degrees require an around(...) condition"));
            };
            p.pos += 1;
            p.expect(&Token::LParen, "`(` after e")?;
            let peak = p.number("elastic peak")?;
            let width = if p.peek() == Some(&Token::Comma) {
                p.pos += 1;
                p.number("elastic width")?
            } else {
                default_width
            };
            p.expect(&Token::RParen, "`)`")?;
            return Ok(Degree::Elastic(ElasticFunction::triangular(center, width, peak)?));
        }
    }
    Ok(Degree::Exact(p.number("degree")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::{Attribute, DataType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
                Attribute::new("duration", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c.add_relation(
            "DIRECTED",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
            &["mid", "did"],
        )
        .unwrap();
        c.add_relation(
            "DIRECTOR",
            vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
            &["did"],
        )
        .unwrap();
        c.add_relation(
            "THEATRE",
            vec![
                Attribute::new("tid", DataType::Int),
                Attribute::new("region", DataType::Text),
                Attribute::new("ticket", DataType::Float),
            ],
            &["tid"],
        )
        .unwrap();
        c
    }

    const ALS_PROFILE: &str = "\
# Al's profile (Figure 2)
doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)
doi(THEATRE.ticket = around(6, 2)) = (e(0.5), 0)
doi(MOVIE.year < 1980) = (-0.7, 0)
doi(MOVIE.duration = around(120, 30)) = (e(0.7), e(-0.5))
doi(GENRE.genre = 'musical') = (-0.9, 0.7)
doi(THEATRE.region = 'downtown') = (0.7, -0.5)
doi(MOVIE.mid = DIRECTED.mid) = (1)
doi(DIRECTED.did = DIRECTOR.did) = (0.9)
doi(MOVIE.mid = GENRE.mid) = (0.8)
";

    #[test]
    fn parse_als_profile() {
        let c = catalog();
        let p = Profile::parse(&c, ALS_PROFILE).unwrap();
        assert_eq!(p.len(), 9);
        assert_eq!(p.selections().count(), 6);
        assert_eq!(p.joins().count(), 3);
    }

    #[test]
    fn parse_gives_paper_criticalities() {
        let c = catalog();
        let p = Profile::parse(&c, ALS_PROFILE).unwrap();
        let crits: Vec<f64> =
            p.selections().map(|(_, s)| (s.criticality() * 100.0).round() / 100.0).collect();
        // P1=0.8, P2=0.5, P3=0.7, P4=1.2, P5=1.6, P6=1.2
        assert_eq!(crits, vec![0.8, 0.5, 0.7, 1.2, 1.6, 1.2]);
    }

    #[test]
    fn dsl_round_trip() {
        let c = catalog();
        let p = Profile::parse(&c, ALS_PROFILE).unwrap();
        let dsl = p.to_dsl(&c);
        let p2 = Profile::parse(&c, &dsl).unwrap();
        assert_eq!(p, p2, "round trip changed the profile:\n{dsl}");
    }

    #[test]
    fn join_preferences_are_directed() {
        let c = catalog();
        let text = "doi(MOVIE.mid = GENRE.mid) = (0.8)\ndoi(GENRE.mid = MOVIE.mid) = (0.3)\n";
        let p = Profile::parse(&c, text).unwrap();
        let joins: Vec<_> = p.joins().map(|(_, j)| j.clone()).collect();
        assert_eq!(joins.len(), 2);
        assert_ne!(joins[0].from, joins[1].from);
        assert_eq!(joins[0].degree, 0.8);
        assert_eq!(joins[1].degree, 0.3);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let c = catalog();
        let err = Profile::parse(&c, "doi(MOVIE.year < 1980) = (-0.7, 0)\nnot a line\n");
        match err {
            Err(PrefError::ProfileSyntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_attribute_rejected() {
        let c = catalog();
        let err = Profile::parse(&c, "doi(MOVIE.nosuch = 1) = (0.5, 0)");
        assert!(matches!(err, Err(PrefError::Storage(_))));
    }

    #[test]
    fn inconsistent_doi_rejected() {
        let c = catalog();
        let err = Profile::parse(&c, "doi(MOVIE.year < 1980) = (0.5, 0.5)");
        assert!(matches!(err, Err(PrefError::InconsistentDoi { .. })));
    }

    #[test]
    fn elastic_width_override() {
        let c = catalog();
        let text = "doi(MOVIE.duration = around(120, 30)) = (e(0.7), e(-0.5, 50))\n";
        let p = Profile::parse(&c, text).unwrap();
        let (_, s) = p.selections().next().unwrap();
        match (&s.doi.on_true, &s.doi.on_false) {
            (Degree::Elastic(t), Degree::Elastic(f)) => {
                assert_eq!(t.width, 30.0);
                assert_eq!(f.width, 50.0);
            }
            other => panic!("{other:?}"),
        }
        // round trip keeps the override
        let p2 = Profile::parse(&c, &p.to_dsl(&c)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn e_without_around_rejected() {
        let c = catalog();
        let err = Profile::parse(&c, "doi(MOVIE.duration = 120) = (e(0.7), 0)");
        assert!(matches!(err, Err(PrefError::ProfileSyntax { .. })));
    }

    #[test]
    fn identity_is_fresh_on_clone_and_version_tracks_mutation() {
        let c = catalog();
        let mut p = Profile::parse(&c, ALS_PROFILE).unwrap();
        let v0 = p.version();
        assert_eq!(v0, 9, "one bump per parsed preference");
        p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.5).unwrap();
        assert_eq!(p.version(), v0 + 1);

        let q = p.clone();
        assert_eq!(p, q, "clone compares equal by content");
        assert_ne!(p.id(), q.id(), "clone gets a fresh identity");
        assert_eq!(q.version(), 0, "clone restarts its mutation counter");
    }

    #[test]
    fn builder_api() {
        let c = catalog();
        let mut p = Profile::new();
        let id = p
            .add_selection(&c, "GENRE", "genre", CompareOp::Eq, "comedy", Doi::presence(0.9).unwrap())
            .unwrap();
        assert_eq!(id, PrefId(0));
        let jid = p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        assert_eq!(jid, PrefId(1));
        assert_eq!(p.len(), 2);
        assert!(p.get(id).as_selection().is_some());
        assert!(p.get(jid).as_join().is_some());
    }
}
