//! Ranking functions (§3.3).
//!
//! The overall degree of interest in a combination of preferences is
//! computed by a ranking function. For *positive combinations* (all
//! preferences satisfied) the paper distinguishes three philosophies
//! around the pivotal parameter `max(D⁺)`:
//!
//! * **Inflationary** — `r⁺ ≥ max(D⁺)`: "the more preferences satisfied
//!   the better"; formula (1): `r₁⁺ = 1 − ∏(1 − dᵢ⁺)`.
//! * **Dominant** — `r⁺ = max(D⁺)`: winner-takes-all.
//! * **Reserved** — `min(D⁺) ≤ r⁺ ≤ max(D⁺)`; formula (2):
//!   `r₂⁺ = 1 − ∏(1 − dᵢ⁺)^(1/N)`.
//!
//! Negative combinations are symmetric (exchange `+` and `−`). *Mixed
//! combinations* blend the two with either formula (5), `r = r⁺ + r⁻`, or
//! formula (6), `r = (N⁺·r⁺ + N⁻·r⁻)/(N⁺ + N⁻)`; both satisfy the paper's
//! conditions (3) `r⁻ ≤ r ≤ r⁺` and (4) `r(d, −d) = 0`.

/// The three positive/negative combination philosophies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankingKind {
    /// Formula (1): `1 − ∏(1 − dᵢ)` — grows with the number of satisfied
    /// preferences.
    Inflationary,
    /// `max(D⁺)` — an answer is as good as its best feature.
    Dominant,
    /// Formula (2): `1 − ∏(1 − dᵢ)^(1/N)` — a count-insensitive average.
    Reserved,
}

impl RankingKind {
    /// All three kinds, for sweeps and the Figure 15–17 experiments.
    pub const ALL: [RankingKind; 3] =
        [RankingKind::Inflationary, RankingKind::Dominant, RankingKind::Reserved];

    /// Combines non-negative satisfaction degrees; 0 for the empty set.
    pub fn positive(&self, degrees: &[f64]) -> f64 {
        if degrees.is_empty() {
            return 0.0;
        }
        match self {
            RankingKind::Inflationary => {
                1.0 - degrees.iter().map(|d| 1.0 - d).product::<f64>()
            }
            RankingKind::Dominant => degrees.iter().copied().fold(f64::MIN, f64::max),
            RankingKind::Reserved => {
                let n = degrees.len() as f64;
                1.0 - degrees.iter().map(|d| (1.0 - d).powf(1.0 / n)).product::<f64>()
            }
        }
    }

    /// Combines non-positive failure degrees (the symmetric counterpart:
    /// `+` and `−` exchanged everywhere); 0 for the empty set.
    pub fn negative(&self, degrees: &[f64]) -> f64 {
        if degrees.is_empty() {
            return 0.0;
        }
        let mags: Vec<f64> = degrees.iter().map(|d| -d).collect();
        -self.positive(&mags)
    }
}

/// The two mixed-combination formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixedKind {
    /// Formula (5): `r = r⁺ + r⁻`.
    Sum,
    /// Formula (6): `r = (N⁺·r⁺ + N⁻·r⁻)/(N⁺ + N⁻)` — "the overall degree
    /// of interest should be affected … also by the number of preferences
    /// contributing to each" (the paper found this more appropriate).
    CountWeighted,
}

/// A full ranking function: a philosophy for each sign plus a mixed-
/// combination formula.
///
/// ```
/// use qp_core::{Ranking, RankingKind, MixedKind};
/// let r = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
/// // satisfying the 0.72 W. Allen preference and a 0.5 genre preference:
/// assert!((r.positive(&[0.72, 0.5]) - 0.86).abs() < 1e-12);
/// // condition (4): r(d, -d) = 0
/// assert!(r.mixed(&[0.6], &[-0.6]).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ranking {
    /// Philosophy used for the positive (and, symmetrically, negative)
    /// parts.
    pub kind: RankingKind,
    /// Mixed-combination formula.
    pub mixed: MixedKind,
}

impl Default for Ranking {
    /// The paper's preferred default: inflationary positives with the
    /// count-weighted mixed formula (6).
    fn default() -> Self {
        Ranking { kind: RankingKind::Inflationary, mixed: MixedKind::CountWeighted }
    }
}

impl Ranking {
    /// Creates a ranking function.
    pub fn new(kind: RankingKind, mixed: MixedKind) -> Self {
        Ranking { kind, mixed }
    }

    /// Positive combination.
    pub fn positive(&self, degrees: &[f64]) -> f64 {
        self.kind.positive(degrees)
    }

    /// Negative combination.
    pub fn negative(&self, degrees: &[f64]) -> f64 {
        self.kind.negative(degrees)
    }

    /// Mixed combination of satisfaction degrees (`pos`, in `[0, 1]`) and
    /// failure degrees (`neg`, in `[-1, 0]`).
    pub fn mixed(&self, pos: &[f64], neg: &[f64]) -> f64 {
        if pos.is_empty() && neg.is_empty() {
            return 0.0;
        }
        if neg.is_empty() {
            return self.positive(pos);
        }
        if pos.is_empty() {
            return self.negative(neg);
        }
        let rp = self.positive(pos);
        let rn = self.negative(neg);
        match self.mixed {
            MixedKind::Sum => rp + rn,
            MixedKind::CountWeighted => {
                let np = pos.len() as f64;
                let nn = neg.len() as f64;
                (np * rp + nn * rn) / (np + nn)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn positive_formulas() {
        let d = [0.72, 0.5];
        assert!((RankingKind::Inflationary.positive(&d) - 0.86).abs() < EPS);
        assert!((RankingKind::Dominant.positive(&d) - 0.72).abs() < EPS);
        let r = RankingKind::Reserved.positive(&d);
        let expect = 1.0 - ((1.0 - 0.72_f64) * (1.0 - 0.5)).sqrt();
        assert!((r - expect).abs() < EPS);
    }

    #[test]
    fn empty_sets_are_zero() {
        for k in RankingKind::ALL {
            assert_eq!(k.positive(&[]), 0.0);
            assert_eq!(k.negative(&[]), 0.0);
        }
        assert_eq!(Ranking::default().mixed(&[], &[]), 0.0);
    }

    #[test]
    fn inflationary_dominates_max() {
        // r⁺(D⁺) ≥ max(D⁺)
        let d = [0.3, 0.5, 0.2];
        assert!(RankingKind::Inflationary.positive(&d) >= 0.5);
    }

    #[test]
    fn reserved_between_min_and_max() {
        let d = [0.2, 0.9, 0.5];
        let r = RankingKind::Reserved.positive(&d);
        assert!((0.2 - EPS..=0.9 + EPS).contains(&r), "r = {r}");
    }

    #[test]
    fn single_degree_identity() {
        for k in RankingKind::ALL {
            assert!((k.positive(&[0.7]) - 0.7).abs() < EPS, "{k:?}");
            assert!((k.negative(&[-0.4]) + 0.4).abs() < EPS, "{k:?}");
        }
    }

    #[test]
    fn negative_symmetric() {
        for k in RankingKind::ALL {
            let pos = k.positive(&[0.3, 0.6]);
            let neg = k.negative(&[-0.3, -0.6]);
            assert!((pos + neg).abs() < EPS, "{k:?}");
        }
    }

    #[test]
    fn condition4_r_of_d_minus_d_is_zero() {
        for kind in RankingKind::ALL {
            for mixed in [MixedKind::Sum, MixedKind::CountWeighted] {
                let r = Ranking::new(kind, mixed);
                assert!(r.mixed(&[0.6], &[-0.6]).abs() < EPS, "{kind:?} {mixed:?}");
            }
        }
    }

    #[test]
    fn condition3_bounds() {
        // r⁻(D⁻) ≤ r(D⁺, D⁻) ≤ r⁺(D⁺)
        let pos = [0.8, 0.4];
        let neg = [-0.3, -0.9];
        for kind in RankingKind::ALL {
            for mixed in [MixedKind::Sum, MixedKind::CountWeighted] {
                let r = Ranking::new(kind, mixed);
                let m = r.mixed(&pos, &neg);
                assert!(m <= r.positive(&pos) + EPS, "{kind:?} {mixed:?}");
                assert!(m >= r.negative(&neg) - EPS, "{kind:?} {mixed:?}");
            }
        }
    }

    #[test]
    fn count_weighted_feels_the_counts() {
        // many small negatives should pull the count-weighted score down
        // more than the sum of one positive and one negative would suggest
        let r = Ranking::new(RankingKind::Dominant, MixedKind::CountWeighted);
        let few = r.mixed(&[0.8], &[-0.2]);
        let many = r.mixed(&[0.8], &[-0.2, -0.2, -0.2, -0.2]);
        assert!(many < few);
    }

    #[test]
    fn one_sided_mixed_reduces() {
        let r = Ranking::default();
        assert_eq!(r.mixed(&[0.5, 0.3], &[]), r.positive(&[0.5, 0.3]));
        assert_eq!(r.mixed(&[], &[-0.5]), r.negative(&[-0.5]));
    }

    #[test]
    fn inflationary_matches_paper_example2_composition() {
        // doi(implicit W. Allen preference) = 0.72; satisfied alone the
        // rank equals the degree.
        assert!((Ranking::default().mixed(&[0.72], &[]) - 0.72).abs() < EPS);
    }
}
