//! Preference-selection cache.
//!
//! Selecting the top-K implicit preferences for a query walks the
//! personalization graph — pure computation over (profile, query,
//! options) that multi-user serving repeats verbatim for every popular
//! query. [`PreferenceCache`] memoizes it in a [`qp_exec::ShardedCache`]
//! keyed by **(profile id, profile version, normalized query text,
//! options fingerprint)**.
//!
//! The profile-version component makes invalidation on mutation
//! automatic: [`crate::Profile`] bumps its version on every `push`, so a
//! mutated profile's lookups stop matching and its stale entries age out
//! of their shards. [`PreferenceCache::invalidate_profile`] additionally
//! drops every version of one profile eagerly — the explicit hook for
//! callers that want memory back (or certainty) the moment a profile
//! changes.

use std::sync::Arc;

use qp_exec::ShardedCache;
use qp_sql::Query;

use crate::personalize::PersonalizationOptions;
use crate::profile::Profile;
use crate::select::SelectedPreference;

/// Key of a cached selection. See the module docs for why the profile
/// version is part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrefKey {
    /// [`Profile::id`] — distinct per profile object, fresh on clone.
    pub profile_id: u64,
    /// [`Profile::version`] at selection time.
    pub profile_version: u64,
    /// Normalized query text (the parsed AST pretty-printed).
    pub query: String,
    /// Everything else selection depends on: criterion, selection
    /// algorithm (including its parameters), and ranking function.
    pub fingerprint: String,
}

impl PrefKey {
    /// Builds the key for one selection call.
    pub fn new(profile: &Profile, query: &Query, options: &PersonalizationOptions) -> PrefKey {
        PrefKey {
            profile_id: profile.id(),
            profile_version: profile.version(),
            query: query.to_string(),
            // `l` is deliberately absent: it shapes answer computation,
            // not which preferences get selected.
            fingerprint: format!(
                "{:?}|{:?}|{:?}",
                options.criterion, options.selection, options.ranking
            ),
        }
    }
}

/// Default shard count (matches the plan cache's geometry rationale).
const PREF_CACHE_SHARDS: usize = 8;
/// Default per-shard capacity: 8 × 32 = 256 cached selections.
const PREF_CACHE_SHARD_CAPACITY: usize = 32;

/// Memoized preference selections — a thin typed wrapper over
/// [`ShardedCache`]. The [`crate::Personalizer`] consults it in
/// `select_preferences` unless disabled (`QP_DISABLE_PREF_CACHE`, or
/// per-request via `PersonalizeRequest::preference_cache(false)`).
#[derive(Debug)]
pub struct PreferenceCache {
    inner: ShardedCache<PrefKey, Vec<SelectedPreference>>,
}

impl Default for PreferenceCache {
    fn default() -> Self {
        PreferenceCache::new()
    }
}

impl PreferenceCache {
    /// A preference cache with the default geometry.
    pub fn new() -> Self {
        PreferenceCache::with_capacity(PREF_CACHE_SHARDS, PREF_CACHE_SHARD_CAPACITY)
    }

    /// A preference cache with explicit shard count and per-shard
    /// capacity. The `cache.pref.shard` failpoint is wired in: an
    /// injected error forces misses / drops inserts, an injected panic
    /// poisons a shard (which lookups then recover from).
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> Self {
        PreferenceCache {
            inner: ShardedCache::new(shards, shard_capacity)
                .with_failpoint_site("cache.pref.shard"),
        }
    }

    /// Looks up the memoized selection for this (profile, query,
    /// options) combination at the profile's current version.
    pub fn get(
        &self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
    ) -> Option<Arc<Vec<SelectedPreference>>> {
        self.inner.get(&PrefKey::new(profile, query, options))
    }

    /// Stores a selection computed for this combination.
    pub fn insert(
        &self,
        profile: &Profile,
        query: &Query,
        options: &PersonalizationOptions,
        selected: Vec<SelectedPreference>,
    ) -> Arc<Vec<SelectedPreference>> {
        self.inner.insert(PrefKey::new(profile, query, options), selected)
    }

    /// Eagerly drops every cached selection for `profile_id`, across all
    /// versions. Version-keyed lookups already never return stale
    /// entries; this reclaims their memory immediately.
    pub fn invalidate_profile(&self, profile_id: u64) {
        self.inner.retain(|k| k.profile_id != profile_id);
    }

    /// Drops every cached selection (hit/miss totals are kept).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Cached selections currently held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no selections.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lookups that found a memoized selection.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lookups that had to run selection.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let attrs: Vec<Attribute> = ["mid", "year"]
            .into_iter()
            .map(|a| Attribute::new(a, DataType::Int))
            .collect();
        c.add_relation("MOVIE", attrs, &[]).unwrap();
        c
    }

    fn parse(sql: &str) -> Query {
        qp_sql::parse_query(sql).expect("query parses")
    }

    #[test]
    fn key_tracks_profile_version() {
        let c = catalog();
        let mut p = Profile::new();
        let q = parse("SELECT year FROM movie");
        let opts = PersonalizationOptions::default();
        let k0 = PrefKey::new(&p, &q, &opts);
        p.add_selection(&c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        let k1 = PrefKey::new(&p, &q, &opts);
        assert_eq!(k0.profile_id, k1.profile_id);
        assert_ne!(k0.profile_version, k1.profile_version);
        assert_ne!(k0, k1);
    }

    #[test]
    fn key_distinguishes_options_but_not_l() {
        let p = Profile::new();
        let q = parse("SELECT year FROM movie");
        let a = PersonalizationOptions::default();
        let mut b = a;
        b.criterion = crate::select::SelectionCriterion::TopK(3);
        assert_ne!(PrefKey::new(&p, &q, &a).fingerprint, PrefKey::new(&p, &q, &b).fingerprint);
        // l is answer-shaping, not selection-shaping: same key.
        let mut c = a;
        c.l = a.l + 1;
        assert_eq!(PrefKey::new(&p, &q, &a), PrefKey::new(&p, &q, &c));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_error_forces_miss_and_drops_insert() {
        use qp_storage::failpoint::{self, FailAction, FailScenario};
        let _s = FailScenario::setup();
        let cache = PreferenceCache::new();
        let p = Profile::new();
        let q = parse("SELECT year FROM movie");
        let opts = PersonalizationOptions::default();
        cache.insert(&p, &q, &opts, vec![]);
        failpoint::arm("cache.pref.shard", FailAction::Error("io".into()));
        assert!(cache.get(&p, &q, &opts).is_none(), "fault forces a miss");
        assert_eq!(cache.misses(), 1);
        cache.insert(&p, &q, &opts, vec![]); // dropped under the fault
        failpoint::disarm("cache.pref.shard");
        assert_eq!(cache.len(), 1, "the faulted insert was not stored");
        assert!(cache.get(&p, &q, &opts).is_some(), "healthy path is back");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_panic_mid_insert_does_not_poison_lookups() {
        use qp_storage::failpoint::{self, FailAction, FailScenario};
        let _s = FailScenario::setup();
        let cache = PreferenceCache::new();
        let p = Profile::new();
        let q = parse("SELECT year FROM movie");
        let opts = PersonalizationOptions::default();
        cache.insert(&p, &q, &opts, vec![]);
        failpoint::arm("cache.pref.shard", FailAction::Panic("pref shard poison".into()));
        // The panic fires under the shard lock of *this key's* shard,
        // poisoning the very mutex the later lookup must take.
        std::thread::scope(|s| {
            let h = s.spawn(|| cache.insert(&p, &q, &opts, vec![]));
            assert!(h.join().is_err(), "the injected panic escaped the insert");
        });
        failpoint::disarm("cache.pref.shard");
        // Subsequent lookups recover the poisoned shard instead of failing.
        assert!(cache.get(&p, &q, &opts).is_some(), "lookup after poison still hits");
        cache.insert(&p, &q, &opts, vec![]);
        assert!(!cache.is_empty());
    }

    #[test]
    fn invalidate_profile_drops_only_that_profile() {
        let cache = PreferenceCache::new();
        let p1 = Profile::new();
        let p2 = Profile::new();
        let q = parse("SELECT year FROM movie");
        let opts = PersonalizationOptions::default();
        cache.insert(&p1, &q, &opts, vec![]);
        cache.insert(&p2, &q, &opts, vec![]);
        assert_eq!(cache.len(), 2);
        cache.invalidate_profile(p1.id());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&p1, &q, &opts).is_none());
        assert!(cache.get(&p2, &q, &opts).is_some());
    }
}
