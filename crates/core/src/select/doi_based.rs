//! Selection based on the desired doi of results (§4.2).
//!
//! Instead of a count K, the criterion designates a minimum degree of
//! interest `dR` for the returned tuples. Because tuples may *fail* the
//! preferences that are not selected, the algorithm must keep selecting
//! until even a tuple failing every unseen preference still clears `dR`.
//!
//! The absolute doi of any unseen preference is bounded by `dworst`, the
//! maximum over the queue of `|d⁻|` for selection paths and the join
//! degree for join paths (the doi of an implicit preference only shrinks
//! as its path grows). With `t` preferences selected and `N` estimated
//! related preferences in total, the algorithm stops as soon as
//!
//! ```text
//! r(d₁⁺, …, d_t⁺, −dworst, …, −dworst) ≥ dR      (formula 10)
//!             N − t times
//! ```

use std::collections::BinaryHeap;

use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::ranking::Ranking;
use crate::select::{
    dedup_key, expand, seed_queue, DedupSet, Entry, QueryContext, SelectedPreference,
};

/// Runs the doi-driven selection. `d_r` is the desired minimum doi of
/// results; `n_estimate` is the estimated number of related preferences
/// (§4.2 suggests the number of preferences stored in the profile, the
/// default when `None`).
pub fn doi_based(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    d_r: f64,
    ranking: &Ranking,
    n_estimate: Option<usize>,
) -> Result<Vec<SelectedPreference>, PrefError> {
    if !(0.0..=1.0).contains(&d_r) {
        return Err(PrefError::InvalidCriterion(format!(
            "desired result doi {d_r} outside [0, 1]"
        )));
    }
    let profile = graph.profile();
    let n = n_estimate.unwrap_or(profile.len());

    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    seed_queue(graph, query, 0.0, true, &mut seq, &mut heap);

    let mut selected: Vec<SelectedPreference> = Vec::new();
    let mut seen: DedupSet = DedupSet::new();
    let mut pos_degrees: Vec<f64> = Vec::new();

    // check the termination condition before selecting anything: maybe no
    // preferences are needed at all
    if satisfies(d_r, ranking, &pos_degrees, dworst(&heap, graph), n) {
        return Ok(selected);
    }

    while let Some(Entry { path, .. }) = heap.pop() {
        if path.selection.is_some() {
            if !seen.insert(dedup_key(&path)) {
                continue;
            }
            let sp = path.into_selected(profile);
            pos_degrees.push(sp.d_plus_peak(profile));
            selected.push(sp);
            if satisfies(d_r, ranking, &pos_degrees, dworst(&heap, graph), n) {
                break;
            }
        } else {
            expand(graph, query, &path, 0.0, true, &mut seq, &mut heap);
        }
    }
    Ok(selected)
}

/// `dworst`: the largest absolute failure doi any unseen preference can
/// have, computed over the current queue contents (§4.2).
fn dworst(heap: &BinaryHeap<Entry>, graph: &PersonalizationGraph<'_>) -> f64 {
    let profile = graph.profile();
    let mut worst: f64 = 0.0;
    for e in heap.iter() {
        let w = match e.path.selection {
            Some(sid) => {
                let s = profile.get(sid).as_selection().expect("selection id");
                e.path.join_degree(profile) * s.doi.d_minus_peak()
            }
            None => e.path.c, // join degree product bounds any extension
        };
        worst = worst.max(w);
    }
    worst
}

/// Formula (10): assume every unseen preference fails at `−dworst`.
fn satisfies(d_r: f64, ranking: &Ranking, pos: &[f64], dworst: f64, n: usize) -> bool {
    let unseen = n.saturating_sub(pos.len());
    let neg: Vec<f64> = if dworst > 0.0 { vec![-dworst; unseen] } else { vec![] };
    ranking.mixed(pos, &neg) >= d_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use crate::profile::Profile;
    use crate::ranking::{MixedKind, Ranking, RankingKind};
    use qp_sql::parse_query;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    /// Example 5 of the paper: P1 join, P2 negative genre, P3 positive
    /// genre.
    fn example5() -> (Catalog, Profile) {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("title", DataType::Text)],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &[],
        )
        .unwrap();
        let mut p = Profile::new();
        p.add_join(&c, ("MOVIE", "mid"), ("GENRE", "mid"), 1.0).unwrap();
        p.add_selection(&c, "GENRE", "genre", CompareOp::Eq, "musical", Doi::dislike(0.7).unwrap())
            .unwrap();
        p.add_selection(&c, "GENRE", "genre", CompareOp::Eq, "adventure", Doi::presence(0.9).unwrap())
            .unwrap();
        (c, p)
    }

    #[test]
    fn example5_selects_negative_preferences_too() {
        // With dR = 0.8 and the mixed ranking, selecting only the
        // adventure preference (d⁺ = 0.9) is not enough: a tuple failing
        // the unseen musical preference (d⁻ = −0.7) would fall below 0.8.
        let (c, p) = example5();
        let g = PersonalizationGraph::build(&p);
        let q =
            QueryContext::from_query(&c, &parse_query("select title from MOVIE").unwrap()).unwrap();
        let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
        let out = doi_based(&g, &q, 0.8, &ranking, None).unwrap();
        assert!(out.len() >= 2, "selected only {} preferences", out.len());
        // the negative musical preference is among the selected
        assert!(out.iter().any(|s| s.d_minus(&p) < 0.0));
    }

    #[test]
    fn low_target_selects_little() {
        let (c, p) = example5();
        let g = PersonalizationGraph::build(&p);
        let q =
            QueryContext::from_query(&c, &parse_query("select title from MOVIE").unwrap()).unwrap();
        let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
        let lo = doi_based(&g, &q, 0.05, &ranking, None).unwrap();
        let hi = doi_based(&g, &q, 0.9, &ranking, None).unwrap();
        assert!(lo.len() <= hi.len());
    }

    #[test]
    fn zero_target_selects_nothing_when_no_negatives() {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("year", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        let mut p = Profile::new();
        p.add_selection(&c, "MOVIE", "year", CompareOp::Gt, Value::Int(1990), Doi::presence(0.6).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select year from MOVIE").unwrap())
            .unwrap();
        let ranking = Ranking::default();
        // dR = 0: satisfied immediately (no negative preferences exist, so
        // dworst = 0 and r(∅) = 0 ≥ 0).
        let out = doi_based(&g, &q, 0.0, &ranking, None).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn selection_ordered_by_criticality() {
        let (c, p) = example5();
        let g = PersonalizationGraph::build(&p);
        let q =
            QueryContext::from_query(&c, &parse_query("select title from MOVIE").unwrap()).unwrap();
        let ranking = Ranking::new(RankingKind::Inflationary, MixedKind::Sum);
        let out = doi_based(&g, &q, 0.99, &ranking, None).unwrap();
        for w in out.windows(2) {
            assert!(w[0].criticality >= w[1].criticality - 1e-12);
        }
    }

    #[test]
    fn invalid_target_rejected() {
        let (c, p) = example5();
        let g = PersonalizationGraph::build(&p);
        let q =
            QueryContext::from_query(&c, &parse_query("select title from MOVIE").unwrap()).unwrap();
        assert!(doi_based(&g, &q, 1.5, &Ranking::default(), None).is_err());
        assert!(doi_based(&g, &q, -0.1, &Ranking::default(), None).is_err());
    }
}
