//! The FakeCrit preference selection algorithm (§4.1, Figure 5).
//!
//! A queue of paths is kept in order of decreasing `c · fc`. In each
//! round the head is popped: a selection path satisfying the criterion is
//! output immediately (the fake-criticality labels guarantee the order is
//! correct); a join path is expanded with every composable atomic
//! preference.

use std::collections::BinaryHeap;

use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::select::{
    dedup_key, expand, seed_queue, DedupSet, Entry, QueryContext, SelectedPreference,
    SelectionCriterion, SelectionStats,
};

/// Runs FakeCrit, returning the selected preferences in decreasing
/// criticality.
pub fn fakecrit(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    criterion: SelectionCriterion,
) -> Result<Vec<SelectedPreference>, PrefError> {
    fakecrit_with_stats(graph, query, criterion).map(|(s, _)| s)
}

/// Runs FakeCrit, additionally returning queue/expansion work counters
/// (the ablation against SPS).
pub fn fakecrit_with_stats(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    criterion: SelectionCriterion,
) -> Result<(Vec<SelectedPreference>, SelectionStats), PrefError> {
    criterion.validate()?;
    let profile = graph.profile();
    let c0 = criterion.c0();
    let k_limit = criterion.k_limit();
    let mut stats = SelectionStats::default();

    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    seed_queue(graph, query, c0, true, &mut seq, &mut heap);

    let mut selected: Vec<SelectedPreference> = Vec::new();
    let mut seen: DedupSet = DedupSet::new();

    while let Some(Entry { path, priority, .. }) = heap.pop() {
        stats.pops += 1;
        // K selected → criterion C(PK ∪ {P}) fails for any further path
        if k_limit.is_some_and(|k| selected.len() >= k) {
            break;
        }
        // every remaining completion is bounded by this priority
        if priority <= c0 {
            break;
        }
        if path.selection.is_some() {
            if seen.insert(dedup_key(&path)) {
                selected.push(path.into_selected(profile));
            }
        } else {
            stats.expansions += 1;
            expand(graph, query, &path, c0, true, &mut seq, &mut heap);
        }
    }
    stats.pushes = seq;
    Ok((selected, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use crate::profile::Profile;
    use qp_sql::parse_query;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    /// The Figure 4 graph: A→B (0.9), A→E (0.6), B→D (0.8), E→F (0.5),
    /// selection s1 on D with criticality 0.7, selection s2 on F with
    /// criticality 1.8.
    fn figure4() -> (Catalog, Profile) {
        let mut c = Catalog::new();
        for name in ["A", "B", "D", "E", "F"] {
            c.add_relation(
                name,
                vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
                &["id"],
            )
            .unwrap();
        }
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        p.add_join(&c, ("A", "id"), ("E", "id"), 0.6).unwrap();
        p.add_join(&c, ("B", "id"), ("D", "id"), 0.8).unwrap();
        p.add_join(&c, ("E", "id"), ("F", "id"), 0.5).unwrap();
        // s1: criticality 0.7
        p.add_selection(&c, "D", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.7).unwrap())
            .unwrap();
        // s2: criticality 1.8
        p.add_selection(&c, "F", "x", CompareOp::Eq, Value::Int(2), Doi::new(0.9, -0.9).unwrap())
            .unwrap();
        (c, p)
    }

    #[test]
    fn figure4_order_is_correct() {
        // ABDs1: c = 0.9·0.8·0.7 = 0.504
        // AEFs2: c = 0.6·0.5·1.8 = 0.54  — more critical despite the less
        // critical join prefix; a naive best-first on joins would output
        // ABDs1 first.
        let (c, p) = figure4();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(2)).unwrap();
        assert_eq!(out.len(), 2);
        assert!((out[0].criticality - 0.54).abs() < 1e-12, "got {}", out[0].criticality);
        assert!((out[1].criticality - 0.504).abs() < 1e-12);
        // output is ordered by decreasing criticality
        assert!(out[0].criticality >= out[1].criticality);
    }

    #[test]
    fn top1_stops_early() {
        let (c, p) = figure4();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(1)).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[0].criticality - 0.54).abs() < 1e-12);
    }

    #[test]
    fn threshold_criterion() {
        let (c, p) = figure4();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::Threshold(0.52)).unwrap();
        assert_eq!(out.len(), 1); // only AEFs2 (0.54) clears 0.52
        let out = fakecrit(&g, &q, SelectionCriterion::Threshold(0.1)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn atomic_selections_found_directly() {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("year", DataType::Int)],
            &["mid"],
        )
        .unwrap();
        let mut p = Profile::new();
        p.add_selection(&c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select year from MOVIE").unwrap())
            .unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].joins.is_empty());
        assert!((out[0].criticality - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cycles_avoided() {
        // A→B and B→A both present: paths must not loop.
        let mut c = Catalog::new();
        for name in ["A", "B"] {
            c.add_relation(
                name,
                vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
                &["id"],
            )
            .unwrap();
        }
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        p.add_join(&c, ("B", "id"), ("A", "id"), 0.9).unwrap();
        p.add_selection(&c, "B", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.5).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(10)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].joins.len(), 1);
    }

    #[test]
    fn conflict_check_skips_contradicted_preferences() {
        let mut c = Catalog::new();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &[],
        )
        .unwrap();
        let mut p = Profile::new();
        p.add_selection(&c, "GENRE", "genre", CompareOp::Eq, "drama", Doi::presence(0.9).unwrap())
            .unwrap();
        p.add_selection(&c, "GENRE", "genre", CompareOp::Eq, "comedy", Doi::presence(0.5).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        // Query already pins genre = 'comedy': the drama preference
        // conflicts and is skipped.
        let q = QueryContext::from_query(
            &c,
            &parse_query("select mid from GENRE where genre = 'comedy'").unwrap(),
        )
        .unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(10)).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[0].criticality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_zero_rejected() {
        let (c, p) = figure4();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        assert!(fakecrit(&g, &q, SelectionCriterion::TopK(0)).is_err());
    }

    #[test]
    fn empty_profile_selects_nothing() {
        let (c, _) = figure4();
        let p = Profile::new();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn multi_relation_query_attaches_everywhere() {
        let (c, p) = figure4();
        let g = PersonalizationGraph::build(&p);
        // query over A and E: s2 via E→F is now one hop (0.5·1.8 = 0.9)
        let q = QueryContext::from_query(
            &c,
            &parse_query("select A.x from A, E where A.id = E.id").unwrap(),
        )
        .unwrap();
        let out = fakecrit(&g, &q, SelectionCriterion::TopK(10)).unwrap();
        assert!((out[0].criticality - 0.9).abs() < 1e-12);
        // the A→E→F path is suppressed (E is in the query → cycle check),
        // so s2 appears once, via the E anchor.
        let s2_count = out
            .iter()
            .filter(|s| s.criticality > 0.5 && s.joins.len() == 1)
            .count();
        assert_eq!(s2_count, 1);
    }
}
