//! Preference selection (§4): extracting the top-K preferences related to
//! a query.
//!
//! A preference is (syntactically) related to a query if it maps to a path
//! of the personalization graph attached to a relation of the query. The
//! algorithms here build such paths in decreasing order of criticality:
//!
//! * [`sps::sps`] — the simple algorithm, which may only output an
//!   implicit selection once it is provably more critical than the
//!   *most-critical-selection-unseen* (bounded by `2 · c_J`, formula 8);
//! * [`fakecrit::fakecrit`] — Figure 5: a best-first traversal on
//!   `c · fc` that outputs selections immediately;
//! * [`doi_based::doi_based`] — §4.2: selection driven by the desired doi
//!   of results, using the `dworst` bound over the unseen preferences.

pub mod cache;
pub mod doi_based;
pub mod fakecrit;
pub mod sps;

pub use cache::{PrefKey, PreferenceCache};

use std::collections::HashSet;

use qp_sql::{BinaryOp, Expr, Query, TableRef};
use qp_storage::{AttrId, Catalog, RelId, Value};

use crate::doi::Doi;
use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::preference::{PrefId, SelectionPreference};
use crate::profile::Profile;

/// The criterion bounding how many preferences are selected (§4: "the
/// criterion is based on the degree of criticality of preferences").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionCriterion {
    /// The K most critical preferences.
    TopK(usize),
    /// All preferences with criticality strictly above the threshold.
    Threshold(f64),
    /// At most `k` preferences, each with criticality above `c0`.
    TopKThreshold {
        /// Maximum count.
        k: usize,
        /// Criticality cut-off.
        c0: f64,
    },
}

impl SelectionCriterion {
    /// The count limit, if any.
    pub fn k_limit(&self) -> Option<usize> {
        match self {
            SelectionCriterion::TopK(k) => Some(*k),
            SelectionCriterion::Threshold(_) => None,
            SelectionCriterion::TopKThreshold { k, .. } => Some(*k),
        }
    }

    /// The criticality cut-off (0 when none).
    pub fn c0(&self) -> f64 {
        match self {
            SelectionCriterion::TopK(_) => 0.0,
            SelectionCriterion::Threshold(c0) => *c0,
            SelectionCriterion::TopKThreshold { c0, .. } => *c0,
        }
    }

    /// Validates the criterion.
    pub fn validate(&self) -> Result<(), PrefError> {
        if let Some(0) = self.k_limit() {
            return Err(PrefError::InvalidCriterion("K must be at least 1".to_string()));
        }
        if !(0.0..=2.0).contains(&self.c0()) {
            return Err(PrefError::InvalidCriterion(format!(
                "criticality threshold {} outside [0, 2]",
                self.c0()
            )));
        }
        Ok(())
    }
}

/// Work counters of a selection-algorithm run — the ablation currency for
/// comparing SPS against FakeCrit (the paper: "experiments … have shown
/// that it is more efficient than the simple SPS algorithm").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SelectionStats {
    /// Paths inserted into the candidate queue.
    pub pushes: u64,
    /// Paths dequeued.
    pub pops: u64,
    /// Join paths expanded with their composable preferences.
    pub expansions: u64,
}

/// An implicit (or atomic) selection preference chosen by a selection
/// algorithm: a join path from a query relation plus a terminal selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedPreference {
    /// The query relation the path attaches to.
    pub anchor: RelId,
    /// Join preferences along the path, in order.
    pub joins: Vec<PrefId>,
    /// The terminal selection preference.
    pub selection: PrefId,
    /// Product of the join degrees (1 for atomic selections).
    pub join_degree: f64,
    /// Criticality of the implicit preference:
    /// `join_degree · c(selection)`.
    pub criticality: f64,
}

impl SelectedPreference {
    /// The composed doi (degrees multiplied by the join-degree product,
    /// §3.2 — Example 2: `0.8 · 1 · 0.9 = 0.72`).
    pub fn scaled_doi(&self, profile: &Profile) -> Doi {
        self.sel(profile).doi.scaled(self.join_degree)
    }

    /// The satisfaction peak `d⁺` of the composed preference.
    pub fn d_plus_peak(&self, profile: &Profile) -> f64 {
        self.sel(profile).doi.d_plus_peak() * self.join_degree
    }

    /// The failure degree `d⁻` of the composed preference (≤ 0).
    pub fn d_minus(&self, profile: &Profile) -> f64 {
        -self.sel(profile).doi.d_minus_peak() * self.join_degree
    }

    /// The terminal selection preference.
    pub fn sel<'p>(&self, profile: &'p Profile) -> &'p SelectionPreference {
        profile.get(self.selection).as_selection().expect("terminal selection")
    }

    /// Renders the implicit query element, e.g.
    /// `MOVIE.mid=GENRE.mid and GENRE.genre='comedy'`.
    pub fn describe(&self, profile: &Profile, catalog: &Catalog) -> String {
        let mut parts = Vec::new();
        for j in &self.joins {
            let jp = profile.get(*j).as_join().expect("join id");
            parts.push(format!("{}={}", catalog.attr_name(jp.from), catalog.attr_name(jp.to)));
        }
        let s = self.sel(profile);
        let op = match s.condition.op {
            crate::preference::CompareOp::Eq => "=",
            crate::preference::CompareOp::Neq => "<>",
            crate::preference::CompareOp::Lt => "<",
            crate::preference::CompareOp::Le => "<=",
            crate::preference::CompareOp::Gt => ">",
            crate::preference::CompareOp::Ge => ">=",
        };
        let value = match &s.condition.value {
            Value::Str(v) => format!("'{v}'"),
            other => other.to_string(),
        };
        parts.push(format!("{}{}{}", catalog.attr_name(s.attr), op, value));
        parts.join(" and ")
    }
}

/// What a selection algorithm needs to know about the query: the relations
/// it touches (paths attach to these) and any attribute the query already
/// binds to a constant (for the conflict check of Figure 5, step 1.1).
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// Distinct relations in the query's FROM list, in order.
    pub relations: Vec<RelId>,
    /// Attributes bound to constants by equality predicates.
    pub bound: Vec<(AttrId, Value)>,
}

impl QueryContext {
    /// Extracts the context from a parsed query. The query must be a
    /// single SPJ select over base relations.
    pub fn from_query(catalog: &Catalog, query: &Query) -> Result<Self, PrefError> {
        let selects = query.selects();
        if selects.len() != 1 {
            return Err(PrefError::UnsupportedQuery(
                "personalization applies to a single SELECT, not a UNION".to_string(),
            ));
        }
        let select = selects[0];
        if select.from.is_empty() {
            return Err(PrefError::UnsupportedQuery("query has no FROM relation".to_string()));
        }
        let mut relations = Vec::new();
        let mut binding_rel = Vec::new(); // (binding name, RelId)
        for tref in &select.from {
            match tref {
                TableRef::Relation { name, alias } => {
                    let rel = catalog.relation_by_name(name)?;
                    if !relations.contains(&rel.id) {
                        relations.push(rel.id);
                    }
                    binding_rel
                        .push((alias.clone().unwrap_or_else(|| name.clone()), rel.id));
                }
                TableRef::Derived { .. } => {
                    return Err(PrefError::UnsupportedQuery(
                        "personalization over derived tables is not supported".to_string(),
                    ))
                }
            }
        }
        let mut bound = Vec::new();
        if let Some(w) = &select.where_clause {
            for c in w.conjuncts() {
                if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
                    let pair = match (column_ref(left), literal_of(right)) {
                        (Some(col), Some(v)) => Some((col, v)),
                        _ => match (column_ref(right), literal_of(left)) {
                            (Some(col), Some(v)) => Some((col, v)),
                            _ => None,
                        },
                    };
                    if let Some(((table, name), v)) = pair {
                        if let Some(attr) = resolve_col(catalog, &binding_rel, table.as_deref(), &name)
                        {
                            bound.push((attr, v));
                        }
                    }
                }
            }
        }
        // A wildcard or plain projection is fine; just verify it parses as
        // SPJ-ish (no aggregates is not enforced here — the personalizer
        // rewrites projections explicitly).
        let _ = &select.items;
        Ok(QueryContext { relations, bound })
    }

    /// Whether a selection preference conflicts with the query: the query
    /// pins the preference's attribute to a constant that no tuple in the
    /// satisfaction region can have (Figure 5 step 1.1).
    pub fn conflicts(&self, pref: &SelectionPreference) -> bool {
        for (attr, v) in &self.bound {
            if *attr == pref.attr {
                let cond_holds = pref.condition.op.eval(v, &pref.condition.value);
                match cond_holds {
                    Some(holds) => {
                        // presence prefs need the condition to hold;
                        // absence prefs need it to fail
                        if holds != pref.is_presence() {
                            return true;
                        }
                    }
                    None => return false,
                }
            }
        }
        false
    }
}

/// Dispatches the configured selection algorithm over a prebuilt graph
/// and query context. Shared by the personalizer's selection phase and
/// the profile store's per-user precomputation, so both produce
/// identical selections for identical inputs.
pub(crate) fn run_algorithm(
    graph: &PersonalizationGraph<'_>,
    qc: &QueryContext,
    options: &crate::personalize::PersonalizationOptions,
) -> Result<Vec<SelectedPreference>, PrefError> {
    use crate::personalize::SelectionAlgorithm;
    match options.selection {
        SelectionAlgorithm::FakeCrit => fakecrit::fakecrit(graph, qc, options.criterion),
        SelectionAlgorithm::Sps => sps::sps(graph, qc, options.criterion),
        SelectionAlgorithm::DoiBased { d_r, n_estimate } => {
            doi_based::doi_based(graph, qc, d_r, &options.ranking, n_estimate)
        }
    }
}

fn column_ref(e: &Expr) -> Option<(Option<String>, String)> {
    match e {
        Expr::Column { table, name } => Some((table.clone(), name.clone())),
        _ => None,
    }
}

fn literal_of(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(l) => Some(match l {
            qp_sql::Literal::Null => Value::Null,
            qp_sql::Literal::Int(i) => Value::Int(*i),
            qp_sql::Literal::Float(x) => Value::Float(*x),
            qp_sql::Literal::Str(s) => Value::str(s.clone()),
            qp_sql::Literal::Bool(b) => Value::Bool(*b),
        }),
        _ => None,
    }
}

fn resolve_col(
    catalog: &Catalog,
    bindings: &[(String, RelId)],
    table: Option<&str>,
    name: &str,
) -> Option<AttrId> {
    match table {
        Some(t) => {
            let (_, rel) = bindings.iter().find(|(b, _)| b.eq_ignore_ascii_case(t))?;
            let r = catalog.relation(*rel);
            let idx = r.attr_index(name)?;
            Some(AttrId::new(*rel, idx as u32))
        }
        None => {
            let mut hit = None;
            for (_, rel) in bindings {
                if let Some(idx) = catalog.relation(*rel).attr_index(name) {
                    if hit.is_some() {
                        return None; // ambiguous
                    }
                    hit = Some(AttrId::new(*rel, idx as u32));
                }
            }
            hit
        }
    }
}

// --- shared path machinery ----------------------------------------------

/// A partial path during best-first traversal.
#[derive(Debug, Clone)]
pub(crate) struct Path {
    pub anchor: RelId,
    pub joins: Vec<PrefId>,
    pub selection: Option<PrefId>,
    /// Criticality: join-degree product for join paths, full criticality
    /// for selection paths.
    pub c: f64,
    /// Priority `c · fc` (equals `c` for selection paths); recorded for
    /// diagnostics and asserted monotone in tests.
    #[allow(dead_code)]
    pub priority: f64,
}

impl Path {
    /// The relation at the end of the join path (where expansion happens).
    pub fn end_rel(&self, profile: &Profile) -> RelId {
        match self.joins.last() {
            Some(j) => profile.get(*j).as_join().expect("join id").to.rel,
            None => self.anchor,
        }
    }

    /// Relations visited by the path (anchor plus each join target).
    pub fn visited(&self, profile: &Profile) -> Vec<RelId> {
        let mut v = vec![self.anchor];
        for j in &self.joins {
            v.push(profile.get(*j).as_join().expect("join id").to.rel);
        }
        v
    }

    /// Join-degree product of the path.
    pub fn join_degree(&self, profile: &Profile) -> f64 {
        self.joins
            .iter()
            .map(|j| profile.get(*j).as_join().expect("join id").degree)
            .product()
    }

    /// Converts a completed selection path into an output record.
    pub fn into_selected(self, profile: &Profile) -> SelectedPreference {
        let join_degree = self.join_degree(profile);
        SelectedPreference {
            anchor: self.anchor,
            joins: self.joins,
            selection: self.selection.expect("completed path"),
            join_degree,
            criticality: self.c,
        }
    }
}

/// Max-heap entry ordered by priority (ties broken by insertion order for
/// determinism).
#[derive(Debug)]
pub(crate) struct Entry {
    pub priority: f64,
    pub seq: u64,
    pub path: Path,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Seeds the traversal queue with the atomic preferences related to the
/// query (Figure 5, step 1), applying the conflict check and the
/// threshold/zero pruning.
pub(crate) fn seed_queue(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    c0: f64,
    use_fake_crit: bool,
    seq: &mut u64,
    heap: &mut std::collections::BinaryHeap<Entry>,
) {
    for &rel in &query.relations {
        for &sid in graph.selections_at(rel) {
            let s = graph.selection(sid);
            if query.conflicts(s) {
                continue;
            }
            let c = s.criticality();
            if c <= c0 {
                continue;
            }
            heap.push(Entry {
                priority: c,
                seq: next(seq),
                path: Path { anchor: rel, joins: vec![], selection: Some(sid), c, priority: c },
            });
        }
        for &jid in graph.joins_at(rel) {
            let j = graph.join(jid);
            if query.relations.contains(&j.to.rel) {
                continue; // would cycle back into the query
            }
            let c = j.degree;
            let fc = if use_fake_crit { graph.fake_criticality(jid) } else { 1.0 };
            let priority = c * fc;
            // Without fake criticality the only sound upper bound on a
            // completion of this join is 2·c (formula 8); prune on that.
            let bound = if use_fake_crit { priority } else { 2.0 * c };
            if bound <= c0 || priority <= 0.0 {
                continue;
            }
            heap.push(Entry {
                priority,
                seq: next(seq),
                path: Path { anchor: rel, joins: vec![jid], selection: None, c, priority },
            });
        }
    }
}

/// Expands a join path with every composable atomic preference (Figure 5,
/// step 2.3), pushing the children onto the heap.
pub(crate) fn expand(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    path: &Path,
    c0: f64,
    use_fake_crit: bool,
    seq: &mut u64,
    heap: &mut std::collections::BinaryHeap<Entry>,
) {
    let profile = graph.profile();
    let end = path.end_rel(profile);
    let visited = path.visited(profile);
    for &sid in graph.selections_at(end) {
        let s = graph.selection(sid);
        if query.conflicts(s) {
            continue;
        }
        let c = path.c * s.criticality();
        if c <= c0 || c <= 0.0 {
            continue;
        }
        let mut joins = path.joins.clone();
        joins.shrink_to_fit();
        heap.push(Entry {
            priority: c,
            seq: next(seq),
            path: Path { anchor: path.anchor, joins, selection: Some(sid), c, priority: c },
        });
    }
    for &jid in graph.joins_at(end) {
        let j = graph.join(jid);
        if visited.contains(&j.to.rel) || query.relations.contains(&j.to.rel) {
            continue; // acyclic paths only (§3.2)
        }
        let c = path.c * j.degree;
        let fc = if use_fake_crit { graph.fake_criticality(jid) } else { 1.0 };
        let priority = c * fc;
        let bound = if use_fake_crit { priority } else { 2.0 * c };
        if bound <= c0 || priority <= 0.0 {
            continue;
        }
        let mut joins = path.joins.clone();
        joins.push(jid);
        heap.push(Entry {
            priority,
            seq: next(seq),
            path: Path { anchor: path.anchor, joins, selection: None, c, priority },
        });
    }
}

pub(crate) fn next(seq: &mut u64) -> u64 {
    *seq += 1;
    *seq
}

/// Deduplication key: the same terminal selection from the same anchor is
/// kept only once (the most critical path wins under best-first order).
pub(crate) type DedupKey = (RelId, PrefId);

pub(crate) fn dedup_key(path: &Path) -> DedupKey {
    (path.anchor, path.selection.expect("selection path"))
}

pub(crate) type DedupSet = HashSet<DedupKey>;
