//! SPS — Simple Preference Selection (§4.1).
//!
//! Without fake-criticality labels, a best-first traversal cannot output
//! an implicit selection the moment it is constructed: a less critical
//! join prefix elsewhere in the queue might still complete into a more
//! critical selection. SPS therefore holds constructed selections back
//! until they are provably more critical than the
//! *most-critical-selection-unseen* (mcsu), whose worst-case estimate is
//! the most critical join currently known followed by a selection of
//! criticality 2 (formula 8): a selection may be output only when
//! `c_sel ≥ 2 · c_bestjoin`. Otherwise the best join is expanded first.
//!
//! This is the ablation baseline FakeCrit is measured against.

use std::collections::BinaryHeap;

use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::select::{
    dedup_key, expand, seed_queue, DedupSet, Entry, QueryContext, SelectedPreference,
    SelectionCriterion, SelectionStats,
};

/// Runs SPS, returning the selected preferences in decreasing criticality.
pub fn sps(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    criterion: SelectionCriterion,
) -> Result<Vec<SelectedPreference>, PrefError> {
    sps_with_stats(graph, query, criterion).map(|(s, _)| s)
}

/// Runs SPS, additionally returning queue/expansion work counters.
pub fn sps_with_stats(
    graph: &PersonalizationGraph<'_>,
    query: &QueryContext,
    criterion: SelectionCriterion,
) -> Result<(Vec<SelectedPreference>, SelectionStats), PrefError> {
    criterion.validate()?;
    let mut stats = SelectionStats::default();
    let profile = graph.profile();
    let c0 = criterion.c0();
    let k_limit = criterion.k_limit();

    // Two heaps: completed selection paths and expandable join paths,
    // both ordered by true criticality (fc is not used by SPS).
    let mut selections: BinaryHeap<Entry> = BinaryHeap::new();
    let mut joins: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    {
        let mut seeded: BinaryHeap<Entry> = BinaryHeap::new();
        seed_queue(graph, query, c0, false, &mut seq, &mut seeded);
        for e in seeded.into_vec() {
            if e.path.selection.is_some() {
                selections.push(e);
            } else {
                joins.push(e);
            }
        }
    }

    let mut selected: Vec<SelectedPreference> = Vec::new();
    let mut seen: DedupSet = DedupSet::new();

    loop {
        if k_limit.is_some_and(|k| selected.len() >= k) {
            break;
        }
        let best_sel_c = selections.peek().map(|e| e.path.c);
        let best_join_c = joins.peek().map(|e| e.path.c);
        match (best_sel_c, best_join_c) {
            (None, None) => break,
            (Some(cs), None) => {
                if cs <= c0 {
                    break;
                }
                let e = selections.pop().expect("peeked");
                stats.pops += 1;
                if seen.insert(dedup_key(&e.path)) {
                    selected.push(e.path.into_selected(profile));
                }
            }
            (sel, Some(cj)) => {
                // mcsu bound: any selection completing a join of
                // criticality cj has criticality at most 2·cj.
                let mcsu = 2.0 * cj;
                match sel {
                    Some(cs) if cs >= mcsu => {
                        if cs <= c0 {
                            break;
                        }
                        let e = selections.pop().expect("peeked");
                        stats.pops += 1;
                        if seen.insert(dedup_key(&e.path)) {
                            selected.push(e.path.into_selected(profile));
                        }
                    }
                    _ => {
                        // expand the most critical join
                        if mcsu <= c0 && sel.is_none_or(|cs| cs <= c0) {
                            break; // nothing reachable can clear the threshold
                        }
                        let e = joins.pop().expect("peeked");
                        stats.pops += 1;
                        stats.expansions += 1;
                        let mut children: BinaryHeap<Entry> = BinaryHeap::new();
                        expand(graph, query, &e.path, c0, false, &mut seq, &mut children);
                        for child in children.into_vec() {
                            if child.path.selection.is_some() {
                                selections.push(child);
                            } else {
                                joins.push(child);
                            }
                        }
                    }
                }
            }
        }
    }
    stats.pushes = seq;
    Ok((selected, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use crate::profile::Profile;
    use crate::select::fakecrit::fakecrit;
    use qp_sql::parse_query;
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn chain_profile() -> (Catalog, Profile) {
        let mut c = Catalog::new();
        for name in ["A", "B", "D", "E", "F"] {
            c.add_relation(
                name,
                vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
                &["id"],
            )
            .unwrap();
        }
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.9).unwrap();
        p.add_join(&c, ("A", "id"), ("E", "id"), 0.6).unwrap();
        p.add_join(&c, ("B", "id"), ("D", "id"), 0.8).unwrap();
        p.add_join(&c, ("E", "id"), ("F", "id"), 0.5).unwrap();
        p.add_selection(&c, "D", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.7).unwrap())
            .unwrap();
        p.add_selection(&c, "F", "x", CompareOp::Eq, Value::Int(2), Doi::new(0.9, -0.9).unwrap())
            .unwrap();
        (c, p)
    }

    #[test]
    fn sps_matches_fakecrit_output() {
        let (c, p) = chain_profile();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        for k in 1..=3 {
            let a = sps(&g, &q, SelectionCriterion::TopK(k)).unwrap();
            let b = fakecrit(&g, &q, SelectionCriterion::TopK(k)).unwrap();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn sps_figure4_order() {
        let (c, p) = chain_profile();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = sps(&g, &q, SelectionCriterion::TopK(2)).unwrap();
        assert!((out[0].criticality - 0.54).abs() < 1e-12);
        assert!((out[1].criticality - 0.504).abs() < 1e-12);
    }

    #[test]
    fn sps_threshold() {
        let (c, p) = chain_profile();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let out = sps(&g, &q, SelectionCriterion::Threshold(0.52)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fakecrit_does_less_work_on_dead_ends() {
        use crate::select::fakecrit::fakecrit_with_stats;
        // dead-end joins (nothing composable beyond them) are pruned by
        // fc = 0 in FakeCrit but must be expanded by SPS before it can
        // release any selection
        let mut c = Catalog::new();
        for name in ["A", "B", "D1", "D2", "D3"] {
            c.add_relation(
                name,
                vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
                &["id"],
            )
            .unwrap();
        }
        let mut p = Profile::new();
        for dead in ["D1", "D2", "D3"] {
            p.add_join(&c, ("A", "id"), (dead, "id"), 1.0).unwrap();
        }
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.4).unwrap();
        p.add_selection(&c, "B", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.5).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let (out_f, stats_f) = fakecrit_with_stats(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        let (out_s, stats_s) = sps_with_stats(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        assert_eq!(out_f, out_s);
        assert!(
            stats_f.expansions < stats_s.expansions,
            "fakecrit {stats_f:?} vs sps {stats_s:?}"
        );
        assert!(stats_f.pushes < stats_s.pushes);
    }

    #[test]
    fn sps_expands_more_than_fakecrit() {
        // Correctness is identical, but SPS must expand joins that
        // FakeCrit's labels prune: with a dead-end join (no selections
        // beyond it), FakeCrit never queues it (fc = 0), while SPS
        // expands it. We can't observe expansions directly here, but the
        // outputs still agree — the ablation benchmark measures the cost.
        let mut c = Catalog::new();
        for name in ["A", "B", "DEAD"] {
            c.add_relation(
                name,
                vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
                &["id"],
            )
            .unwrap();
        }
        let mut p = Profile::new();
        p.add_join(&c, ("A", "id"), ("DEAD", "id"), 1.0).unwrap();
        p.add_join(&c, ("A", "id"), ("B", "id"), 0.4).unwrap();
        p.add_selection(&c, "B", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.5).unwrap())
            .unwrap();
        let g = PersonalizationGraph::build(&p);
        let q = QueryContext::from_query(&c, &parse_query("select x from A").unwrap()).unwrap();
        let a = sps(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        let b = fakecrit(&g, &q, SelectionCriterion::TopK(5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
