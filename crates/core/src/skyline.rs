//! Skyline answers over preference satisfaction (§2).
//!
//! The paper positions skylines as a special case of qualitative
//! preference queries and notes "we do not, yet, support skylines".
//! This extension adds them on top of PPA's self-explanatory answers:
//! each tuple's *preference vector* — its satisfaction degree for every
//! selected preference (0 when failed, negative failure degrees count
//! against) — spans the space; a tuple is in the skyline iff no other
//! tuple dominates it (at least as good on every preference, strictly
//! better on one).
//!
//! Unlike the single-score ranking, the skyline surfaces *incomparable*
//! trade-offs: the W. Allen film that is a musical and the musical-free
//! film by someone else both survive.

use crate::answer::{PersonalizedAnswer, PersonalizedTuple};
use crate::profile::Profile;
use crate::select::SelectedPreference;

/// A tuple's satisfaction vector: one degree per selected preference
/// (positive when satisfied, the negative failure degree when failed).
pub fn preference_vector(
    tuple: &PersonalizedTuple,
    selected: &[SelectedPreference],
    profile: &Profile,
) -> Vec<f64> {
    let mut v = vec![0.0; selected.len()];
    for &i in &tuple.satisfied {
        if i < v.len() {
            v[i] = selected[i].d_plus_peak(profile);
        }
    }
    for &i in &tuple.failed {
        if i < v.len() {
            v[i] = selected[i].d_minus(profile);
        }
    }
    v
}

/// Whether `a` dominates `b`: at least as good on every dimension and
/// strictly better on at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Computes the skyline of a personalized answer by block-nested-loop
/// over the preference vectors. Tuples with identical vectors all stay
/// (they are incomparable trade-off-wise, merely tied).
pub fn skyline(
    answer: &PersonalizedAnswer,
    selected: &[SelectedPreference],
    profile: &Profile,
) -> PersonalizedAnswer {
    let vectors: Vec<Vec<f64>> = answer
        .tuples
        .iter()
        .map(|t| preference_vector(t, selected, profile))
        .collect();
    // block-nested-loop: keep a window of non-dominated candidates
    let mut window: Vec<usize> = Vec::new();
    'outer: for i in 0..vectors.len() {
        let mut j = 0;
        while j < window.len() {
            let w = window[j];
            if dominates(&vectors[w], &vectors[i]) {
                continue 'outer; // i is dominated
            }
            if dominates(&vectors[i], &vectors[w]) {
                window.swap_remove(j); // i knocks w out
            } else {
                j += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    PersonalizedAnswer {
        columns: answer.columns.clone(),
        tuples: window.into_iter().map(|i| answer.tuples[i].clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::PersonalizedTuple;
    use crate::doi::Doi;
    use crate::preference::{CompareOp, PrefId};
    use qp_storage::{Attribute, Catalog, DataType, Value};

    fn fixture() -> (Profile, Vec<SelectedPreference>) {
        let mut c = Catalog::new();
        c.add_relation(
            "M",
            vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
            &["id"],
        )
        .unwrap();
        let mut p = Profile::new();
        let a = p
            .add_selection(&c, "M", "x", CompareOp::Eq, Value::Int(1), Doi::presence(0.8).unwrap())
            .unwrap();
        let b = p
            .add_selection(&c, "M", "x", CompareOp::Eq, Value::Int(2), Doi::new(-0.5, 0.6).unwrap())
            .unwrap();
        let rel = c.relation_by_name("M").unwrap().id;
        let sel = |id: PrefId, crit: f64| SelectedPreference {
            anchor: rel,
            joins: vec![],
            selection: id,
            join_degree: 1.0,
            criticality: crit,
        };
        (p, vec![sel(a, 0.8), sel(b, 1.1)])
    }

    fn tuple(tid: u64, satisfied: Vec<usize>, failed: Vec<usize>, doi: f64) -> PersonalizedTuple {
        PersonalizedTuple { tuple_id: Some(tid), row: vec![], doi, satisfied, failed }
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 0.5], &[0.5, 0.5]));
        assert!(!dominates(&[1.0, 0.0], &[0.5, 0.5]));
        assert!(!dominates(&[0.5, 0.5], &[0.5, 0.5])); // equal: no strict edge
    }

    #[test]
    fn vectors_from_explanations() {
        let (p, sel) = fixture();
        let t = tuple(0, vec![0], vec![1], 0.3);
        let v = preference_vector(&t, &sel, &p);
        assert!((v[0] - 0.8).abs() < 1e-12);
        assert!((v[1] + 0.5).abs() < 1e-12); // failed: −|d⁻|
    }

    #[test]
    fn dominated_tuples_removed() {
        let (p, sel) = fixture();
        let answer = PersonalizedAnswer {
            columns: vec![],
            tuples: vec![
                tuple(0, vec![0, 1], vec![], 0.9), // satisfies both — dominates all
                tuple(1, vec![0], vec![1], 0.3),
                tuple(2, vec![1], vec![0], 0.2),
                tuple(3, vec![], vec![0, 1], -0.5),
            ],
        };
        let sky = skyline(&answer, &sel, &p);
        let ids: Vec<u64> = sky.tuples.iter().map(|t| t.tuple_id.unwrap()).collect();
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn incomparable_trade_offs_survive() {
        let (p, sel) = fixture();
        let answer = PersonalizedAnswer {
            columns: vec![],
            tuples: vec![
                tuple(1, vec![0], vec![1], 0.3), // good on pref 0, bad on 1
                tuple(2, vec![1], vec![0], 0.2), // good on pref 1, bad on 0
                tuple(3, vec![], vec![0, 1], -0.5), // dominated by both
            ],
        };
        let sky = skyline(&answer, &sel, &p);
        let ids: Vec<u64> = sky.tuples.iter().map(|t| t.tuple_id.unwrap()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn ties_all_stay() {
        let (p, sel) = fixture();
        let answer = PersonalizedAnswer {
            columns: vec![],
            tuples: vec![tuple(1, vec![0], vec![1], 0.3), tuple(2, vec![0], vec![1], 0.3)],
        };
        let sky = skyline(&answer, &sel, &p);
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn empty_answer() {
        let (p, sel) = fixture();
        let answer = PersonalizedAnswer::default();
        assert!(skyline(&answer, &sel, &p).is_empty());
    }
}
