//! The million-profile store: sharded, compact-encoded, lazily decoded.
//!
//! A [`ProfileStore`] keeps one encoded blob per registered user instead
//! of a parsed [`Profile`] — a parsed profile is a heap-heavy structure
//! (a `Vec` of preferences holding `Arc<str>` values, elastic functions,
//! dois), while the [`codec`] blob packs the same information into tens
//! of bytes using `qp_storage::encoding` (varints, small-int tags,
//! dictionary-interned strings). A million users fit in a few hundred
//! megabytes; the parsed form would take gigabytes.
//!
//! ## Sharding and lazy decode
//!
//! Users hash (by [`UserId`]) onto a fixed array of shards. Each shard
//! owns its user map **and** its string dictionary under one `RwLock`:
//! blobs reference dictionary ids, so profiles registered on the same
//! shard share one copy of every distinct string (genres, director
//! names, regions). [`ProfileStore::get`] clones an `Arc` out of the
//! shard under the read lock and returns a [`ProfileHandle`]; nothing is
//! decoded until [`ProfileHandle::profile`] is first called, at which
//! point the decoded [`Profile`] lands in a store-level sharded **LRU**
//! keyed by `(user_id, version)` (`profiles.decode.*` metrics count the
//! work, `profiles.decode.evict` the evictions). The LRU's capacity —
//! `QP_DECODE_CACHE` entries, default 65 536 — bounds decoded-profile
//! memory at the *hot* working set even when the whole registered
//! population cycles through; an evicted profile simply re-decodes from
//! its blob on the next use.
//!
//! ## Durability
//!
//! A store created with [`ProfileStore::new`] is in-memory, exactly as
//! before. [`ProfileStore::open`] attaches a directory: registrations
//! append checksummed records (blob + dictionary delta) to a segment
//! log before they apply in memory, checkpoints spill per-shard
//! snapshots and truncate the log, and reopening the directory replays
//! snapshot-then-tail — tolerating torn, truncated, or bit-flipped
//! tails by recovering the longest valid prefix (see
//! [`ProfileStore::recovery`]). A disk fault degrades the store to
//! **read-only** instead of crashing or lying: the failing registration
//! returns a typed [`PrefError::Persist`] and never becomes visible to
//! readers. The full design lives in the `store::persist` module docs
//! (`crates/core/src/store/persist.rs`) and DESIGN.md §"Durability &
//! recovery".
//!
//! ## Durable identity
//!
//! Decoded profiles carry the `(user_id, version)` identity
//! (`STORED_ID_BIT | user_id`, see [`crate::profile::STORED_ID_BIT`])
//! instead of a process-local id, so preference-selection cache keys for
//! stored profiles are stable across connections and restarts.
//! Re-registering a user replaces its entry wholesale with a bumped
//! version — readers holding the old handle keep a consistent old view
//! (old-or-new, never torn), and version-keyed caches stop matching.
//!
//! ## Selection precomputation
//!
//! Each entry carries a small per-user memo of preference selections
//! keyed by [`SelKey`] (query context + options fingerprint, **not**
//! query text — `SELECT title FROM movie` and `SELECT year FROM movie`
//! share a selection). [`ProfileStore::precompute`] fills the memo with
//! the top-K selection for every single-relation context at registration
//! time, so a repeat query's selection phase is a store lookup. The memo
//! dies with the entry on re-registration — version-bump invalidation
//! for free.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use qp_obs::MetricsRegistry;
use qp_storage::persist::RecoveryReport;
use qp_storage::Catalog;

use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::personalize::PersonalizationOptions;
use crate::profile::Profile;
use crate::select::{run_algorithm, QueryContext, SelectedPreference};

pub mod codec;
mod persist;

pub use persist::{CheckpointStats, FsyncPolicy, PersistOptions};

/// A store-assigned user identifier. The durable half of a stored
/// profile's `(user_id, version)` cache identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Key of a memoized per-user selection: the query *context* (relations
/// touched + constant-bound attributes) and the selection-shaping
/// options. Deliberately coarser than the LRU preference cache's
/// query-text key: any query over the same relations with the same bound
/// constants selects the same preferences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelKey {
    /// Canonical rendering of the query context.
    pub context: String,
    /// Criterion, selection algorithm, and ranking function — everything
    /// else selection depends on.
    pub fingerprint: String,
}

impl SelKey {
    /// Builds the key for a query context under the given options.
    pub fn new(qc: &QueryContext, options: &PersonalizationOptions) -> SelKey {
        use std::fmt::Write as _;
        let mut context = String::new();
        for r in &qc.relations {
            let _ = write!(context, "{},", r.0);
        }
        context.push('|');
        for (a, v) in &qc.bound {
            let _ = write!(context, "{}.{}={v:?};", a.rel.0, a.idx);
        }
        SelKey {
            context,
            fingerprint: format!(
                "{:?}|{:?}|{:?}",
                options.criterion, options.selection, options.ranking
            ),
        }
    }
}

/// Per-user cap on memoized selections: precomputation inserts one entry
/// per catalog relation (single digits), and ad-hoc contexts (multi-
/// relation queries, bound constants) age out oldest-first past the cap.
const SELECTIONS_PER_USER: usize = 32;

/// One user's shard-resident state: the encoded blob and the per-user
/// selection memo. Immutable except through interior mutability —
/// re-registration replaces the whole entry. Decoded profiles live in
/// the store-level [`DecodeCache`], not on the entry, so decode-side
/// memory stays bounded by the LRU capacity rather than the population.
#[derive(Debug)]
struct StoredProfile {
    user: u64,
    version: u64,
    blob: Box<[u8]>,
    prefs: u32,
    selections: RwLock<Vec<(SelKey, Arc<Vec<SelectedPreference>>)>>,
}

/// One shard: its user map and the string dictionary its blobs
/// reference.
#[derive(Debug, Default)]
struct ShardInner {
    users: HashMap<u64, Arc<StoredProfile>>,
    dict: qp_storage::StringDict,
}

#[derive(Debug, Default)]
struct Shard {
    inner: RwLock<ShardInner>,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default capacity (entries) of the decoded-profile LRU, overridable
/// with `QP_DECODE_CACHE`. Sized for a serving fleet's hot set: at a
/// few kilobytes per decoded profile this is on the order of hundreds
/// of megabytes fully warm, against gigabytes for a decoded million.
const DEFAULT_DECODE_CAPACITY: usize = 65_536;

fn decode_capacity_from_env() -> usize {
    std::env::var("QP_DECODE_CACHE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_DECODE_CAPACITY)
}

/// The store-level LRU over decoded profiles, sharded with the same
/// user-hash as the store itself so a [`ProfileHandle`] reuses its
/// shard index. Eviction is a linear scan for the stalest entry on
/// overflow only — per-shard capacities are small enough that the scan
/// beats the bookkeeping of an intrusive list (same trade as
/// `qp_exec`'s plan cache).
#[derive(Debug)]
struct DecodeCache {
    shards: Box<[Mutex<DecodeShard>]>,
    cap_per_shard: usize,
    cached: AtomicU64,
}

#[derive(Debug, Default)]
struct DecodeShard {
    map: HashMap<(u64, u64), DecodeEntry>,
    tick: u64,
}

#[derive(Debug)]
struct DecodeEntry {
    profile: Arc<Profile>,
    last_used: u64,
}

impl DecodeCache {
    fn new(shards: usize, capacity: usize) -> Self {
        DecodeCache {
            shards: (0..shards).map(|_| Mutex::new(DecodeShard::default())).collect(),
            cap_per_shard: (capacity / shards).max(1),
            cached: AtomicU64::new(0),
        }
    }

    fn lock_shard(&self, shard: usize) -> std::sync::MutexGuard<'_, DecodeShard> {
        self.shards[shard].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, shard: usize, key: (u64, u64)) -> Option<Arc<Profile>> {
        let mut guard = self.lock_shard(shard);
        guard.tick += 1;
        let tick = guard.tick;
        let entry = guard.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.profile))
    }

    /// Inserts a freshly decoded profile, evicting the stalest entry
    /// past capacity. If a racing decode won, the winner's `Arc` is
    /// returned so every caller shares one copy.
    fn insert(
        &self,
        shard: usize,
        key: (u64, u64),
        profile: Arc<Profile>,
        metrics: &MetricsRegistry,
    ) -> Arc<Profile> {
        let mut guard = self.lock_shard(shard);
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.map.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.profile);
        }
        if guard.map.len() >= self.cap_per_shard {
            if let Some(stalest) =
                guard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                guard.map.remove(&stalest);
                self.cached.fetch_sub(1, Ordering::Relaxed);
                metrics.counter("profiles.decode.evict").inc();
            }
        }
        guard.map.insert(key, DecodeEntry { profile: Arc::clone(&profile), last_used: tick });
        let cached = self.cached.fetch_add(1, Ordering::Relaxed) + 1;
        metrics.gauge("profiles.decode.cached").set(cached as i64);
        profile
    }

    fn len(&self) -> usize {
        self.cached.load(Ordering::Relaxed) as usize
    }
}

/// A cheap, clonable handle to one stored profile at one version.
///
/// The handle pins the entry (`Arc`), not the shard slot: a concurrent
/// re-registration replaces the slot but never mutates the entry this
/// handle sees, so a request that resolved its handle works against one
/// consistent `(user_id, version)` for its whole duration.
#[derive(Debug, Clone)]
pub struct ProfileHandle {
    shards: Arc<[Shard]>,
    shard: usize,
    entry: Arc<StoredProfile>,
    decoded: Arc<DecodeCache>,
    metrics: Arc<MetricsRegistry>,
}

impl ProfileHandle {
    /// The user this handle belongs to.
    pub fn user(&self) -> UserId {
        UserId(self.entry.user)
    }

    /// The store version of the profile this handle pins.
    pub fn version(&self) -> u64 {
        self.entry.version
    }

    /// Number of stored preferences — available without decoding.
    pub fn preferences(&self) -> usize {
        self.entry.prefs as usize
    }

    /// Size of the encoded blob in bytes (dictionary excluded).
    pub fn encoded_len(&self) -> usize {
        self.entry.blob.len()
    }

    /// The decoded profile, decoding on first use.
    ///
    /// The first call decodes the blob against the shard dictionary and
    /// inserts the result into the store's decode LRU under this
    /// version's `(user_id, version)` key (`profiles.decode.count` /
    /// `profiles.decode.us` record the work); later calls — from any
    /// clone of the handle, or any other handle to the same version —
    /// return the cached `Arc`. Past the LRU's capacity the stalest
    /// decoded profile is evicted (`profiles.decode.evict`) and simply
    /// re-decodes on its next use. The decoded profile carries the
    /// durable `(user_id, version)` identity.
    pub fn profile(&self) -> Result<Arc<Profile>, PrefError> {
        let key = (self.entry.user, self.entry.version);
        if let Some(p) = self.decoded.get(self.shard, key) {
            return Ok(p);
        }
        let started = Instant::now();
        let decoded = {
            let inner = read_lock(&self.shards[self.shard].inner);
            codec::decode_profile(&self.entry.blob, &inner.dict, self.entry.user, self.entry.version)?
        };
        self.metrics.counter("profiles.decode.count").inc();
        self.metrics.histogram("profiles.decode.us").observe(started.elapsed());
        // Two racing first calls both decode; insert returns whichever
        // Arc landed in the cache, so both callers share one copy.
        Ok(self.decoded.insert(self.shard, key, Arc::new(decoded), &self.metrics))
    }

    /// Looks up a memoized selection for this profile version
    /// (`profiles.select.hits` / `profiles.select.misses`).
    pub fn cached_selection(&self, key: &SelKey) -> Option<Arc<Vec<SelectedPreference>>> {
        let memo = read_lock(&self.entry.selections);
        match memo.iter().find(|(k, _)| k == key) {
            Some((_, sel)) => {
                self.metrics.counter("profiles.select.hits").inc();
                Some(Arc::clone(sel))
            }
            None => {
                self.metrics.counter("profiles.select.misses").inc();
                None
            }
        }
    }

    /// Memoizes a selection for this profile version. Past
    /// the per-user cap the oldest entry is evicted.
    pub fn cache_selection(
        &self,
        key: SelKey,
        selected: Vec<SelectedPreference>,
    ) -> Arc<Vec<SelectedPreference>> {
        let arc = Arc::new(selected);
        let mut memo = write_lock(&self.entry.selections);
        if let Some(slot) = memo.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = Arc::clone(&arc);
            return arc;
        }
        if memo.len() >= SELECTIONS_PER_USER {
            memo.remove(0);
        }
        memo.push((key, Arc::clone(&arc)));
        arc
    }

    /// Number of memoized selections currently held for this version.
    pub fn cached_selections(&self) -> usize {
        read_lock(&self.entry.selections).len()
    }
}

/// The sharded million-profile store. See the module docs for the
/// design; see [`crate::Personalizer::with_profile_store`] for wiring it
/// into the serving path.
#[derive(Debug)]
pub struct ProfileStore {
    shards: Arc<[Shard]>,
    /// External name → store id interning (the wire protocol registers
    /// profiles under string user keys).
    names: RwLock<HashMap<Arc<str>, UserId>>,
    next_user: AtomicU64,
    users: AtomicU64,
    blob_bytes: AtomicU64,
    /// Store-level LRU over decoded profiles.
    decoded: Arc<DecodeCache>,
    /// Durability handle; `None` for an in-memory store.
    persist: Option<persist::Persist>,
    /// What recovery found when this store was opened from disk.
    recovery: Option<RecoveryReport>,
    metrics: Arc<MetricsRegistry>,
}

/// Default shard count: enough to keep writer contention negligible for
/// a serving fleet of tens of threads, few enough that per-shard
/// dictionaries still share strings effectively.
const DEFAULT_SHARDS: usize = 64;

impl Default for ProfileStore {
    fn default() -> Self {
        ProfileStore::new()
    }
}

impl ProfileStore {
    /// A store with the default shard count and a private metrics
    /// registry.
    pub fn new() -> Self {
        ProfileStore::with_shards(DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ProfileStore {
            shards: (0..n).map(|_| Shard::default()).collect::<Vec<_>>().into(),
            names: RwLock::new(HashMap::new()),
            next_user: AtomicU64::new(1),
            users: AtomicU64::new(0),
            blob_bytes: AtomicU64::new(0),
            decoded: Arc::new(DecodeCache::new(n, decode_capacity_from_env())),
            persist: None,
            recovery: None,
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Opens (or initializes) a durable store rooted at `dir` with
    /// environment-derived options ([`PersistOptions::from_env`]).
    /// Recovery replays snapshot-then-log; what it kept and dropped is
    /// available from [`ProfileStore::recovery`].
    pub fn open(dir: impl AsRef<Path>) -> Result<ProfileStore, PrefError> {
        ProfileStore::open_with(dir, PersistOptions::from_env())
    }

    /// Opens a durable store with explicit [`PersistOptions`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: PersistOptions,
    ) -> Result<ProfileStore, PrefError> {
        let recovered = persist::recover(dir.as_ref(), options)?;
        let shards: Arc<[Shard]> = recovered.shards.into();
        let store = ProfileStore {
            decoded: Arc::new(DecodeCache::new(shards.len(), decode_capacity_from_env())),
            shards,
            names: RwLock::new(recovered.names),
            next_user: AtomicU64::new(recovered.next_user),
            users: AtomicU64::new(recovered.users),
            blob_bytes: AtomicU64::new(recovered.blob_bytes),
            persist: Some(recovered.handle),
            recovery: Some(recovered.report),
            metrics: recovered.metrics,
        };
        store.metrics.gauge("profiles.store.users").set(store.len() as i64);
        store
            .metrics
            .gauge("profiles.store.bytes")
            .set(store.blob_bytes.load(Ordering::Relaxed) as i64);
        Ok(store)
    }

    /// Replaces the metrics registry (builder-style), so the store's
    /// `profiles.*` metrics land in a server's shared registry. For a
    /// durable store pass the registry through
    /// [`PersistOptions::metrics`] instead, so recovery's gauges land
    /// in it too.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Replaces the decode LRU with one of `capacity` entries
    /// (builder-style; the default is `QP_DECODE_CACHE` or 65 536).
    /// Existing cached decodes are dropped.
    pub fn with_decode_capacity(mut self, capacity: usize) -> Self {
        self.decoded = Arc::new(DecodeCache::new(self.shards.len(), capacity));
        self
    }

    /// The registry receiving `profiles.*` metrics.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    fn shard_of(&self, user: u64) -> usize {
        // Fibonacci multiplicative hash: user ids are often dense
        // (0, 1, 2, …), and this spreads them uniformly across shards.
        let h = user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    /// Registers (or re-registers) a profile for `user`, encoding it
    /// into the user's shard. Returns the new store version: 1 for a
    /// first registration, previous + 1 after. Re-registration replaces
    /// the entry wholesale — concurrent readers keep the old entry's
    /// consistent view, and the old version's selection memo dies with
    /// it.
    ///
    /// On a durable store the registration record is appended to the
    /// segment log **before** the entry becomes visible; a disk fault
    /// (real or injected) returns [`PrefError::Persist`] without
    /// applying, and degrades the store to read-only — see
    /// [`ProfileStore::read_only`]. An in-memory store never errors.
    pub fn register(&self, user: UserId, profile: &Profile) -> Result<u64, PrefError> {
        self.register_inner(user, profile, None)
    }

    fn register_inner(
        &self,
        user: UserId,
        profile: &Profile,
        name: Option<&str>,
    ) -> Result<u64, PrefError> {
        if let Some(p) = &self.persist {
            if let Some(reason) = p.degraded_reason() {
                return Err(qp_storage::PersistError::ReadOnly { reason }.into());
            }
        }
        let shard = self.shard_of(user.0);
        let mut buf = Vec::new();
        let (version, replaced_len) = {
            let mut inner = write_lock(&self.shards[shard].inner);
            let inner = &mut *inner;
            let dict_start = inner.dict.len();
            codec::encode_profile(profile, &mut inner.dict, &mut buf);
            let previous = inner.users.get(&user.0);
            let version = previous.map_or(1, |e| e.version + 1);
            let replaced_len = previous.map_or(0, |e| e.blob.len());
            if let Some(p) = &self.persist {
                // Logged inside the shard write lock: the segment sees
                // this shard's dictionary deltas in dictionary order,
                // which replay depends on. (Lock order is shard → WAL
                // everywhere; nothing takes a shard lock while holding
                // the WAL.) On failure the in-memory state is *not*
                // updated — the interned dictionary strings stay, which
                // is harmless (no blob references them), and the store
                // is read-only from here on.
                let prefs = profile.len() as u64;
                let dict = &inner.dict;
                p.append_register(&self.metrics, |lsn, rec| {
                    persist::encode_register(
                        rec,
                        lsn,
                        user.0,
                        version,
                        prefs,
                        shard as u64,
                        dict_start as u64,
                        &dict.entries()[dict_start..],
                        &buf,
                        name,
                    );
                })?;
            }
            let entry = Arc::new(StoredProfile {
                user: user.0,
                version,
                blob: buf.into_boxed_slice(),
                prefs: profile.len() as u32,
                selections: RwLock::new(Vec::new()),
            });
            let blob_len = entry.blob.len();
            if inner.users.insert(user.0, entry).is_none() {
                self.users.fetch_add(1, Ordering::Relaxed);
            }
            self.blob_bytes.fetch_add(blob_len as u64, Ordering::Relaxed);
            (version, replaced_len)
        };
        self.blob_bytes.fetch_sub(replaced_len as u64, Ordering::Relaxed);
        self.metrics.counter("profiles.registered").inc();
        self.metrics.gauge("profiles.store.users").set(self.users.load(Ordering::Relaxed) as i64);
        self.metrics
            .gauge("profiles.store.bytes")
            .set(self.blob_bytes.load(Ordering::Relaxed) as i64);
        if let Some(p) = &self.persist {
            if p.wants_checkpoint() {
                // Inline auto-checkpoint past the WAL-growth threshold.
                // The registration itself is already durable; a
                // checkpoint fault degrades the store but must not fail
                // this call.
                let _ = persist::checkpoint(self, true);
            }
        }
        Ok(version)
    }

    /// Registers a profile under an external string user key, interning
    /// the key on first use. Returns the store id and new version. The
    /// name→id binding persists with the registration record on a
    /// durable store.
    pub fn register_named(
        &self,
        name: &str,
        profile: &Profile,
    ) -> Result<(UserId, u64), PrefError> {
        // NB: the read guard must drop before the write lock is taken —
        // binding the lookup first ends the guard's borrow (a `match` on
        // `read_lock(..).get(..)` would hold the read guard across the
        // arms and self-deadlock).
        let known = read_lock(&self.names).get(name).copied();
        let user = match known {
            Some(id) => id,
            None => {
                let mut names = write_lock(&self.names);
                match names.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = UserId(self.next_user.fetch_add(1, Ordering::Relaxed));
                        names.insert(Arc::from(name), id);
                        id
                    }
                }
            }
        };
        let version = self.register_inner(user, profile, Some(name))?;
        Ok((user, version))
    }

    /// Resolves an external user key to its store id.
    pub fn lookup_named(&self, name: &str) -> Option<UserId> {
        read_lock(&self.names).get(name).copied()
    }

    /// Fetches a handle to the user's current profile version
    /// (`profiles.lookup.hits` / `profiles.lookup.misses`). Nothing is
    /// decoded.
    pub fn get(&self, user: UserId) -> Option<ProfileHandle> {
        let shard = self.shard_of(user.0);
        let entry = read_lock(&self.shards[shard].inner).users.get(&user.0).map(Arc::clone);
        match entry {
            Some(entry) => {
                self.metrics.counter("profiles.lookup.hits").inc();
                Some(ProfileHandle {
                    shards: Arc::clone(&self.shards),
                    shard,
                    entry,
                    decoded: Arc::clone(&self.decoded),
                    metrics: Arc::clone(&self.metrics),
                })
            }
            None => {
                self.metrics.counter("profiles.lookup.misses").inc();
                None
            }
        }
    }

    /// Registered users.
    pub fn len(&self) -> usize {
        self.users.load(Ordering::Relaxed) as usize
    }

    /// True when no profile is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of encoded profile blobs (excluding dictionaries; see
    /// [`ProfileStore::dict_bytes`]).
    pub fn encoded_bytes(&self) -> u64 {
        self.blob_bytes.load(Ordering::Relaxed)
    }

    /// Total payload bytes of the per-shard string dictionaries.
    pub fn dict_bytes(&self) -> u64 {
        self.shards.iter().map(|s| read_lock(&s.inner).dict.payload_bytes() as u64).sum()
    }

    /// Drops every user's memoized preference selections, returning how
    /// many memo entries were dropped. This is the wholesale fallback for
    /// schema/catalog changes (see [`crate::Maintainer::publish_schema`]):
    /// selection depends on the catalog, so a catalog change can silently
    /// change what a memoized selection *should* contain. Pure data
    /// publishes must NOT call this — selection never reads table data,
    /// so its memos outlive data epochs by design.
    pub fn clear_selection_memos(&self) -> usize {
        let mut dropped = 0;
        for shard in self.shards.iter() {
            let inner = read_lock(&shard.inner);
            for entry in inner.users.values() {
                let mut memo = write_lock(&entry.selections);
                dropped += memo.len();
                memo.clear();
            }
        }
        dropped
    }

    /// Decoded profiles currently held by the decode LRU.
    pub fn decoded_cached(&self) -> usize {
        self.decoded.len()
    }

    /// True when this store persists to a directory.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// The directory a durable store persists into.
    pub fn data_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir())
    }

    /// What crash recovery kept and dropped when this store was opened
    /// from disk; `None` for an in-memory store.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The degradation reason if a disk fault has forced this store
    /// read-only; `None` while healthy (or in-memory). Reads always
    /// keep serving; only registrations are refused.
    pub fn read_only(&self) -> Option<String> {
        self.persist.as_ref().and_then(|p| p.degraded_reason())
    }

    /// Bytes in the live segment log (buffered appends included).
    pub fn wal_bytes(&self) -> u64 {
        self.persist.as_ref().map_or(0, |p| p.wal_len())
    }

    /// Flushes buffered registration records to disk (fsyncing under
    /// the `always`/`batch` policies). `Ok` on an in-memory store. A
    /// failure degrades the store to read-only and surfaces typed.
    pub fn flush(&self) -> Result<(), PrefError> {
        match &self.persist {
            None => Ok(()),
            Some(p) => Ok(p.flush(&self.metrics)?),
        }
    }

    /// Runs a checkpoint now: rotates the segment log, spills every
    /// shard into `snapshot.qps`, prunes superseded segments. Returns
    /// `None` on an in-memory store. Recovery after a checkpoint
    /// replays the snapshot plus only the live segment's tail.
    pub fn checkpoint(&self) -> Result<Option<CheckpointStats>, PrefError> {
        Ok(persist::checkpoint(self, false)?)
    }

    /// Order-insensitive FNV-1a digest of the full logical contents:
    /// every shard's dictionary and user entries (id, version, pref
    /// count, blob bytes), the name→id map, and the id allocator. Two
    /// stores with equal digests serve byte-identical blobs — the
    /// recovery tests' definition of "same store".
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(FNV_PRIME);
            }
        }
        let mut digest = FNV_OFFSET;
        mix(&mut digest, &(self.shards.len() as u64).to_le_bytes());
        for shard in self.shards.iter() {
            let inner = read_lock(&shard.inner);
            let mut h = FNV_OFFSET;
            for s in inner.dict.entries() {
                mix(&mut h, &(s.len() as u64).to_le_bytes());
                mix(&mut h, s.as_bytes());
            }
            let mut users: Vec<&u64> = inner.users.keys().collect();
            users.sort_unstable();
            for user in users {
                let e = &inner.users[user];
                mix(&mut h, &e.user.to_le_bytes());
                mix(&mut h, &e.version.to_le_bytes());
                mix(&mut h, &u64::from(e.prefs).to_le_bytes());
                mix(&mut h, &(e.blob.len() as u64).to_le_bytes());
                mix(&mut h, &e.blob);
            }
            mix(&mut digest, &h.to_le_bytes());
        }
        let names = read_lock(&self.names);
        let mut sorted: Vec<(&Arc<str>, &UserId)> = names.iter().collect();
        sorted.sort_unstable_by_key(|(n, _)| Arc::clone(*n));
        for (name, id) in sorted {
            mix(&mut digest, &(name.len() as u64).to_le_bytes());
            mix(&mut digest, name.as_bytes());
            mix(&mut digest, &id.0.to_le_bytes());
        }
        mix(&mut digest, &self.next_user.load(Ordering::Relaxed).to_le_bytes());
        digest
    }

    /// Precomputes the user's top-K selections for every single-relation
    /// query context in `catalog` under `options`, filling the per-user
    /// memo so repeat queries resolve selection as a store lookup
    /// (`profiles.select.precomputed` counts memo entries written).
    /// Returns the number of contexts precomputed.
    pub fn precompute(
        &self,
        user: UserId,
        catalog: &Catalog,
        options: &PersonalizationOptions,
    ) -> Result<usize, PrefError> {
        let handle = self.get(user).ok_or(PrefError::UnknownUser { user: user.0 })?;
        let profile = handle.profile()?;
        let graph = PersonalizationGraph::build(&profile);
        let mut contexts = 0u64;
        for relation in catalog.relations() {
            let qc = QueryContext { relations: vec![relation.id], bound: vec![] };
            let selected = run_algorithm(&graph, &qc, options)?;
            handle.cache_selection(SelKey::new(&qc, options), selected);
            contexts += 1;
        }
        self.metrics.counter("profiles.select.precomputed").add(contexts);
        Ok(contexts as usize)
    }
}

impl Drop for ProfileStore {
    fn drop(&mut self) {
        // Best-effort: hand buffered registration records to the OS (and
        // the platter, under `always`/`batch`) so a clean drop loses
        // nothing. Faults here have no caller to surface to; the store
        // is gone either way.
        if self.persist.is_some() {
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use crate::profile::STORED_ID_BIT;
    use qp_storage::{Attribute, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c
    }

    fn sample_profile(c: &Catalog) -> Profile {
        let mut p = Profile::new();
        p.add_selection(c, "GENRE", "genre", CompareOp::Eq, "comedy", Doi::presence(0.9).unwrap())
            .unwrap();
        p.add_selection(c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        p.add_join(c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        p
    }

    #[test]
    fn register_get_decode_round_trip() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        let version = store.register(UserId(7), &p).unwrap();
        assert_eq!(version, 1);
        assert_eq!(store.len(), 1);
        assert!(store.encoded_bytes() > 0);

        let handle = store.get(UserId(7)).expect("registered");
        assert_eq!(handle.preferences(), 3);
        let decoded = handle.profile().expect("decodes");
        assert_eq!(*decoded, p, "decoded content equals the registered profile");
        assert_eq!(decoded.id(), STORED_ID_BIT | 7);
        assert_eq!(decoded.version(), 1);
        assert!(decoded.is_stored());
    }

    #[test]
    fn decode_happens_once_per_entry() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(1), &sample_profile(&c)).unwrap();
        let h1 = store.get(UserId(1)).unwrap();
        let h2 = store.get(UserId(1)).unwrap();
        let p1 = h1.profile().unwrap();
        let p2 = h2.profile().unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "both handles share the decoded Arc");
        assert_eq!(store.metrics().counter("profiles.decode.count").get(), 1);
    }

    #[test]
    fn reregistration_bumps_version_and_drops_memo() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        store.register(UserId(3), &p).unwrap();
        let old = store.get(UserId(3)).unwrap();
        old.cache_selection(
            SelKey { context: "x".into(), fingerprint: "y".into() },
            vec![],
        );
        assert_eq!(old.cached_selections(), 1);

        let v2 = store.register(UserId(3), &p).unwrap();
        assert_eq!(v2, 2);
        let new = store.get(UserId(3)).unwrap();
        assert_eq!(new.version(), 2);
        assert_eq!(new.cached_selections(), 0, "memo died with the old version");
        // the old handle still reads its own consistent version
        assert_eq!(old.version(), 1);
        assert_eq!(old.profile().unwrap().version(), 1);
        assert_eq!(new.profile().unwrap().version(), 2);
        assert_eq!(store.len(), 1, "re-registration is not a new user");
    }

    #[test]
    fn named_registration_interns_once() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        let (id1, v1) = store.register_named("al", &p).unwrap();
        let (id2, v2) = store.register_named("al", &p).unwrap();
        assert_eq!(id1, id2);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(store.lookup_named("al"), Some(id1));
        assert_eq!(store.lookup_named("bea"), None);
        let (id3, _) = store.register_named("bea", &p).unwrap();
        assert_ne!(id1, id3);
    }

    #[test]
    fn precompute_fills_per_relation_memo() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(9), &sample_profile(&c)).unwrap();
        let options = PersonalizationOptions::default();
        let n = store.precompute(UserId(9), &c, &options).unwrap();
        assert_eq!(n, 2, "one context per catalog relation");
        let handle = store.get(UserId(9)).unwrap();
        assert_eq!(handle.cached_selections(), 2);

        // A lookup through the same context key hits.
        let qc = QueryContext { relations: vec![c.relation_by_name("MOVIE").unwrap().id], bound: vec![] };
        let hit = handle.cached_selection(&SelKey::new(&qc, &options));
        assert!(hit.is_some(), "single-relation context was precomputed");
        assert!(!hit.unwrap().is_empty(), "profile has preferences related to MOVIE");
    }

    #[test]
    fn unknown_user_is_typed() {
        let store = ProfileStore::new();
        assert!(store.get(UserId(42)).is_none());
        let err = store.precompute(UserId(42), &catalog(), &PersonalizationOptions::default());
        assert!(matches!(err, Err(PrefError::UnknownUser { user: 42 })));
    }

    #[test]
    fn memo_caps_per_user() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(5), &sample_profile(&c)).unwrap();
        let handle = store.get(UserId(5)).unwrap();
        for i in 0..(SELECTIONS_PER_USER + 10) {
            handle.cache_selection(
                SelKey { context: format!("ctx{i}"), fingerprint: "f".into() },
                vec![],
            );
        }
        assert_eq!(handle.cached_selections(), SELECTIONS_PER_USER);
        // oldest evicted, newest kept
        assert!(handle
            .cached_selection(&SelKey { context: "ctx0".into(), fingerprint: "f".into() })
            .is_none());
        let last = format!("ctx{}", SELECTIONS_PER_USER + 9);
        assert!(handle
            .cached_selection(&SelKey { context: last, fingerprint: "f".into() })
            .is_some());
    }

    #[test]
    fn decode_lru_evicts_and_redecodes() {
        let c = catalog();
        let store = ProfileStore::with_shards(1).with_decode_capacity(2);
        let p = sample_profile(&c);
        for u in 0..5 {
            store.register(UserId(u), &p).unwrap();
        }
        for u in 0..5 {
            let decoded = store.get(UserId(u)).unwrap().profile().unwrap();
            assert_eq!(decoded.id(), STORED_ID_BIT | u);
        }
        assert_eq!(store.metrics().counter("profiles.decode.count").get(), 5);
        assert_eq!(store.metrics().counter("profiles.decode.evict").get(), 3);
        assert_eq!(store.decoded_cached(), 2, "cache holds exactly its capacity");
        // An evicted profile re-decodes correctly (and counts as a new decode).
        let again = store.get(UserId(0)).unwrap().profile().unwrap();
        assert_eq!(again.id(), STORED_ID_BIT);
        assert_eq!(*again, p);
        assert_eq!(store.metrics().counter("profiles.decode.count").get(), 6);
    }

    #[test]
    fn digest_tracks_content_not_insertion_order() {
        let c = catalog();
        let p = sample_profile(&c);
        let mut q = Profile::new();
        q.add_selection(&c, "GENRE", "genre", CompareOp::Eq, "drama", Doi::presence(0.4).unwrap())
            .unwrap();

        let a = ProfileStore::new();
        a.register(UserId(1), &p).unwrap();
        a.register(UserId(2), &q).unwrap();
        let b = ProfileStore::new();
        b.register(UserId(2), &q).unwrap();
        b.register(UserId(1), &p).unwrap();
        // Same content — registration order of distinct users does not
        // change the digest (dictionaries intern in first-seen order, but
        // these two profiles land on different shards... when they share
        // one shard the dict order differs, so use the default sharding).
        assert_eq!(a.digest(), b.digest());

        let d = ProfileStore::new();
        d.register(UserId(1), &p).unwrap();
        assert_ne!(a.digest(), d.digest(), "missing user changes the digest");
        d.register(UserId(2), &p).unwrap();
        assert_ne!(a.digest(), d.digest(), "different blob changes the digest");
    }
}
