//! The million-profile store: sharded, compact-encoded, lazily decoded.
//!
//! A [`ProfileStore`] keeps one encoded blob per registered user instead
//! of a parsed [`Profile`] — a parsed profile is a heap-heavy structure
//! (a `Vec` of preferences holding `Arc<str>` values, elastic functions,
//! dois), while the [`codec`] blob packs the same information into tens
//! of bytes using `qp_storage::encoding` (varints, small-int tags,
//! dictionary-interned strings). A million users fit in a few hundred
//! megabytes; the parsed form would take gigabytes.
//!
//! ## Sharding and lazy decode
//!
//! Users hash (by [`UserId`]) onto a fixed array of shards. Each shard
//! owns its user map **and** its string dictionary under one `RwLock`:
//! blobs reference dictionary ids, so profiles registered on the same
//! shard share one copy of every distinct string (genres, director
//! names, regions). [`ProfileStore::get`] clones an `Arc` out of the
//! shard under the read lock and returns a [`ProfileHandle`]; nothing is
//! decoded until [`ProfileHandle::profile`] is first called, at which
//! point the decoded [`Profile`] is cached on the shard-resident entry
//! (`profiles.decode.*` metrics count the work). Memory for decoded
//! profiles therefore grows with the *active* working set, not with the
//! registered population.
//!
//! ## Durable identity
//!
//! Decoded profiles carry the `(user_id, version)` identity
//! (`STORED_ID_BIT | user_id`, see [`crate::profile::STORED_ID_BIT`])
//! instead of a process-local id, so preference-selection cache keys for
//! stored profiles are stable across connections and restarts.
//! Re-registering a user replaces its entry wholesale with a bumped
//! version — readers holding the old handle keep a consistent old view
//! (old-or-new, never torn), and version-keyed caches stop matching.
//!
//! ## Selection precomputation
//!
//! Each entry carries a small per-user memo of preference selections
//! keyed by [`SelKey`] (query context + options fingerprint, **not**
//! query text — `SELECT title FROM movie` and `SELECT year FROM movie`
//! share a selection). [`ProfileStore::precompute`] fills the memo with
//! the top-K selection for every single-relation context at registration
//! time, so a repeat query's selection phase is a store lookup. The memo
//! dies with the entry on re-registration — version-bump invalidation
//! for free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use qp_obs::MetricsRegistry;
use qp_storage::Catalog;

use crate::error::PrefError;
use crate::graph::PersonalizationGraph;
use crate::personalize::PersonalizationOptions;
use crate::profile::Profile;
use crate::select::{run_algorithm, QueryContext, SelectedPreference};

pub mod codec;

/// A store-assigned user identifier. The durable half of a stored
/// profile's `(user_id, version)` cache identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Key of a memoized per-user selection: the query *context* (relations
/// touched + constant-bound attributes) and the selection-shaping
/// options. Deliberately coarser than the LRU preference cache's
/// query-text key: any query over the same relations with the same bound
/// constants selects the same preferences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelKey {
    /// Canonical rendering of the query context.
    pub context: String,
    /// Criterion, selection algorithm, and ranking function — everything
    /// else selection depends on.
    pub fingerprint: String,
}

impl SelKey {
    /// Builds the key for a query context under the given options.
    pub fn new(qc: &QueryContext, options: &PersonalizationOptions) -> SelKey {
        use std::fmt::Write as _;
        let mut context = String::new();
        for r in &qc.relations {
            let _ = write!(context, "{},", r.0);
        }
        context.push('|');
        for (a, v) in &qc.bound {
            let _ = write!(context, "{}.{}={v:?};", a.rel.0, a.idx);
        }
        SelKey {
            context,
            fingerprint: format!(
                "{:?}|{:?}|{:?}",
                options.criterion, options.selection, options.ranking
            ),
        }
    }
}

/// Per-user cap on memoized selections: precomputation inserts one entry
/// per catalog relation (single digits), and ad-hoc contexts (multi-
/// relation queries, bound constants) age out oldest-first past the cap.
const SELECTIONS_PER_USER: usize = 32;

/// One user's shard-resident state: the encoded blob, the lazily decoded
/// profile, and the per-user selection memo. Immutable except through
/// interior mutability — re-registration replaces the whole entry.
#[derive(Debug)]
struct StoredProfile {
    user: u64,
    version: u64,
    blob: Box<[u8]>,
    prefs: u32,
    decoded: OnceLock<Arc<Profile>>,
    selections: RwLock<Vec<(SelKey, Arc<Vec<SelectedPreference>>)>>,
}

/// One shard: its user map and the string dictionary its blobs
/// reference.
#[derive(Debug, Default)]
struct ShardInner {
    users: HashMap<u64, Arc<StoredProfile>>,
    dict: qp_storage::StringDict,
}

#[derive(Debug, Default)]
struct Shard {
    inner: RwLock<ShardInner>,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A cheap, clonable handle to one stored profile at one version.
///
/// The handle pins the entry (`Arc`), not the shard slot: a concurrent
/// re-registration replaces the slot but never mutates the entry this
/// handle sees, so a request that resolved its handle works against one
/// consistent `(user_id, version)` for its whole duration.
#[derive(Debug, Clone)]
pub struct ProfileHandle {
    shards: Arc<[Shard]>,
    shard: usize,
    entry: Arc<StoredProfile>,
    metrics: Arc<MetricsRegistry>,
}

impl ProfileHandle {
    /// The user this handle belongs to.
    pub fn user(&self) -> UserId {
        UserId(self.entry.user)
    }

    /// The store version of the profile this handle pins.
    pub fn version(&self) -> u64 {
        self.entry.version
    }

    /// Number of stored preferences — available without decoding.
    pub fn preferences(&self) -> usize {
        self.entry.prefs as usize
    }

    /// Size of the encoded blob in bytes (dictionary excluded).
    pub fn encoded_len(&self) -> usize {
        self.entry.blob.len()
    }

    /// The decoded profile, decoding on first use.
    ///
    /// The first call decodes the blob against the shard dictionary and
    /// caches the result on the entry (`profiles.decode.count` /
    /// `profiles.decode.us` record the work); later calls — from any
    /// clone of the handle — return the cached `Arc`. The decoded
    /// profile carries the durable `(user_id, version)` identity.
    pub fn profile(&self) -> Result<Arc<Profile>, PrefError> {
        if let Some(p) = self.entry.decoded.get() {
            return Ok(Arc::clone(p));
        }
        let started = Instant::now();
        let decoded = {
            let inner = read_lock(&self.shards[self.shard].inner);
            codec::decode_profile(&self.entry.blob, &inner.dict, self.entry.user, self.entry.version)?
        };
        self.metrics.counter("profiles.decode.count").inc();
        self.metrics.histogram("profiles.decode.us").observe(started.elapsed());
        // Two racing first calls both decode; the loser's copy is dropped
        // and both return the one that landed in the cell.
        let arc = Arc::new(decoded);
        let _ = self.entry.decoded.set(Arc::clone(&arc));
        Ok(self.entry.decoded.get().map(Arc::clone).unwrap_or(arc))
    }

    /// Looks up a memoized selection for this profile version
    /// (`profiles.select.hits` / `profiles.select.misses`).
    pub fn cached_selection(&self, key: &SelKey) -> Option<Arc<Vec<SelectedPreference>>> {
        let memo = read_lock(&self.entry.selections);
        match memo.iter().find(|(k, _)| k == key) {
            Some((_, sel)) => {
                self.metrics.counter("profiles.select.hits").inc();
                Some(Arc::clone(sel))
            }
            None => {
                self.metrics.counter("profiles.select.misses").inc();
                None
            }
        }
    }

    /// Memoizes a selection for this profile version. Past
    /// the per-user cap the oldest entry is evicted.
    pub fn cache_selection(
        &self,
        key: SelKey,
        selected: Vec<SelectedPreference>,
    ) -> Arc<Vec<SelectedPreference>> {
        let arc = Arc::new(selected);
        let mut memo = write_lock(&self.entry.selections);
        if let Some(slot) = memo.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = Arc::clone(&arc);
            return arc;
        }
        if memo.len() >= SELECTIONS_PER_USER {
            memo.remove(0);
        }
        memo.push((key, Arc::clone(&arc)));
        arc
    }

    /// Number of memoized selections currently held for this version.
    pub fn cached_selections(&self) -> usize {
        read_lock(&self.entry.selections).len()
    }
}

/// The sharded million-profile store. See the module docs for the
/// design; see [`crate::Personalizer::with_profile_store`] for wiring it
/// into the serving path.
#[derive(Debug)]
pub struct ProfileStore {
    shards: Arc<[Shard]>,
    /// External name → store id interning (the wire protocol registers
    /// profiles under string user keys).
    names: RwLock<HashMap<Arc<str>, UserId>>,
    next_user: AtomicU64,
    users: AtomicU64,
    blob_bytes: AtomicU64,
    metrics: Arc<MetricsRegistry>,
}

/// Default shard count: enough to keep writer contention negligible for
/// a serving fleet of tens of threads, few enough that per-shard
/// dictionaries still share strings effectively.
const DEFAULT_SHARDS: usize = 64;

impl Default for ProfileStore {
    fn default() -> Self {
        ProfileStore::new()
    }
}

impl ProfileStore {
    /// A store with the default shard count and a private metrics
    /// registry.
    pub fn new() -> Self {
        ProfileStore::with_shards(DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ProfileStore {
            shards: (0..n).map(|_| Shard::default()).collect::<Vec<_>>().into(),
            names: RwLock::new(HashMap::new()),
            next_user: AtomicU64::new(1),
            users: AtomicU64::new(0),
            blob_bytes: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Replaces the metrics registry (builder-style), so the store's
    /// `profiles.*` metrics land in a server's shared registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The registry receiving `profiles.*` metrics.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    fn shard_of(&self, user: u64) -> usize {
        // Fibonacci multiplicative hash: user ids are often dense
        // (0, 1, 2, …), and this spreads them uniformly across shards.
        let h = user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    /// Registers (or re-registers) a profile for `user`, encoding it
    /// into the user's shard. Returns the new store version: 1 for a
    /// first registration, previous + 1 after. Re-registration replaces
    /// the entry wholesale — concurrent readers keep the old entry's
    /// consistent view, and the old version's selection memo dies with
    /// it.
    pub fn register(&self, user: UserId, profile: &Profile) -> u64 {
        let shard = self.shard_of(user.0);
        let mut buf = Vec::new();
        let (version, replaced_len) = {
            let mut inner = write_lock(&self.shards[shard].inner);
            let inner = &mut *inner;
            codec::encode_profile(profile, &mut inner.dict, &mut buf);
            let previous = inner.users.get(&user.0);
            let version = previous.map_or(1, |e| e.version + 1);
            let replaced_len = previous.map_or(0, |e| e.blob.len());
            let entry = Arc::new(StoredProfile {
                user: user.0,
                version,
                blob: buf.into_boxed_slice(),
                prefs: profile.len() as u32,
                decoded: OnceLock::new(),
                selections: RwLock::new(Vec::new()),
            });
            let blob_len = entry.blob.len();
            if inner.users.insert(user.0, entry).is_none() {
                self.users.fetch_add(1, Ordering::Relaxed);
            }
            self.blob_bytes.fetch_add(blob_len as u64, Ordering::Relaxed);
            (version, replaced_len)
        };
        self.blob_bytes.fetch_sub(replaced_len as u64, Ordering::Relaxed);
        self.metrics.counter("profiles.registered").inc();
        self.metrics.gauge("profiles.store.users").set(self.users.load(Ordering::Relaxed) as i64);
        self.metrics
            .gauge("profiles.store.bytes")
            .set(self.blob_bytes.load(Ordering::Relaxed) as i64);
        version
    }

    /// Registers a profile under an external string user key, interning
    /// the key on first use. Returns the store id and new version.
    pub fn register_named(&self, name: &str, profile: &Profile) -> (UserId, u64) {
        // NB: the read guard must drop before the write lock is taken —
        // binding the lookup first ends the guard's borrow (a `match` on
        // `read_lock(..).get(..)` would hold the read guard across the
        // arms and self-deadlock).
        let known = read_lock(&self.names).get(name).copied();
        let user = match known {
            Some(id) => id,
            None => {
                let mut names = write_lock(&self.names);
                match names.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = UserId(self.next_user.fetch_add(1, Ordering::Relaxed));
                        names.insert(Arc::from(name), id);
                        id
                    }
                }
            }
        };
        let version = self.register(user, profile);
        (user, version)
    }

    /// Resolves an external user key to its store id.
    pub fn lookup_named(&self, name: &str) -> Option<UserId> {
        read_lock(&self.names).get(name).copied()
    }

    /// Fetches a handle to the user's current profile version
    /// (`profiles.lookup.hits` / `profiles.lookup.misses`). Nothing is
    /// decoded.
    pub fn get(&self, user: UserId) -> Option<ProfileHandle> {
        let shard = self.shard_of(user.0);
        let entry = read_lock(&self.shards[shard].inner).users.get(&user.0).map(Arc::clone);
        match entry {
            Some(entry) => {
                self.metrics.counter("profiles.lookup.hits").inc();
                Some(ProfileHandle {
                    shards: Arc::clone(&self.shards),
                    shard,
                    entry,
                    metrics: Arc::clone(&self.metrics),
                })
            }
            None => {
                self.metrics.counter("profiles.lookup.misses").inc();
                None
            }
        }
    }

    /// Registered users.
    pub fn len(&self) -> usize {
        self.users.load(Ordering::Relaxed) as usize
    }

    /// True when no profile is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of encoded profile blobs (excluding dictionaries; see
    /// [`ProfileStore::dict_bytes`]).
    pub fn encoded_bytes(&self) -> u64 {
        self.blob_bytes.load(Ordering::Relaxed)
    }

    /// Total payload bytes of the per-shard string dictionaries.
    pub fn dict_bytes(&self) -> u64 {
        self.shards.iter().map(|s| read_lock(&s.inner).dict.payload_bytes() as u64).sum()
    }

    /// Precomputes the user's top-K selections for every single-relation
    /// query context in `catalog` under `options`, filling the per-user
    /// memo so repeat queries resolve selection as a store lookup
    /// (`profiles.select.precomputed` counts memo entries written).
    /// Returns the number of contexts precomputed.
    pub fn precompute(
        &self,
        user: UserId,
        catalog: &Catalog,
        options: &PersonalizationOptions,
    ) -> Result<usize, PrefError> {
        let handle = self.get(user).ok_or(PrefError::UnknownUser { user: user.0 })?;
        let profile = handle.profile()?;
        let graph = PersonalizationGraph::build(&profile);
        let mut contexts = 0u64;
        for relation in catalog.relations() {
            let qc = QueryContext { relations: vec![relation.id], bound: vec![] };
            let selected = run_algorithm(&graph, &qc, options)?;
            handle.cache_selection(SelKey::new(&qc, options), selected);
            contexts += 1;
        }
        self.metrics.counter("profiles.select.precomputed").add(contexts);
        Ok(contexts as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::Doi;
    use crate::preference::CompareOp;
    use crate::profile::STORED_ID_BIT;
    use qp_storage::{Attribute, DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c
    }

    fn sample_profile(c: &Catalog) -> Profile {
        let mut p = Profile::new();
        p.add_selection(c, "GENRE", "genre", CompareOp::Eq, "comedy", Doi::presence(0.9).unwrap())
            .unwrap();
        p.add_selection(c, "MOVIE", "year", CompareOp::Lt, Value::Int(1980), Doi::dislike(0.7).unwrap())
            .unwrap();
        p.add_join(c, ("MOVIE", "mid"), ("GENRE", "mid"), 0.8).unwrap();
        p
    }

    #[test]
    fn register_get_decode_round_trip() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        let version = store.register(UserId(7), &p);
        assert_eq!(version, 1);
        assert_eq!(store.len(), 1);
        assert!(store.encoded_bytes() > 0);

        let handle = store.get(UserId(7)).expect("registered");
        assert_eq!(handle.preferences(), 3);
        let decoded = handle.profile().expect("decodes");
        assert_eq!(*decoded, p, "decoded content equals the registered profile");
        assert_eq!(decoded.id(), STORED_ID_BIT | 7);
        assert_eq!(decoded.version(), 1);
        assert!(decoded.is_stored());
    }

    #[test]
    fn decode_happens_once_per_entry() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(1), &sample_profile(&c));
        let h1 = store.get(UserId(1)).unwrap();
        let h2 = store.get(UserId(1)).unwrap();
        let p1 = h1.profile().unwrap();
        let p2 = h2.profile().unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "both handles share the decoded Arc");
        assert_eq!(store.metrics().counter("profiles.decode.count").get(), 1);
    }

    #[test]
    fn reregistration_bumps_version_and_drops_memo() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        store.register(UserId(3), &p);
        let old = store.get(UserId(3)).unwrap();
        old.cache_selection(
            SelKey { context: "x".into(), fingerprint: "y".into() },
            vec![],
        );
        assert_eq!(old.cached_selections(), 1);

        let v2 = store.register(UserId(3), &p);
        assert_eq!(v2, 2);
        let new = store.get(UserId(3)).unwrap();
        assert_eq!(new.version(), 2);
        assert_eq!(new.cached_selections(), 0, "memo died with the old version");
        // the old handle still reads its own consistent version
        assert_eq!(old.version(), 1);
        assert_eq!(old.profile().unwrap().version(), 1);
        assert_eq!(new.profile().unwrap().version(), 2);
        assert_eq!(store.len(), 1, "re-registration is not a new user");
    }

    #[test]
    fn named_registration_interns_once() {
        let c = catalog();
        let store = ProfileStore::new();
        let p = sample_profile(&c);
        let (id1, v1) = store.register_named("al", &p);
        let (id2, v2) = store.register_named("al", &p);
        assert_eq!(id1, id2);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(store.lookup_named("al"), Some(id1));
        assert_eq!(store.lookup_named("bea"), None);
        let (id3, _) = store.register_named("bea", &p);
        assert_ne!(id1, id3);
    }

    #[test]
    fn precompute_fills_per_relation_memo() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(9), &sample_profile(&c));
        let options = PersonalizationOptions::default();
        let n = store.precompute(UserId(9), &c, &options).unwrap();
        assert_eq!(n, 2, "one context per catalog relation");
        let handle = store.get(UserId(9)).unwrap();
        assert_eq!(handle.cached_selections(), 2);

        // A lookup through the same context key hits.
        let qc = QueryContext { relations: vec![c.relation_by_name("MOVIE").unwrap().id], bound: vec![] };
        let hit = handle.cached_selection(&SelKey::new(&qc, &options));
        assert!(hit.is_some(), "single-relation context was precomputed");
        assert!(!hit.unwrap().is_empty(), "profile has preferences related to MOVIE");
    }

    #[test]
    fn unknown_user_is_typed() {
        let store = ProfileStore::new();
        assert!(store.get(UserId(42)).is_none());
        let err = store.precompute(UserId(42), &catalog(), &PersonalizationOptions::default());
        assert!(matches!(err, Err(PrefError::UnknownUser { user: 42 })));
    }

    #[test]
    fn memo_caps_per_user() {
        let c = catalog();
        let store = ProfileStore::new();
        store.register(UserId(5), &sample_profile(&c));
        let handle = store.get(UserId(5)).unwrap();
        for i in 0..(SELECTIONS_PER_USER + 10) {
            handle.cache_selection(
                SelKey { context: format!("ctx{i}"), fingerprint: "f".into() },
                vec![],
            );
        }
        assert_eq!(handle.cached_selections(), SELECTIONS_PER_USER);
        // oldest evicted, newest kept
        assert!(handle
            .cached_selection(&SelKey { context: "ctx0".into(), fingerprint: "f".into() })
            .is_none());
        let last = format!("ctx{}", SELECTIONS_PER_USER + 9);
        assert!(handle
            .cached_selection(&SelKey { context: last, fingerprint: "f".into() })
            .is_some());
    }
}
