//! The compact preference codec: profiles ⇄ store blobs.
//!
//! Builds on `qp_storage::encoding` (varints, small-int tags,
//! dictionary-interned strings) and adds the preference-level layout:
//!
//! ```text
//! blob       := count:varint pref*
//! pref       := 0x01 selection | 0x02 join
//! selection  := attr op:u8 value degree degree      (on_true, on_false)
//! join       := attr attr degree_f64:f64v           (from, to)
//! attr       := rel:varint idx:varint
//! value      := qp_storage::encoding value
//! degree     := 0x00 exact:f64v
//!             | 0x01 shape center:f64v width:f64v peak:f64v
//! shape      := 0x00 triangular
//!             | 0x01 trapezoidal plateau:f64v
//!             | 0x02 cosine
//! f64v       := varint of the bit pattern, byte-swapped so common
//!               constants (round degrees, integral widths) stay short
//! ```
//!
//! Attribute ids are stored raw (`rel`, `idx` ordinals): blobs are
//! decoded against the same catalog they were encoded under, so no name
//! resolution — and no catalog at all — is needed to decode. Validation
//! already happened when the profile was built; decode reconstructs the
//! structs field-by-field.
//!
//! The encoding is **byte-stable**: decode followed by re-encode (even
//! into a fresh dictionary) reproduces the exact input bytes, because
//! dictionary ids are assigned in first-appearance order and every
//! encoder choice is canonical. The property test in
//! `tests/profile_store.rs` pins this.

use qp_storage::encoding::{
    decode_value, encode_value, put_f64, put_u64, DecodeError, Reader,
};
use qp_storage::{AttrId, RelId, StringDict};

use crate::doi::{Degree, Doi};
use crate::elastic::{ElasticFunction, ElasticShape};
use crate::error::PrefError;
use crate::preference::{
    CompareOp, JoinPreference, Preference, SelCondition, SelectionPreference,
};
use crate::profile::Profile;

const PREF_SELECTION: u8 = 0x01;
const PREF_JOIN: u8 = 0x02;

const DEGREE_EXACT: u8 = 0x00;
const DEGREE_ELASTIC: u8 = 0x01;

const SHAPE_TRIANGULAR: u8 = 0x00;
const SHAPE_TRAPEZOIDAL: u8 = 0x01;
const SHAPE_COSINE: u8 = 0x02;

fn put_attr(buf: &mut Vec<u8>, attr: AttrId) {
    put_u64(buf, attr.rel.0 as u64);
    put_u64(buf, attr.idx as u64);
}

fn take_attr(r: &mut Reader<'_>) -> Result<AttrId, DecodeError> {
    let rel = r.take_u64()? as u32;
    let idx = r.take_u64()? as u32;
    Ok(AttrId { rel: RelId(rel), idx })
}

fn put_degree(buf: &mut Vec<u8>, degree: &Degree) {
    match degree {
        Degree::Exact(d) => {
            buf.push(DEGREE_EXACT);
            put_f64(buf, *d);
        }
        Degree::Elastic(e) => {
            buf.push(DEGREE_ELASTIC);
            match e.shape {
                ElasticShape::Triangular => buf.push(SHAPE_TRIANGULAR),
                ElasticShape::Trapezoidal { plateau } => {
                    buf.push(SHAPE_TRAPEZOIDAL);
                    put_f64(buf, plateau);
                }
                ElasticShape::Cosine => buf.push(SHAPE_COSINE),
            }
            put_f64(buf, e.center);
            put_f64(buf, e.width);
            put_f64(buf, e.peak);
        }
    }
}

fn take_degree(r: &mut Reader<'_>) -> Result<Degree, DecodeError> {
    let at = r.pos();
    match r.take_u8()? {
        DEGREE_EXACT => Ok(Degree::Exact(r.take_f64()?)),
        DEGREE_ELASTIC => {
            let shape_at = r.pos();
            let shape = match r.take_u8()? {
                SHAPE_TRIANGULAR => ElasticShape::Triangular,
                SHAPE_TRAPEZOIDAL => {
                    ElasticShape::Trapezoidal { plateau: r.take_f64()? }
                }
                SHAPE_COSINE => ElasticShape::Cosine,
                tag => return Err(DecodeError::BadTag { tag, at: shape_at }),
            };
            let center = r.take_f64()?;
            let width = r.take_f64()?;
            let peak = r.take_f64()?;
            Ok(Degree::Elastic(ElasticFunction { center, width, peak, shape }))
        }
        tag => Err(DecodeError::BadTag { tag, at }),
    }
}

fn op_code(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Neq => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    }
}

fn take_op(r: &mut Reader<'_>) -> Result<CompareOp, DecodeError> {
    let at = r.pos();
    Ok(match r.take_u8()? {
        0 => CompareOp::Eq,
        1 => CompareOp::Neq,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        5 => CompareOp::Ge,
        tag => return Err(DecodeError::BadTag { tag, at }),
    })
}

/// Encodes a profile into `buf`, interning strings into `dict`.
///
/// The blob does **not** embed the dictionary — the store keeps one
/// dictionary per shard so all of a shard's profiles share string
/// storage. To decode, pass the same (or a superset) dictionary to
/// [`decode_profile`].
pub fn encode_profile(profile: &Profile, dict: &mut StringDict, buf: &mut Vec<u8>) {
    put_u64(buf, profile.len() as u64);
    for (_, pref) in profile.iter() {
        match pref {
            Preference::Selection(s) => {
                buf.push(PREF_SELECTION);
                put_attr(buf, s.attr);
                buf.push(op_code(s.condition.op));
                encode_value(buf, &s.condition.value, dict);
                put_degree(buf, &s.doi.on_true);
                put_degree(buf, &s.doi.on_false);
            }
            Preference::Join(j) => {
                buf.push(PREF_JOIN);
                put_attr(buf, j.from);
                put_attr(buf, j.to);
                put_f64(buf, j.degree);
            }
        }
    }
}

/// Decodes a blob produced by [`encode_profile`] against `dict`,
/// stamping the durable `(user_id, version)` store identity on the
/// result.
pub fn decode_profile(
    blob: &[u8],
    dict: &StringDict,
    user_id: u64,
    version: u64,
) -> Result<Profile, PrefError> {
    let mut r = Reader::new(blob);
    let count = r.take_u64()? as usize;
    let mut prefs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let at = r.pos();
        match r.take_u8()? {
            PREF_SELECTION => {
                let attr = take_attr(&mut r)?;
                let op = take_op(&mut r)?;
                let value = decode_value(&mut r, dict)?;
                let on_true = take_degree(&mut r)?;
                let on_false = take_degree(&mut r)?;
                prefs.push(Preference::Selection(SelectionPreference {
                    attr,
                    condition: SelCondition { op, value },
                    doi: Doi { on_true, on_false },
                }));
            }
            PREF_JOIN => {
                let from = take_attr(&mut r)?;
                let to = take_attr(&mut r)?;
                let degree = r.take_f64()?;
                prefs.push(Preference::Join(JoinPreference { from, to, degree }));
            }
            tag => return Err(DecodeError::BadTag { tag, at }.into()),
        }
    }
    Ok(Profile::from_stored_parts(prefs, user_id, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::{Attribute, Catalog, DataType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "MOVIE",
            vec![
                Attribute::new("mid", DataType::Int),
                Attribute::new("year", DataType::Int),
                Attribute::new("duration", DataType::Int),
            ],
            &["mid"],
        )
        .unwrap();
        c.add_relation(
            "GENRE",
            vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
            &["mid", "genre"],
        )
        .unwrap();
        c
    }

    const TEXT: &str = "\
doi(GENRE.genre = 'musical') = (-0.9, 0.7)
doi(MOVIE.year < 1980) = (-0.7, 0)
doi(MOVIE.duration = around(120, 30)) = (e(0.7), e(-0.5))
doi(MOVIE.mid = GENRE.mid) = (0.8)
";

    #[test]
    fn profile_round_trips() {
        let c = catalog();
        let p = Profile::parse(&c, TEXT).unwrap();
        let mut dict = StringDict::new();
        let mut blob = Vec::new();
        encode_profile(&p, &mut dict, &mut blob);
        let back = decode_profile(&blob, &dict, 11, 3).unwrap();
        assert_eq!(back, p, "content round trips");
        assert_eq!(back.id(), crate::profile::STORED_ID_BIT | 11);
        assert_eq!(back.version(), 3);
    }

    #[test]
    fn encoding_is_compact() {
        let c = catalog();
        let p = Profile::parse(&c, TEXT).unwrap();
        let mut dict = StringDict::new();
        let mut blob = Vec::new();
        encode_profile(&p, &mut dict, &mut blob);
        // 4 preferences (one elastic both ways) in well under 100 bytes;
        // the Debug form of the same profile is over a kilobyte.
        assert!(blob.len() < 100, "blob is {} bytes", blob.len());
    }

    #[test]
    fn re_encode_is_byte_identical_into_fresh_dict() {
        let c = catalog();
        let p = Profile::parse(&c, TEXT).unwrap();
        let mut dict1 = StringDict::new();
        let mut first = Vec::new();
        encode_profile(&p, &mut dict1, &mut first);
        let decoded = decode_profile(&first, &dict1, 1, 1).unwrap();
        let mut dict2 = StringDict::new();
        let mut second = Vec::new();
        encode_profile(&decoded, &mut dict2, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn truncated_blob_is_a_typed_error() {
        let c = catalog();
        let p = Profile::parse(&c, TEXT).unwrap();
        let mut dict = StringDict::new();
        let mut blob = Vec::new();
        encode_profile(&p, &mut dict, &mut blob);
        for cut in 0..blob.len() {
            let err = decode_profile(&blob[..cut], &dict, 1, 1);
            assert!(
                matches!(err, Err(PrefError::ProfileDecode(_))),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_pref_tag_rejected() {
        let mut blob = Vec::new();
        put_u64(&mut blob, 1);
        blob.push(0x7F);
        let err = decode_profile(&blob, &StringDict::new(), 1, 1);
        assert!(matches!(
            err,
            Err(PrefError::ProfileDecode(DecodeError::BadTag { tag: 0x7F, at: 1 }))
        ));
    }
}
