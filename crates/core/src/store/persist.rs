//! Durability for the [`ProfileStore`]: registration WAL, snapshot
//! checkpoints, crash recovery, and read-only degradation.
//!
//! ## Record grammar
//!
//! Everything on disk rides inside `qp_storage::persist`'s checksummed
//! frames (`len:u32le | crc:u32le | payload`). Payloads use the same
//! varint primitives as the profile blob codec (`put_u64`, length-
//! prefixed byte strings), so the on-disk format inherits the codec's
//! byte stability. Five payload kinds exist:
//!
//! ```text
//! register   := 0x01 lsn user version prefs shard dict_start
//!               n_new (len bytes)*n_new  blob_len blob
//!               has_name [name_len name]
//! snap_meta  := 0x02 format shard_count next_user wal_floor
//!               n_names (len bytes id)*n_names
//! snap_shard := 0x03 shard_idx dict_len (len bytes)*dict_len
//!               n_users (user version prefs blob_len blob)*n_users
//! snap_end   := 0x04
//! ```
//!
//! A `register` record is **self-contained given the dictionary state
//! its `dict_start` names**: it carries the strings its blob interned
//! beyond that point, so replaying records in order rebuilds each
//! shard's dictionary byte-for-byte. Records are **idempotent**: if the
//! shard dictionary already extends past `dict_start` the delta is
//! skipped, and a user entry only applies when its version is newer
//! than the one present — which is what makes snapshot-then-tail replay
//! safe when the tail overlaps the snapshot (a crash between snapshot
//! rename and old-segment pruning).
//!
//! ## Fsync policy and the flusher
//!
//! [`FsyncPolicy::Always`] fsyncs every registration (durable at `Ok`),
//! [`FsyncPolicy::Batch`] leaves appends buffered and lets a background
//! flusher thread sync every `flush_ms` (bounded loss window, near
//! in-memory registration throughput), [`FsyncPolicy::Never`] never
//! requests an fsync (durability on OS page-cache terms — tests and
//! benches). The flusher holds only a `Weak` to the WAL state, so
//! dropping the store ends the thread.
//!
//! ## Checkpoints
//!
//! A checkpoint rotates the WAL to a fresh segment (brief WAL lock),
//! serializes every shard under read locks (no WAL lock held — a
//! registration holding a shard write lock may be waiting to append),
//! writes `snapshot.qps` atomically, then prunes segments below the
//! floor recorded in the snapshot. A crash anywhere in that sequence
//! recovers: old snapshot + all segments, or new snapshot + overlapping
//! segments that replay idempotently.
//!
//! ## Degradation
//!
//! Any WAL or checkpoint I/O failure (real or injected through the
//! `persist.write`/`persist.fsync` failpoints) flips the store to
//! **read-only**: the failed registration returns
//! `PrefError::Persist(ReadOnly)` *without* applying in memory (what
//! the disk didn't accept, readers never see), later registrations are
//! refused with the original fault's reason, and lookups keep serving —
//! a faulted disk costs write availability, never the process.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use qp_obs::MetricsRegistry;
use qp_storage::encoding::{put_u64, Reader};
use qp_storage::persist::{
    frame_into, list_logs, log_path, read_frames, replay_log, sync_dir, truncate_log,
    write_atomic, LogWriter, PersistError, RecoveryReport, Tail,
};

use super::{ProfileStore, ShardInner, StoredProfile, UserId};
use crate::error::PrefError;

const REC_REGISTER: u8 = 0x01;
const SNAP_META: u8 = 0x02;
const SNAP_SHARD: u8 = 0x03;
const SNAP_END: u8 = 0x04;
/// On-disk snapshot format version, bumped on incompatible change.
const SNAP_FORMAT: u64 = 1;

/// Name of the snapshot file inside a store directory.
const SNAPSHOT_FILE: &str = "snapshot.qps";

/// When a registration's segment log must reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync on every registration: `Ok` means durable. Slowest.
    Always,
    /// Appends buffer; a background flusher fsyncs every `flush_ms`.
    /// Crash loss is bounded by the flush interval.
    Batch,
    /// Never fsync (the OS flushes when it pleases). For tests/benches.
    Never,
}

impl FsyncPolicy {
    fn from_env() -> FsyncPolicy {
        match std::env::var("QP_PERSIST_FSYNC").as_deref() {
            Ok("always") => FsyncPolicy::Always,
            Ok("never") => FsyncPolicy::Never,
            _ => FsyncPolicy::Batch,
        }
    }

    /// Whether a routine flush should request an fsync under this policy.
    fn sync_on_flush(self) -> bool {
        !matches!(self, FsyncPolicy::Never)
    }
}

/// Tuning for [`ProfileStore::open_with`]. [`PersistOptions::from_env`]
/// (what [`ProfileStore::open`] uses) reads:
///
/// * `QP_PERSIST_FSYNC` — `always` | `batch` (default) | `never`
/// * `QP_PERSIST_FLUSH_MS` — flusher interval, default 200 (0 disables)
/// * `QP_PERSIST_CHECKPOINT_MB` — auto-checkpoint threshold in MiB of
///   WAL growth, default 64 (0 disables auto-checkpoints)
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Fsync policy for the segment log.
    pub fsync: FsyncPolicy,
    /// WAL bytes after which a checkpoint runs inline on the write
    /// path; 0 = only explicit [`ProfileStore::checkpoint`] calls.
    pub checkpoint_bytes: u64,
    /// Background flusher interval in milliseconds; 0 = no flusher.
    pub flush_ms: u64,
    /// Shard count for a **fresh** store directory (a snapshot's shard
    /// count always wins on recovery — blobs are sharded by user hash).
    pub shards: usize,
    /// Registry receiving `persist.*` metrics; a private one if absent.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::Batch,
            checkpoint_bytes: 64 << 20,
            flush_ms: 200,
            shards: super::DEFAULT_SHARDS,
            metrics: None,
        }
    }
}

impl PersistOptions {
    /// Defaults overridden by the `QP_PERSIST_*` environment knobs.
    pub fn from_env() -> Self {
        let defaults = PersistOptions::default();
        PersistOptions {
            fsync: FsyncPolicy::from_env(),
            flush_ms: env_u64("QP_PERSIST_FLUSH_MS").unwrap_or(defaults.flush_ms),
            checkpoint_bytes: env_u64("QP_PERSIST_CHECKPOINT_MB")
                .map(|mb| mb << 20)
                .unwrap_or(defaults.checkpoint_bytes),
            ..defaults
        }
    }

    /// Sets the fsync policy (builder-style).
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the auto-checkpoint threshold in bytes (builder-style).
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Sets the flusher interval (builder-style).
    pub fn flush_ms(mut self, ms: u64) -> Self {
        self.flush_ms = ms;
        self
    }

    /// Sets the fresh-store shard count (builder-style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Routes `persist.*` / `profiles.*` metrics into `metrics`.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// What one checkpoint did, returned by [`ProfileStore::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Users captured in the snapshot.
    pub users: u64,
    /// Size of the written snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Segment log files pruned after the snapshot landed.
    pub logs_removed: usize,
}

/// The read-only degradation latch. Set once on the first disk fault;
/// every later registration is refused with the recorded reason.
#[derive(Debug, Default)]
pub(super) struct Degraded {
    failed: AtomicBool,
    reason: Mutex<Option<String>>,
}

impl Degraded {
    pub(super) fn reason(&self) -> Option<String> {
        if !self.failed.load(Ordering::Acquire) {
            return None;
        }
        self.reason.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn set(&self, reason: String, metrics: &MetricsRegistry) {
        {
            let mut slot = self.reason.lock().unwrap_or_else(|e| e.into_inner());
            // First fault wins; later faults are consequences.
            if slot.is_none() {
                *slot = Some(reason);
            }
        }
        self.failed.store(true, Ordering::Release);
        metrics.counter("persist.errors").inc();
        metrics.gauge("persist.degraded").set(1);
    }
}

/// Mutable WAL state: the open segment writer and its bookkeeping.
#[derive(Debug)]
pub(super) struct WalState {
    writer: LogWriter,
    /// Sequence number of the segment `writer` appends to.
    seq: u64,
    /// Last log sequence number handed to a record.
    lsn: u64,
    /// Framed bytes appended since the last checkpoint (drives the
    /// auto-checkpoint threshold).
    since_checkpoint: u64,
}

/// The store's durability handle: one per opened directory.
#[derive(Debug)]
pub(super) struct Persist {
    dir: PathBuf,
    wal: Arc<Mutex<WalState>>,
    degraded: Arc<Degraded>,
    fsync: FsyncPolicy,
    checkpoint_bytes: u64,
    /// Serializes checkpoints; the auto path `try_lock`s so concurrent
    /// registrations never queue behind a running checkpoint.
    checkpoint_lock: Mutex<()>,
}

impl Persist {
    /// The directory this store persists into.
    pub(super) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(super) fn degraded_reason(&self) -> Option<String> {
        self.degraded.reason()
    }

    /// Total framed bytes in the live segment (buffered included).
    pub(super) fn wal_len(&self) -> u64 {
        lock(&self.wal).writer.len()
    }

    /// Appends one registration record, assigning its LSN inside the
    /// WAL lock. `build` writes the record payload given that LSN.
    /// Called with the owning shard's write lock held, which is what
    /// guarantees dictionary deltas hit the log in dictionary order.
    pub(super) fn append_register(
        &self,
        metrics: &MetricsRegistry,
        build: impl FnOnce(u64, &mut Vec<u8>),
    ) -> Result<(), PersistError> {
        let mut record = Vec::with_capacity(128);
        let mut wal = lock(&self.wal);
        let lsn = wal.lsn + 1;
        build(lsn, &mut record);
        let framed = record.len() as u64 + qp_storage::persist::FRAME_HEADER as u64;
        let result = wal.writer.append(&record).and_then(|()| {
            if self.fsync == FsyncPolicy::Always {
                wal.writer.flush(true)?;
                metrics.counter("persist.fsync.count").inc();
            }
            Ok(())
        });
        match result {
            Ok(()) => {
                wal.lsn = lsn;
                wal.since_checkpoint += framed;
                metrics.counter("persist.wal.appends").inc();
                metrics.gauge("persist.wal.bytes").set(wal.writer.len() as i64);
                Ok(())
            }
            Err(e) => {
                drop(wal);
                self.degraded.set(e.to_string(), metrics);
                Err(e)
            }
        }
    }

    /// True when the write path should trigger an inline checkpoint.
    pub(super) fn wants_checkpoint(&self) -> bool {
        self.checkpoint_bytes > 0
            && lock(&self.wal).since_checkpoint >= self.checkpoint_bytes
    }

    /// Flushes buffered appends; syncs according to the policy. A
    /// failure degrades the store.
    pub(super) fn flush(&self, metrics: &MetricsRegistry) -> Result<(), PersistError> {
        let sync = self.fsync.sync_on_flush();
        let result = {
            let mut wal = lock(&self.wal);
            wal.writer.flush(sync)
        };
        match result {
            Ok(()) => {
                metrics.counter("persist.flush.count").inc();
                if sync {
                    metrics.counter("persist.fsync.count").inc();
                }
                Ok(())
            }
            Err(e) => {
                self.degraded.set(e.to_string(), metrics);
                Err(e)
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Appends a length-prefixed byte string.
fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn take_bytes<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], String> {
    let len = r.take_u64().map_err(|e| e.to_string())?;
    let len = usize::try_from(len).map_err(|_| "length overflows usize".to_string())?;
    r.take_slice(len).map_err(|e| e.to_string())
}

fn take_str(r: &mut Reader<'_>) -> Result<String, String> {
    let bytes = take_bytes(r)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 string".to_string())
}

/// Encodes one registration record. `new_strings` is the dictionary
/// delta this registration appended (`dict.entries()[dict_start..]`).
#[allow(clippy::too_many_arguments)]
pub(super) fn encode_register(
    buf: &mut Vec<u8>,
    lsn: u64,
    user: u64,
    version: u64,
    prefs: u64,
    shard: u64,
    dict_start: u64,
    new_strings: &[Arc<str>],
    blob: &[u8],
    name: Option<&str>,
) {
    buf.push(REC_REGISTER);
    put_u64(buf, lsn);
    put_u64(buf, user);
    put_u64(buf, version);
    put_u64(buf, prefs);
    put_u64(buf, shard);
    put_u64(buf, dict_start);
    put_u64(buf, new_strings.len() as u64);
    for s in new_strings {
        put_bytes(buf, s.as_bytes());
    }
    put_bytes(buf, blob);
    match name {
        None => buf.push(0),
        Some(n) => {
            buf.push(1);
            put_bytes(buf, n.as_bytes());
        }
    }
}

/// Everything recovery rebuilds before the store wraps it in locks.
pub(super) struct Recovered {
    pub(super) shards: Vec<super::Shard>,
    pub(super) names: HashMap<Arc<str>, UserId>,
    pub(super) next_user: u64,
    pub(super) users: u64,
    pub(super) blob_bytes: u64,
    pub(super) report: RecoveryReport,
    pub(super) metrics: Arc<MetricsRegistry>,
    pub(super) handle: Persist,
}

struct ReplayState {
    shards: Vec<ShardInner>,
    names: HashMap<Arc<str>, UserId>,
    next_user: u64,
    last_lsn: u64,
    wal_floor: u64,
}

impl ReplayState {
    fn shard_of(&self, user: u64) -> usize {
        let h = user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    fn apply_register(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(payload);
        let tag = r.take_u8().map_err(|e| e.to_string())?;
        if tag != REC_REGISTER {
            return Err(format!("unexpected record tag {tag:#04x} in segment log"));
        }
        let lsn = r.take_u64().map_err(|e| e.to_string())?;
        if lsn <= self.last_lsn {
            return Err(format!("lsn {lsn} regresses (last was {})", self.last_lsn));
        }
        let user = r.take_u64().map_err(|e| e.to_string())?;
        let version = r.take_u64().map_err(|e| e.to_string())?;
        let prefs = r.take_u64().map_err(|e| e.to_string())?;
        let shard = r.take_u64().map_err(|e| e.to_string())? as usize;
        let dict_start = r.take_u64().map_err(|e| e.to_string())? as usize;
        let n_new = r.take_u64().map_err(|e| e.to_string())? as usize;
        if shard >= self.shards.len() || shard != self.shard_of(user) {
            return Err(format!("record for user {user} names shard {shard}, expected {}",
                self.shard_of(user)));
        }
        if n_new > payload.len() {
            return Err(format!("dictionary delta claims {n_new} strings"));
        }
        let inner = &mut self.shards[shard];
        if inner.dict.len() < dict_start {
            return Err(format!(
                "dictionary gap: record starts at {dict_start}, shard has {}",
                inner.dict.len()
            ));
        }
        let apply_delta = inner.dict.len() == dict_start;
        for _ in 0..n_new {
            let s = take_str(&mut r)?;
            if apply_delta {
                inner.dict.intern(&s);
            }
        }
        let blob = take_bytes(&mut r)?;
        let named = match r.take_u8().map_err(|e| e.to_string())? {
            0 => None,
            1 => Some(take_str(&mut r)?),
            b => return Err(format!("bad name marker {b:#04x}")),
        };
        if !r.is_done() {
            return Err("trailing bytes after registration record".to_string());
        }

        // Last-writer-wins by version: records the snapshot already
        // covers replay as no-ops.
        let newer = inner.users.get(&user).is_none_or(|e| e.version < version);
        if newer {
            inner.users.insert(
                user,
                Arc::new(StoredProfile {
                    user,
                    version,
                    blob: blob.to_vec().into_boxed_slice(),
                    prefs: prefs as u32,
                    selections: std::sync::RwLock::new(Vec::new()),
                }),
            );
        }
        if let Some(name) = named {
            self.names.insert(Arc::from(name.as_str()), UserId(user));
            self.next_user = self.next_user.max(user + 1);
        }
        self.last_lsn = lsn;
        Ok(())
    }
}

fn load_snapshot(
    path: &Path,
    state: &mut ReplayState,
    report: &mut RecoveryReport,
) -> Result<(), PersistError> {
    let corrupt = |detail: String| PersistError::Corrupt {
        path: path.display().to_string(),
        at: 0,
        detail,
    };
    let mut meta_seen = false;
    let mut end_seen = false;
    let bytes = read_frames(path, |payload| {
        if end_seen {
            return Err("frame after snapshot end marker".to_string());
        }
        let mut r = Reader::new(payload);
        let tag = r.take_u8().map_err(|e| e.to_string())?;
        match tag {
            SNAP_META => {
                if meta_seen {
                    return Err("duplicate snapshot meta frame".to_string());
                }
                meta_seen = true;
                let format = r.take_u64().map_err(|e| e.to_string())?;
                if format != SNAP_FORMAT {
                    return Err(format!("snapshot format {format}, expected {SNAP_FORMAT}"));
                }
                let shard_count = r.take_u64().map_err(|e| e.to_string())? as usize;
                if !(1..=(1 << 16)).contains(&shard_count) || !shard_count.is_power_of_two() {
                    return Err(format!("implausible shard count {shard_count}"));
                }
                state.shards = (0..shard_count).map(|_| ShardInner::default()).collect();
                state.next_user = r.take_u64().map_err(|e| e.to_string())?;
                state.wal_floor = r.take_u64().map_err(|e| e.to_string())?;
                let n_names = r.take_u64().map_err(|e| e.to_string())? as usize;
                for _ in 0..n_names {
                    let name = take_str(&mut r)?;
                    let id = r.take_u64().map_err(|e| e.to_string())?;
                    state.names.insert(Arc::from(name.as_str()), UserId(id));
                }
                Ok(())
            }
            SNAP_SHARD => {
                if !meta_seen {
                    return Err("shard frame before snapshot meta".to_string());
                }
                let idx = r.take_u64().map_err(|e| e.to_string())? as usize;
                if idx >= state.shards.len() {
                    return Err(format!("shard index {idx} out of range"));
                }
                let inner = &mut state.shards[idx];
                if !inner.dict.is_empty() || !inner.users.is_empty() {
                    return Err(format!("duplicate frame for shard {idx}"));
                }
                let dict_len = r.take_u64().map_err(|e| e.to_string())? as usize;
                for _ in 0..dict_len {
                    let s = take_str(&mut r)?;
                    inner.dict.intern(&s);
                }
                let n_users = r.take_u64().map_err(|e| e.to_string())? as usize;
                for _ in 0..n_users {
                    let user = r.take_u64().map_err(|e| e.to_string())?;
                    let version = r.take_u64().map_err(|e| e.to_string())?;
                    let prefs = r.take_u64().map_err(|e| e.to_string())?;
                    let blob = take_bytes(&mut r)?;
                    inner.users.insert(
                        user,
                        Arc::new(StoredProfile {
                            user,
                            version,
                            blob: blob.to_vec().into_boxed_slice(),
                            prefs: prefs as u32,
                            selections: std::sync::RwLock::new(Vec::new()),
                        }),
                    );
                    report.snapshot_users += 1;
                }
                Ok(())
            }
            SNAP_END => {
                end_seen = true;
                Ok(())
            }
            t => Err(format!("unknown snapshot frame tag {t:#04x}")),
        }
    })?;
    if !end_seen {
        return Err(corrupt("snapshot missing end marker".to_string()));
    }
    report.snapshot_bytes = bytes;
    Ok(())
}

/// Opens (or initializes) a store directory: loads the snapshot if one
/// exists, replays surviving segments in order with prefix semantics,
/// repairs a torn tail by truncation, prunes segments a previous
/// checkpoint already covered, and opens a fresh segment for new
/// registrations.
pub(super) fn recover(
    dir: &Path,
    options: PersistOptions,
) -> Result<Recovered, PrefError> {
    let started = Instant::now();
    fs::create_dir_all(dir).map_err(|e| {
        PersistError::Io { op: "mkdir", path: dir.display().to_string(), detail: e.to_string() }
    })?;
    let metrics = options.metrics.clone().unwrap_or_else(|| Arc::new(MetricsRegistry::new()));

    let shard_count = options.shards.max(1).next_power_of_two();
    let mut report = RecoveryReport::default();
    let mut state = ReplayState {
        shards: (0..shard_count).map(|_| ShardInner::default()).collect(),
        names: HashMap::new(),
        next_user: 1,
        last_lsn: 0,
        wal_floor: 0,
    };

    let snapshot = dir.join(SNAPSHOT_FILE);
    if snapshot.exists() {
        load_snapshot(&snapshot, &mut state, &mut report)?;
    }

    let logs = list_logs(dir)?;
    let mut max_seq = 0u64;
    let mut torn = false;
    for (seq, path) in logs.iter() {
        max_seq = max_seq.max(*seq);
        if *seq < state.wal_floor {
            // A checkpoint's snapshot supersedes this segment; the crash
            // happened before the prune. Finish the prune now.
            fs::remove_file(path).map_err(|e| io_cleanup(path, e))?;
            continue;
        }
        if torn {
            // Everything after a torn segment is beyond the lost suffix;
            // count it dropped and remove it (prefix semantics).
            let mut records = 0u64;
            let bytes = replay_log(path, |_, _| {
                records += 1;
                Ok(())
            })
            .map(|s| s.bytes)
            .unwrap_or(0);
            report.records_dropped += records;
            report.bytes_dropped += bytes;
            fs::remove_file(path).map_err(|e| io_cleanup(path, e))?;
            continue;
        }
        report.log_files += 1;
        let summary = replay_log(path, |_, payload| state.apply_register(payload))?;
        report.records_kept += summary.records;
        report.bytes_replayed += summary.bytes;
        if let Tail::Torn { valid_len, dropped_bytes, dropped_records, .. } = summary.tail {
            report.records_dropped += dropped_records;
            report.bytes_dropped += dropped_bytes;
            report.tail_repaired = true;
            // Later segments are beyond the lost suffix; the branch
            // above drops them on the remaining iterations.
            torn = true;
            truncate_log(path, valid_len)?;
        }
    }

    // Fresh segment for new registrations: sequence numbers are never
    // reused, and old segments stay until the next checkpoint prunes
    // them.
    let new_seq = (max_seq + 1).max(state.wal_floor).max(1);
    let writer = LogWriter::create(log_path(dir, new_seq))?;
    sync_dir(dir)?;

    let users: u64 = state.shards.iter().map(|s| s.users.len() as u64).sum();
    let blob_bytes: u64 =
        state.shards.iter().flat_map(|s| s.users.values()).map(|e| e.blob.len() as u64).sum();
    report.elapsed_us = started.elapsed().as_micros() as u64;

    metrics.counter("persist.recovery.count").inc();
    metrics.gauge("persist.recovery.records_kept").set(report.records_kept as i64);
    metrics.gauge("persist.recovery.records_dropped").set(report.records_dropped as i64);
    metrics.gauge("persist.recovery.bytes_replayed").set(report.bytes_replayed as i64);
    metrics.gauge("persist.recovery.bytes_dropped").set(report.bytes_dropped as i64);
    metrics.gauge("persist.recovery.us").set(report.elapsed_us as i64);
    metrics.gauge("persist.degraded").set(0);

    let wal = Arc::new(Mutex::new(WalState {
        writer,
        seq: new_seq,
        lsn: state.last_lsn,
        since_checkpoint: 0,
    }));
    let degraded = Arc::new(Degraded::default());
    if options.flush_ms > 0 && options.fsync != FsyncPolicy::Always {
        spawn_flusher(
            Arc::downgrade(&wal),
            Arc::clone(&degraded),
            Arc::clone(&metrics),
            Duration::from_millis(options.flush_ms),
            options.fsync.sync_on_flush(),
        );
    }

    Ok(Recovered {
        shards: state.shards.into_iter().map(|inner| super::Shard {
            inner: std::sync::RwLock::new(inner),
        }).collect(),
        names: state.names,
        next_user: state.next_user,
        users,
        blob_bytes,
        report,
        metrics,
        handle: Persist {
            dir: dir.to_path_buf(),
            wal,
            degraded,
            fsync: options.fsync,
            checkpoint_bytes: options.checkpoint_bytes,
            checkpoint_lock: Mutex::new(()),
        },
    })
}

fn io_cleanup(path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Io { op: "remove", path: path.display().to_string(), detail: e.to_string() }
}

fn spawn_flusher(
    wal: Weak<Mutex<WalState>>,
    degraded: Arc<Degraded>,
    metrics: Arc<MetricsRegistry>,
    every: Duration,
    sync: bool,
) {
    let spawned = std::thread::Builder::new().name("qp-profile-flusher".into()).spawn(move || {
        loop {
            std::thread::sleep(every);
            let Some(wal) = wal.upgrade() else { return };
            if degraded.reason().is_some() {
                continue;
            }
            let result = {
                let mut wal = lock(&wal);
                if wal.writer.unsynced() == 0 {
                    continue;
                }
                wal.writer.flush(sync)
            };
            match result {
                Ok(()) => {
                    metrics.counter("persist.flush.count").inc();
                    if sync {
                        metrics.counter("persist.fsync.count").inc();
                    }
                }
                Err(e) => degraded.set(e.to_string(), &metrics),
            }
        }
    });
    // A spawn failure only costs background flushing; explicit flushes
    // and the Always policy are unaffected.
    drop(spawned);
}

/// Runs a checkpoint: rotate the WAL, snapshot every shard, prune
/// superseded segments. `auto` softens the contract for the write-path
/// trigger: if another checkpoint is running it returns `None` instead
/// of queueing, and the byte threshold is re-checked under the lock.
pub(super) fn checkpoint(
    store: &ProfileStore,
    auto: bool,
) -> Result<Option<CheckpointStats>, PersistError> {
    let Some(persist) = store.persist.as_ref() else {
        return Ok(None);
    };
    if let Some(reason) = persist.degraded.reason() {
        return Err(PersistError::ReadOnly { reason });
    }
    let _guard = if auto {
        match persist.checkpoint_lock.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => return Ok(None),
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    } else {
        lock(&persist.checkpoint_lock)
    };
    if auto && !persist.wants_checkpoint() {
        return Ok(None);
    }

    // Rotate under a brief WAL lock: finish the old segment, open the
    // next. Registrations queue on the WAL mutex for the duration of a
    // flush + create, nothing more.
    let rotate = || -> Result<u64, PersistError> {
        let mut wal = lock(&persist.wal);
        wal.writer.flush(persist.fsync.sync_on_flush())?;
        let new_seq = wal.seq + 1;
        let writer = LogWriter::create(log_path(&persist.dir, new_seq))?;
        sync_dir(&persist.dir)?;
        wal.writer = writer;
        wal.seq = new_seq;
        wal.since_checkpoint = 0;
        Ok(new_seq)
    };
    let floor = match rotate() {
        Ok(seq) => seq,
        Err(e) => {
            persist.degraded.set(e.to_string(), &store.metrics);
            return Err(e);
        }
    };

    // Serialize shards under read locks only — registrations proceed
    // into the fresh segment meanwhile; the overlap replays idempotently.
    let mut buf = Vec::new();
    let mut frame = Vec::new();
    frame.push(SNAP_META);
    put_u64(&mut frame, SNAP_FORMAT);
    put_u64(&mut frame, store.shards.len() as u64);
    put_u64(&mut frame, store.next_user.load(Ordering::Relaxed));
    put_u64(&mut frame, floor);
    {
        let names = super::read_lock(&store.names);
        put_u64(&mut frame, names.len() as u64);
        for (name, id) in names.iter() {
            put_bytes(&mut frame, name.as_bytes());
            put_u64(&mut frame, id.0);
        }
    }
    frame_into(&mut buf, &frame);
    let mut users = 0u64;
    for (idx, shard) in store.shards.iter().enumerate() {
        frame.clear();
        frame.push(SNAP_SHARD);
        put_u64(&mut frame, idx as u64);
        let inner = super::read_lock(&shard.inner);
        put_u64(&mut frame, inner.dict.len() as u64);
        for s in inner.dict.entries() {
            put_bytes(&mut frame, s.as_bytes());
        }
        put_u64(&mut frame, inner.users.len() as u64);
        for entry in inner.users.values() {
            put_u64(&mut frame, entry.user);
            put_u64(&mut frame, entry.version);
            put_u64(&mut frame, u64::from(entry.prefs));
            put_bytes(&mut frame, &entry.blob);
            users += 1;
        }
        drop(inner);
        frame_into(&mut buf, &frame);
    }
    frame.clear();
    frame.push(SNAP_END);
    frame_into(&mut buf, &frame);

    let snapshot_bytes = buf.len() as u64;
    if let Err(e) = write_atomic(&persist.dir.join(SNAPSHOT_FILE), &buf) {
        persist.degraded.set(e.to_string(), &store.metrics);
        return Err(e);
    }

    // Prune segments the snapshot supersedes.
    let mut logs_removed = 0usize;
    for (seq, path) in list_logs(&persist.dir)? {
        if seq < floor {
            fs::remove_file(&path).map_err(|e| io_cleanup(&path, e))?;
            logs_removed += 1;
        }
    }
    sync_dir(&persist.dir)?;

    store.metrics.counter("persist.checkpoint.count").inc();
    store.metrics.gauge("persist.snapshot.bytes").set(snapshot_bytes as i64);
    Ok(Some(CheckpointStats { users, snapshot_bytes, logs_removed }))
}
