//! Seeded chaos soak: a multi-thread serving workload under a
//! [`ChaosPlan`], asserting the three sanctioned terminal states.
//!
//! Invariants, per request, for every seed:
//!
//! 1. **No panic escapes [`Personalizer::run`].** Injected worker panics
//!    (`exec.pool.spawn`) are caught at the pool's chunk boundary and
//!    surface as degradations; every other chaos site injects *errors*,
//!    which the degradation/fallback/typed-error machinery absorbs.
//! 2. **Every outcome is well-formed**: a complete answer, a degraded
//!    answer whose report says what was cut, or a typed [`PrefError`].
//! 3. **A run that claims completeness is exact**: its answer is
//!    byte-identical to the chaos-free reference for the same (query,
//!    algorithm) — chaos may degrade or fail a request, but never
//!    silently corrupt one. This also pins parallel/serial identity,
//!    since requests alternate parallelism 1 and 4.
//!
//! A second phase adds concurrent [`SnapshotStore::update`] publishers
//! (tolerating injected `snapshot.update` faults) and re-checks 1–2 plus
//! snapshot atomicity; after disarming, serial and parallel runs on the
//! final epoch must again agree exactly.
//!
//! The `delta_soak_seed_*` tests add the sustained mixed read/write leg:
//! concurrent [`Maintainer::publish`] writers (typed [`DbDelta`]s,
//! including delete-then-reinsert) race maintained readers under the
//! same chaos plan, and after every faulted round the maintained answers
//! must be **byte-identical** to a recompute-from-scratch on the
//! surviving epoch — chaos may reject a publish or drop a registry
//! entry, but never corrupt maintained state.
#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qp_core::{
    AdmissionConfig, AnswerAlgorithm, BreakerConfig, Maintainer, MatRegistry,
    PersonalizationOptions, PersonalizeRequest, PersonalizedAnswer, Personalizer, Profile,
    Resilience, RetryPolicy, SelectionCriterion,
};
use qp_storage::failpoint::FailScenario;
use qp_storage::{Attribute, ChaosPlan, DataType, Database, DbDelta, SnapshotStore, Value};

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 32;
const QUERIES: [&str; 4] = [
    "select title from MOVIE",
    "select title from MOVIE where year < 1990",
    "select title, year from MOVIE where year > 1975",
    "select title from MOVIE where MOVIE.mid < 200",
];

/// ~280 movies so PPA probe rounds have real fan-out for the pool.
fn big_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    let genres = ["comedy", "thriller", "musical", "drama"];
    for mid in 0..280i64 {
        db.insert_by_name(
            "MOVIE",
            vec![
                Value::Int(mid),
                Value::str(format!("m{mid}").as_str()),
                Value::Int(1960 + (mid * 7) % 60),
            ],
        )
        .unwrap();
        db.insert_by_name(
            "GENRE",
            vec![Value::Int(mid), Value::str(genres[(mid % 4) as usize])],
        )
        .unwrap();
    }
    db
}

fn soak_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(MOVIE.year < 1985) = (0.8, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.6)\n\
         doi(GENRE.genre = 'comedy') = (0.7, 0)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.9)\n",
    )
    .unwrap()
}

fn options(algorithm: AnswerAlgorithm, fallback: bool) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm,
        fallback_to_original: fallback,
        ..Default::default()
    }
}

/// The chaos-free answer for (query, algorithm) on the store's current
/// epoch, computed serially.
fn reference(
    store: &Arc<SnapshotStore>,
    profile: &Profile,
    sql: &str,
    algorithm: AnswerAlgorithm,
) -> PersonalizedAnswer {
    let mut p = Personalizer::serving(Arc::clone(store));
    let out = p
        .run(PersonalizeRequest::sql(profile, sql)
            .options(options(algorithm, false))
            .parallelism(1))
        .expect("chaos-free reference run");
    assert!(out.is_complete(), "reference must be exact");
    out.report.answer
}

fn fleet_bundle(seed: u64) -> Arc<Resilience> {
    Arc::new(
        Resilience::new()
            .with_admission(AdmissionConfig {
                max_inflight: THREADS * 2,
                max_queue_wait: Duration::from_millis(200),
            })
            .with_breaker(BreakerConfig {
                window: 24,
                min_samples: 12,
                trip_ratio: 0.7,
                cooldown: Duration::from_millis(10),
                forced_open: false,
            })
            .with_retry(RetryPolicy::new(
                2,
                Duration::from_micros(50),
                Duration::from_millis(1),
                seed | 1,
            )),
    )
}

struct Tally {
    escaped_panics: AtomicUsize,
    complete: AtomicUsize,
    degraded: AtomicUsize,
    errored: AtomicUsize,
    exact_checked: AtomicUsize,
}

impl Tally {
    fn new() -> Self {
        Tally {
            escaped_panics: AtomicUsize::new(0),
            complete: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            errored: AtomicUsize::new(0),
            exact_checked: AtomicUsize::new(0),
        }
    }
}

/// One worker's request stream: queries, algorithms, parallelism, and
/// fallback choice all rotate deterministically per (thread, index).
/// With `mutate_profile` set (phase B), the worker also revises its own
/// profile copy mid-stream — preferences change while queries are in
/// flight, and the version-keyed preference cache must never replay a
/// stale selection.
#[allow(clippy::too_many_arguments)]
fn drive_requests(
    store: &Arc<SnapshotStore>,
    profile: &Profile,
    bundle: &Arc<Resilience>,
    tally: &Tally,
    thread: usize,
    refs: Option<&Vec<(PersonalizedAnswer, PersonalizedAnswer)>>,
    mutate_profile: bool,
    registry: Option<Arc<MatRegistry>>,
) {
    use qp_core::{CompareOp, Doi};

    let mut p = Personalizer::serving(Arc::clone(store));
    if let Some(registry) = registry {
        p = p.with_maintenance(registry);
    }
    p.set_resilience(Some(Arc::clone(bundle)));
    let mut profile = profile.clone();
    for i in 0..REQUESTS_PER_THREAD {
        if mutate_profile && i % 8 == 7 {
            let snap = store.snapshot();
            profile
                .add_selection(
                    snap.catalog(),
                    "MOVIE",
                    "year",
                    CompareOp::Gt,
                    Value::Int(1950 + (thread as i64 * 8) + (i as i64 % 8)),
                    Doi::presence(0.3).unwrap(),
                )
                .expect("profile revision applies");
        }
        let qi = (thread + i) % QUERIES.len();
        let algorithm =
            if i % 2 == 0 { AnswerAlgorithm::Ppa } else { AnswerAlgorithm::Spa };
        let parallelism = if i % 3 == 0 { 4 } else { 1 };
        let fallback = i % 4 == 0;
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run(PersonalizeRequest::sql(&profile, QUERIES[qi])
                .options(options(algorithm, fallback))
                .parallelism(parallelism))
        }));
        match result {
            Err(_) => {
                tally.escaped_panics.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Ok(outcome)) => {
                if outcome.is_complete() {
                    tally.complete.fetch_add(1, Ordering::Relaxed);
                    if let Some(refs) = refs {
                        let want = match algorithm {
                            AnswerAlgorithm::Ppa => &refs[qi].0,
                            AnswerAlgorithm::Spa => &refs[qi].1,
                        };
                        assert_eq!(
                            outcome.answer(),
                            want,
                            "a run claiming completeness (seed workload {thread}/{i}, \
                             query {qi}, {algorithm:?}, parallelism {parallelism}) \
                             must match the chaos-free reference exactly"
                        );
                        tally.exact_checked.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    // Well-formed degradation: the report names every cut.
                    assert!(!outcome.degradation().events.is_empty());
                    assert_ne!(outcome.degradation().summary(), "complete");
                    tally.degraded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Err(e)) => {
                // Typed by construction; the Display form must never be
                // a bare panic payload.
                assert!(!e.to_string().is_empty());
                tally.errored.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn soak(seed: u64) {
    let scenario = FailScenario::setup();
    let store = Arc::new(SnapshotStore::new(big_db()));
    let profile = {
        let snap = store.snapshot();
        soak_profile(&snap)
    };

    // Chaos-free references per (query, algorithm) on the fixed epoch.
    let refs: Vec<(PersonalizedAnswer, PersonalizedAnswer)> = QUERIES
        .iter()
        .map(|sql| {
            (
                reference(&store, &profile, sql, AnswerAlgorithm::Ppa),
                reference(&store, &profile, sql, AnswerAlgorithm::Spa),
            )
        })
        .collect();

    // Phase 1: fixed epoch under chaos — completeness claims are audited
    // against the references.
    let plan = ChaosPlan::serving_default(seed);
    plan.arm();
    let bundle = fleet_bundle(seed);
    let tally = Tally::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            let profile = &profile;
            let bundle = &bundle;
            let tally = &tally;
            let refs = &refs;
            scope.spawn(move || {
                drive_requests(store, profile, bundle, tally, t, Some(refs), false, None)
            });
        }
    });
    plan.disarm();

    let escaped = tally.escaped_panics.load(Ordering::Relaxed);
    let complete = tally.complete.load(Ordering::Relaxed);
    let degraded = tally.degraded.load(Ordering::Relaxed);
    let errored = tally.errored.load(Ordering::Relaxed);
    assert_eq!(escaped, 0, "seed {seed}: a panic escaped Personalizer::run");
    assert_eq!(complete + degraded + errored, THREADS * REQUESTS_PER_THREAD);
    assert!(complete > 0, "seed {seed}: mild chaos must let some requests through");
    assert!(
        degraded + errored > 0,
        "seed {seed}: the chaos plan never fired — the soak proved nothing"
    );
    assert!(tally.exact_checked.load(Ordering::Relaxed) >= complete.min(1));

    // Phase 2: same chaos, now with writers publishing snapshot epochs
    // mid-serving. Completeness can no longer be audited against a fixed
    // reference, but the terminal-state and atomicity invariants hold.
    plan.arm();
    let tally2 = Tally::new();
    let writer_rounds = 24;
    std::thread::scope(|scope| {
        {
            let store = &store;
            scope.spawn(move || {
                for i in 0..writer_rounds {
                    // Paired inserts: any served answer sees whole pairs.
                    let base = 1000 + i * 2;
                    let published = store.update(|db| {
                        db.insert_by_name(
                            "MOVIE",
                            vec![Value::Int(base), Value::str("x"), Value::Int(1999)],
                        )?;
                        db.insert_by_name(
                            "MOVIE",
                            vec![Value::Int(base + 1), Value::str("y"), Value::Int(1999)],
                        )
                        .map(|_| ())
                    });
                    // Injected snapshot.update faults reject the whole
                    // batch; both rows or neither.
                    if published.is_err() {
                        continue;
                    }
                }
            });
        }
        for t in 0..THREADS {
            let store = &store;
            let profile = &profile;
            let bundle = &bundle;
            let tally2 = &tally2;
            scope.spawn(move || {
                drive_requests(store, profile, bundle, tally2, t, None, true, None)
            });
        }
    });
    plan.disarm();
    assert_eq!(tally2.escaped_panics.load(Ordering::Relaxed), 0);
    assert_eq!(
        tally2.complete.load(Ordering::Relaxed)
            + tally2.degraded.load(Ordering::Relaxed)
            + tally2.errored.load(Ordering::Relaxed),
        THREADS * REQUESTS_PER_THREAD
    );

    // Snapshot atomicity end to end: the final epoch holds the initial
    // rows plus whole pairs only.
    let rows = store.snapshot().total_rows();
    let movie_rows = rows - 280; // GENRE has exactly 280 rows
    assert!((movie_rows - 280).is_multiple_of(2), "torn publish: {movie_rows} movie rows");

    // After the storm: serial and parallel runs on the final epoch agree
    // exactly (chaos changed the data, never the semantics).
    drop(scenario);
    for sql in QUERIES {
        for algorithm in [AnswerAlgorithm::Ppa, AnswerAlgorithm::Spa] {
            let serial = reference(&store, &profile, sql, algorithm);
            let mut p = Personalizer::serving(Arc::clone(&store));
            let parallel = p
                .run(PersonalizeRequest::sql(&profile, sql)
                    .options(options(algorithm, false))
                    .parallelism(4))
                .expect("post-chaos parallel run");
            assert!(parallel.is_complete());
            assert_eq!(serial, parallel.report.answer, "parallel ≠ serial after chaos");
        }
    }
}

/// The sustained mixed read/write leg: concurrent delta publishers and
/// maintained readers under chaos, with a byte-identity audit of the
/// maintained registry against recompute-from-scratch after every
/// faulted round.
fn delta_soak(seed: u64) {
    const ROUNDS: usize = 4;
    const WRITERS: usize = 2;
    const PUBLISHES_PER_WRITER: usize = 8;

    let scenario = FailScenario::setup();
    let store = Arc::new(SnapshotStore::new(big_db()));
    let profile = {
        let snap = store.snapshot();
        soak_profile(&snap)
    };
    let maintainer = Maintainer::new(Arc::clone(&store));
    let plan = ChaosPlan::serving_default(seed);
    let bundle = fleet_bundle(seed);
    let published = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let escaped_writer_panics = AtomicUsize::new(0);
    // Rows each writer successfully published in earlier rounds, for
    // value-addressed deletes (only the owning writer touches its rows,
    // so a tracked row is live until that writer deletes it).
    let mut owned: Vec<Vec<(i64, i64)>> = vec![Vec::new(); WRITERS];

    for round in 0..ROUNDS {
        plan.arm();
        let tally = Tally::new();
        let results: Vec<(Vec<(i64, i64)>, usize)> = std::thread::scope(|scope| {
            let writer_handles: Vec<_> = owned
                .iter()
                .enumerate()
                .map(|(w, mine)| {
                    let maintainer = &maintainer;
                    let published = &published;
                    let rejected = &rejected;
                    let escaped = &escaped_writer_panics;
                    scope.spawn(move || {
                        let mut gained: Vec<(i64, i64)> = Vec::new();
                        let mut spent = 0usize;
                        for i in 0..PUBLISHES_PER_WRITER {
                            let base =
                                10_000 + ((round * WRITERS + w) * PUBLISHES_PER_WRITER + i) as i64 * 2;
                            let year = 1960 + (base % 60);
                            let mut delta = DbDelta::new()
                                .insert(
                                    "MOVIE",
                                    vec![
                                        Value::Int(base),
                                        Value::str(format!("w{base}").as_str()),
                                        Value::Int(year),
                                    ],
                                )
                                .insert(
                                    "GENRE",
                                    vec![
                                        Value::Int(base),
                                        Value::str(if base % 2 == 0 { "comedy" } else { "musical" }),
                                    ],
                                );
                            // Every other publish also deletes one of this
                            // writer's earlier rows and reinserts it in the
                            // same delta (tombstone + fresh row id).
                            let mut recycled = None;
                            if i % 2 == 1 && spent < mine.len() {
                                let (mid, year) = mine[spent];
                                let row = vec![
                                    Value::Int(mid),
                                    Value::str(format!("w{mid}").as_str()),
                                    Value::Int(year),
                                ];
                                delta = delta.delete("MOVIE", row.clone()).insert("MOVIE", row);
                                recycled = Some((mid, year));
                            }
                            match catch_unwind(AssertUnwindSafe(|| maintainer.publish(&delta))) {
                                Ok(Ok(_)) => {
                                    published.fetch_add(1, Ordering::Relaxed);
                                    gained.push((base, year));
                                    if recycled.is_some() {
                                        spent += 1;
                                    }
                                }
                                Ok(Err(_)) => {
                                    // Injected snapshot.update faults reject
                                    // the delta wholesale; nothing landed.
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    escaped.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        (gained, spent)
                    })
                })
                .collect();
            for t in 0..THREADS {
                let store = &store;
                let profile = &profile;
                let bundle = &bundle;
                let tally = &tally;
                let registry = maintainer.registry();
                scope.spawn(move || {
                    drive_requests(store, profile, bundle, tally, t, None, false, Some(registry))
                });
            }
            writer_handles
                .into_iter()
                .map(|handle| handle.join().expect("writer thread"))
                .collect()
        });
        plan.disarm();
        for (w, (gained, spent)) in results.into_iter().enumerate() {
            owned[w].drain(..spent);
            owned[w].extend(gained);
        }

        assert_eq!(
            tally.escaped_panics.load(Ordering::Relaxed),
            0,
            "seed {seed} round {round}: a panic escaped a maintained reader"
        );

        // Quiesce audit: on the epoch that survived the storm, every
        // maintained PPA answer must be byte-identical to a fresh
        // recompute that never saw the registry.
        let epoch = store.snapshot();
        for sql in QUERIES {
            let mut maintained = Personalizer::serving(Arc::clone(&store))
                .with_maintenance(maintainer.registry());
            let got = maintained
                .run(PersonalizeRequest::sql(&profile, sql)
                    .options(options(AnswerAlgorithm::Ppa, false))
                    .parallelism(1))
                .expect("maintained quiesce run");
            assert!(got.is_complete(), "quiesce run must be exact (chaos is disarmed)");
            let mut fresh = Personalizer::shared(Arc::clone(&epoch));
            let want = fresh
                .run(PersonalizeRequest::sql(&profile, sql)
                    .options(options(AnswerAlgorithm::Ppa, false))
                    .parallelism(1))
                .expect("recompute reference");
            assert_eq!(
                got.report.answer, want.report.answer,
                "seed {seed} round {round}: maintained answer diverged from \
                 recompute-from-scratch after a faulted read/write storm ({sql})"
            );
        }
    }

    assert_eq!(escaped_writer_panics.load(Ordering::Relaxed), 0, "seed {seed}: publish panicked");
    assert!(
        published.load(Ordering::Relaxed) > 0,
        "seed {seed}: chaos rejected every publish — the soak proved nothing"
    );
    assert!(
        !maintainer.registry().is_empty(),
        "seed {seed}: the quiesce runs should leave a warm registry"
    );
    drop(scenario);
}

#[test]
fn soak_seed_11() {
    soak(11);
}

#[test]
fn delta_soak_seed_7() {
    delta_soak(7);
}

#[test]
fn delta_soak_seed_23() {
    delta_soak(23);
}

#[test]
fn soak_seed_42() {
    soak(42);
}

#[test]
fn soak_seed_1337() {
    soak(1337);
}
