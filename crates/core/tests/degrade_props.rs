//! Property tests for guarded PPA: under ANY row budget the run returns
//! `Ok`, the partial answer is a subset of the complete answer with
//! identical dois, and no omitted tuple outranks an emitted one.

use proptest::prelude::*;
use qp_core::answer::ppa::{ppa, ppa_guarded};
use qp_core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use qp_core::{PersonalizationGraph, Profile, Ranking};
use qp_exec::{Engine, QueryGuard};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

/// The movies fixture, sized by `extra` filler rows so budgets bite at
/// different points.
fn movies_db(extra: i64) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for i in 0..extra {
        let mid = 6 + i;
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(mid), Value::str(format!("Filler {i}")), Value::Int(1960 + (i % 60))],
        )
        .unwrap();
        db.insert_by_name(
            "GENRE",
            vec![Value::Int(mid), Value::str(if i % 2 == 0 { "comedy" } else { "musical" })],
        )
        .unwrap();
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(1 + (i % 3))]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    db
}

fn als_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_budget_degrades_to_a_ranked_subset(
        extra in 0i64..12,
        l in 1usize..=2,
        out_budget in 0u64..20,
        inter_budget in 1u64..2000,
    ) {
        let db = movies_db(extra);
        let profile = als_profile(&db);
        let graph = PersonalizationGraph::build(&profile);
        let initial = parse_query("select title from MOVIE").unwrap();
        let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
        let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
        let ranking = Ranking::default();

        let mut engine = Engine::new();
        let (full, _) = ppa(&db, &mut engine, &initial, &profile, &selected, l, &ranking).unwrap();

        let guard = QueryGuard::builder()
            .max_output_rows(out_budget)
            .max_intermediate_rows(inter_budget)
            .build();
        let mut engine = Engine::new();
        let (partial, _stats, degradation) = ppa_guarded(
            &db, &mut engine, &initial, &profile, &selected, l, &ranking, None, &guard,
        ).expect("guarded PPA must degrade, not error");

        // every emitted tuple appears in the complete answer, doi intact
        for t in &partial.tuples {
            let f = full.tuples.iter().find(|f| f.tuple_id == t.tuple_id);
            let f = f.expect("emitted tuple missing from the complete answer");
            prop_assert!((f.doi - t.doi).abs() < 1e-9);
        }
        // no omitted tuple outranks an emitted one
        let emitted: Vec<Option<u64>> = partial.tuples.iter().map(|t| t.tuple_id).collect();
        let min_emitted = partial.tuples.iter().map(|t| t.doi).fold(f64::INFINITY, f64::min);
        for f in &full.tuples {
            if !emitted.contains(&f.tuple_id) {
                prop_assert!(
                    f.doi <= min_emitted + 1e-9,
                    "omitted {:?} (doi {}) outranks emitted minimum {}",
                    f.tuple_id, f.doi, min_emitted
                );
            }
        }
        // a run the guard never cut must be byte-identical to the full one
        if degradation.is_complete() {
            prop_assert_eq!(partial.tuples.len(), full.tuples.len());
        } else {
            prop_assert!(partial.tuples.len() <= full.tuples.len());
        }
    }
}
