//! Degradation tests: PPA under a tripped [`qp_exec::QueryGuard`] (or an
//! injected fault) returns `Ok` with a partial ranked answer and a
//! non-empty [`qp_core::Degradation`] — never a panic — and the partial
//! answer never ranks an emitted tuple below an omitted one.

use std::time::Duration;

use qp_core::answer::ppa::{ppa, ppa_guarded};
use qp_core::degrade::{DegradeCause, DegradeEvent};
use qp_core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use qp_core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizationGraph, PersonalizeRequest,
    Personalizer, Profile, Ranking, SelectedPreference,
};
use qp_exec::{CancelToken, Engine, QueryGuard};
use qp_sql::{parse_query, Query};
use qp_storage::{Attribute, DataType, Database, Value};

/// Small movies DB with W. Allen comedies, a musical, and old films —
/// the fixture the SPA/PPA unit tests use.
fn movies_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    db
}

fn als_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
    )
    .unwrap()
}

fn setup() -> (Database, Profile, Query, Vec<SelectedPreference>) {
    let db = movies_db();
    let profile = als_profile(&db);
    let graph = PersonalizationGraph::build(&profile);
    let initial = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    assert_eq!(selected.len(), 3);
    (db, profile, initial, selected)
}

/// Every guarded tuple must appear in the complete answer with the same
/// doi, and no omitted tuple may outrank an emitted one.
fn assert_ranked_prefix(
    partial: &qp_core::PersonalizedAnswer,
    full: &qp_core::PersonalizedAnswer,
) {
    let full_doi = |tid: Option<u64>| {
        full.tuples
            .iter()
            .find(|t| t.tuple_id == tid)
            .unwrap_or_else(|| panic!("tuple {tid:?} not in the complete answer"))
            .doi
    };
    for t in &partial.tuples {
        assert!((full_doi(t.tuple_id) - t.doi).abs() < 1e-9, "doi drifted for {:?}", t.tuple_id);
    }
    let emitted: Vec<Option<u64>> = partial.tuples.iter().map(|t| t.tuple_id).collect();
    let min_emitted =
        partial.tuples.iter().map(|t| t.doi).fold(f64::INFINITY, f64::min);
    for t in &full.tuples {
        if !emitted.contains(&t.tuple_id) {
            assert!(
                t.doi <= min_emitted + 1e-9,
                "omitted tuple {:?} (doi {}) outranks an emitted one (min {})",
                t.tuple_id,
                t.doi,
                min_emitted
            );
        }
    }
}

#[test]
fn expired_deadline_degrades_to_ok() {
    let (db, profile, initial, selected) = setup();
    let mut engine = Engine::new();
    let ranking = Ranking::default();
    let guard = QueryGuard::builder().deadline(Duration::ZERO).build();
    let (answer, _stats, degradation) =
        ppa_guarded(&db, &mut engine, &initial, &profile, &selected, 1, &ranking, None, &guard)
            .expect("degrades, never errors");
    assert!(!degradation.is_complete());
    match &degradation.events[0] {
        DegradeEvent::PpaCutoff { cause: DegradeCause::Deadline(_), .. } => {}
        other => panic!("expected a deadline cutoff, got {other}"),
    }
    // nothing was provably ranked before the first phase: empty is the
    // only correct partial answer
    assert!(answer.tuples.is_empty());
}

#[test]
fn output_budget_yields_exact_ranked_prefix() {
    let (db, profile, initial, selected) = setup();
    let ranking = Ranking::default();
    let mut engine = Engine::new();
    let (full, _) =
        ppa(&db, &mut engine, &initial, &profile, &selected, 1, &ranking).unwrap();
    assert_eq!(full.tuples.len(), 5);

    let mut engine = Engine::new();
    let guard = QueryGuard::builder().max_output_rows(2).build();
    let (partial, _stats, degradation) =
        ppa_guarded(&db, &mut engine, &initial, &profile, &selected, 1, &ranking, None, &guard)
            .expect("degrades, never errors");
    assert_eq!(partial.tuples.len(), 2);
    assert!(!degradation.is_complete());
    match &degradation.events[0] {
        DegradeEvent::PpaCutoff { cause: DegradeCause::OutputBudget(2), .. } => {}
        other => panic!("expected an output-budget cutoff, got {other}"),
    }
    // the budgeted emission is exactly the first two of the complete run
    for (p, f) in partial.tuples.iter().zip(&full.tuples) {
        assert_eq!(p.tuple_id, f.tuple_id);
        assert!((p.doi - f.doi).abs() < 1e-12);
    }
    assert_ranked_prefix(&partial, &full);
}

#[test]
fn cancellation_degrades_to_ok() {
    let (db, profile, initial, selected) = setup();
    let mut engine = Engine::new();
    let token = CancelToken::new();
    token.cancel();
    let guard = QueryGuard::builder().cancel_token(token).build();
    let (answer, _stats, degradation) =
        ppa_guarded(&db, &mut engine, &initial, &profile, &selected, 1, &Ranking::default(), None, &guard)
            .expect("degrades, never errors");
    assert!(answer.tuples.is_empty());
    assert!(!degradation.is_complete());
    match &degradation.events[0] {
        DegradeEvent::PpaCutoff { cause: DegradeCause::Cancelled, .. } => {}
        other => panic!("expected a cancellation cutoff, got {other}"),
    }
}

#[test]
fn unlimited_guard_reports_complete() {
    let (db, profile, initial, selected) = setup();
    let mut engine = Engine::new();
    let (answer, _stats, degradation) = ppa_guarded(
        &db,
        &mut engine,
        &initial,
        &profile,
        &selected,
        1,
        &Ranking::default(),
        None,
        &QueryGuard::unlimited(),
    )
    .unwrap();
    assert!(degradation.is_complete());
    assert_eq!(degradation.summary(), "complete");
    assert_eq!(answer.tuples.len(), 5);
}

#[test]
fn spa_falls_back_to_plain_query_under_budget() {
    let (db, profile, _initial, _selected) = setup();
    // measure what the plain query alone costs in intermediate rows…
    let engine = Engine::new();
    let query = parse_query("select title from MOVIE").unwrap();
    let (plain, stats) = engine.execute_with_stats(&db, &query).unwrap();
    assert_eq!(plain.len(), 5);
    // …and give the run exactly that much: the (much larger) SPA union
    // statement trips, the fallback's fresh attempt fits exactly.
    let guard = QueryGuard::builder().max_intermediate_rows(stats.rows_intermediate).build();
    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm: AnswerAlgorithm::Spa,
        fallback_to_original: true,
        ..Default::default()
    };
    let mut p = Personalizer::new(&db);
    let report = p
        .run(PersonalizeRequest::query(&profile, &query).options(options).guard(guard))
        .unwrap()
        .report;
    assert_eq!(report.answer.tuples.len(), 5, "fallback returns the plain rows");
    assert!(report.answer.tuples.iter().all(|t| t.doi == 0.0));
    assert!(!report.degradation.is_complete());
    match &report.degradation.events[0] {
        DegradeEvent::Fallback { stage, error } => {
            assert_eq!(stage, "spa");
            assert!(error.contains("intermediate rows"), "{error}");
        }
        other => panic!("expected a fallback event, got {other}"),
    }
}

#[test]
fn spa_without_fallback_surfaces_the_error() {
    let (db, profile, _initial, _selected) = setup();
    let query = parse_query("select title from MOVIE").unwrap();
    let guard = QueryGuard::builder().max_intermediate_rows(5).build();
    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm: AnswerAlgorithm::Spa,
        fallback_to_original: false,
        ..Default::default()
    };
    let mut p = Personalizer::new(&db);
    let err = p
        .run(PersonalizeRequest::query(&profile, &query).options(options).guard(guard))
        .unwrap_err();
    assert!(err.to_string().contains("intermediate rows"), "{err}");
}

#[test]
fn ppa_personalizer_reports_degradation() {
    let (db, profile, _initial, _selected) = setup();
    let query = parse_query("select title from MOVIE").unwrap();
    let guard = QueryGuard::builder().max_output_rows(2).build();
    let options = PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm: AnswerAlgorithm::Ppa,
        ..Default::default()
    };
    let mut p = Personalizer::new(&db);
    let outcome = p
        .run(PersonalizeRequest::query(&profile, &query).options(options).guard(guard))
        .unwrap();
    assert!(!outcome.is_complete());
    assert_eq!(outcome.answer().tuples.len(), 2);
    assert!(outcome.degradation().summary().contains("output budget"));
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use qp_core::degrade::PpaPhase;
    use qp_exec::failpoint::{self, FailAction, FailScenario};

    #[test]
    fn fault_in_absence_stage_keeps_presence_results() {
        let _s = FailScenario::setup();
        let (db, profile, initial, selected) = setup();
        let ranking = Ranking::default();
        let mut engine = Engine::new();
        let (full, _) = ppa(&db, &mut engine, &initial, &profile, &selected, 1, &ranking).unwrap();

        failpoint::arm("ppa.absence", FailAction::Error("absence phase died".into()));
        let mut engine = Engine::new();
        let (partial, _stats, degradation) = ppa_guarded(
            &db,
            &mut engine,
            &initial,
            &profile,
            &selected,
            1,
            &ranking,
            None,
            &QueryGuard::unlimited(),
        )
        .expect("degrades, never errors");
        assert!(!degradation.is_complete());
        match &degradation.events[0] {
            DegradeEvent::PpaCutoff {
                phase: PpaPhase::Absence(0),
                cause: DegradeCause::Fault(msg),
                ..
            } => assert_eq!(msg, "absence phase died"),
            other => panic!("expected an absence-stage fault cutoff, got {other}"),
        }
        // the presence stage completed: its provably-ranked tuples are kept
        assert!(!partial.tuples.is_empty());
        assert!(partial.tuples.len() < full.tuples.len());
        assert_ranked_prefix(&partial, &full);
    }

    #[test]
    fn fault_mid_presence_stage_degrades() {
        let _s = FailScenario::setup();
        let (db, profile, initial, selected) = setup();
        let ranking = Ranking::default();
        let mut engine = Engine::new();
        let (full, _) = ppa(&db, &mut engine, &initial, &profile, &selected, 1, &ranking).unwrap();

        // first presence query passes, the second faults
        failpoint::arm(
            "ppa.presence",
            FailAction::ErrorAfter { skip: 1, message: "mid-phase fault".into() },
        );
        let mut engine = Engine::new();
        let (partial, _stats, degradation) = ppa_guarded(
            &db,
            &mut engine,
            &initial,
            &profile,
            &selected,
            1,
            &ranking,
            None,
            &QueryGuard::unlimited(),
        )
        .expect("degrades, never errors");
        assert!(!degradation.is_complete());
        match &degradation.events[0] {
            DegradeEvent::PpaCutoff {
                phase: PpaPhase::Presence(1),
                cause: DegradeCause::Fault(_),
                presence_unevaluated,
                ..
            } => assert!(*presence_unevaluated >= 1),
            other => panic!("expected a presence-stage fault cutoff, got {other}"),
        }
        assert_ranked_prefix(&partial, &full);
    }

    #[test]
    fn spa_failpoint_triggers_fallback() {
        let _s = FailScenario::setup();
        let (db, profile, _initial, _selected) = setup();
        failpoint::arm("spa.execute", FailAction::Error("spa statement died".into()));
        let query = parse_query("select title from MOVIE").unwrap();
        let options = PersonalizationOptions {
            criterion: SelectionCriterion::TopK(3),
            l: 1,
            algorithm: AnswerAlgorithm::Spa,
            fallback_to_original: true,
            ..Default::default()
        };
        let mut p = Personalizer::new(&db);
        let report = p
            .run(PersonalizeRequest::query(&profile, &query).options(options))
            .unwrap()
            .report;
        assert_eq!(report.answer.tuples.len(), 5);
        assert!(!report.degradation.is_complete());
        match &report.degradation.events[0] {
            DegradeEvent::Fallback { stage, error } => {
                assert_eq!(stage, "spa");
                assert!(error.contains("spa statement died"), "{error}");
            }
            other => panic!("expected a fallback event, got {other}"),
        }
    }
}
