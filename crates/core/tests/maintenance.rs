//! Incremental maintenance under write traffic: a serving personalizer
//! with a [`qp_core::MatRegistry`] attached must return answers
//! **byte-identical** to a recompute-from-scratch against every published
//! epoch — across generated delta sequences including delete-then-
//! reinsert — while steady-state runs execute zero preference queries.
//! Also pins the memo-outlives-publish invariant: preference selection
//! depends only on the catalog (and the profile), so data deltas must
//! never drop per-user selection memos, and schema publishes must drop
//! them wholesale.

use std::sync::Arc;

use proptest::prelude::*;
use qp_core::{
    AnswerAlgorithm, Maintainer, PersonalizeRequest, Personalizer, Profile, ProfileStore,
    SelectionCriterion, UserId,
};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, DbDelta, SnapshotStore, Value};

/// The movies fixture as a snapshot store.
fn movies_store(extra: i64) -> Arc<SnapshotStore> {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for i in 0..extra {
        let mid = 6 + i;
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(mid), Value::str(format!("Filler {i}")), Value::Int(1960 + (i % 60))],
        )
        .unwrap();
        db.insert_by_name(
            "GENRE",
            vec![Value::Int(mid), Value::str(if i % 2 == 0 { "comedy" } else { "musical" })],
        )
        .unwrap();
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(1 + (i % 3))]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    Arc::new(SnapshotStore::new(db))
}

/// Mixed profile: `MOVIE.year < 1980` is single-relation (patchable by
/// the maintainer), the director and genre preferences join through
/// other relations (carried or rematerialized depending on the delta).
fn als_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
    )
    .unwrap()
}

/// One generated write against the logical movie catalog. Indices are
/// resolved against the test's model of live MOVIE tuples at delta-build
/// time, so every delete targets a live tuple.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
enum Op {
    /// Insert a fresh movie (never-seen mid) with a genre row.
    InsertMovie { year: i64, musical: bool },
    /// Delete a live movie tuple (by index into the live list).
    DeleteMovie { idx: usize },
    /// Delete a live movie tuple and reinsert the same values in the
    /// same delta — exercises fresh-row-id reinsertion.
    ReinsertMovie { idx: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1950i64..2020, any::<bool>())
            .prop_map(|(year, musical)| Op::InsertMovie { year, musical }),
        (0usize..64).prop_map(|idx| Op::DeleteMovie { idx }),
        (0usize..64).prop_map(|idx| Op::ReinsertMovie { idx }),
    ]
}

fn arb_deltas() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(arb_op(), 1..5), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole parity property: after every published delta, a
    /// maintained personalizer's PPA answer equals a from-scratch
    /// recompute against the same epoch, byte for byte — and once warm,
    /// the maintained run executes zero preference queries.
    #[test]
    fn maintained_answers_match_recompute_over_delta_sequences(deltas in arb_deltas()) {
        let store = movies_store(10);
        let snapshot = store.snapshot();
        let profile = als_profile(&snapshot);
        let initial = parse_query("select title from MOVIE").unwrap();
        let maintainer = Maintainer::new(Arc::clone(&store));
        let mut maintained = Personalizer::serving(Arc::clone(&store))
            .with_maintenance(maintainer.registry());

        // Model of live MOVIE tuples, for generating valid deletes.
        let mut live: Vec<(i64, String, i64)> = Vec::new();
        for (_, row) in snapshot.table_by_name("MOVIE").unwrap().iter() {
            live.push((
                row[0].as_i64().unwrap(),
                row[1].as_str().unwrap().to_string(),
                row[2].as_i64().unwrap(),
            ));
        }
        let mut next_mid: i64 = live.iter().map(|m| m.0).max().unwrap_or(0) + 1;

        // Warm the registry (first run builds + registers all K results).
        let request = || {
            PersonalizeRequest::query(&profile, &initial)
                .criterion(SelectionCriterion::TopK(3))
                .algorithm(AnswerAlgorithm::Ppa)
        };
        let warm = maintained.run(request()).unwrap();
        prop_assert!(
            warm.report.ppa_stats.map(|s| s.parameterized_queries).unwrap_or(0) > 0,
            "warmup run should execute preference queries"
        );

        for ops in deltas {
            let mut delta = DbDelta::new();
            let mut touched = false;
            // Delta deletes are resolved against the pre-delta snapshot,
            // so a delta may target each live tuple at most once (and may
            // not delete a tuple it inserts itself). Track targeted mids
            // per delta — mids are the MOVIE primary key — and skip ops
            // that would double-target.
            let mut targeted: std::collections::HashSet<i64> = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::InsertMovie { year, musical } => {
                        let mid = next_mid;
                        next_mid += 1;
                        let title = format!("Gen {mid}");
                        delta = delta.insert(
                            "MOVIE",
                            vec![Value::Int(mid), Value::str(&*title), Value::Int(year)],
                        );
                        delta = delta.insert(
                            "GENRE",
                            vec![
                                Value::Int(mid),
                                Value::str(if musical { "musical" } else { "comedy" }),
                            ],
                        );
                        live.push((mid, title, year));
                        targeted.insert(mid);
                        touched = true;
                    }
                    Op::DeleteMovie { idx } if !live.is_empty() => {
                        let at = idx % live.len();
                        if targeted.insert(live[at].0) {
                            let (mid, title, year) = live.remove(at);
                            delta = delta.delete(
                                "MOVIE",
                                vec![Value::Int(mid), Value::str(&*title), Value::Int(year)],
                            );
                            touched = true;
                        }
                    }
                    Op::ReinsertMovie { idx } if !live.is_empty() => {
                        let at = idx % live.len();
                        if targeted.insert(live[at].0) {
                            let (mid, title, year) = live[at].clone();
                            let row =
                                vec![Value::Int(mid), Value::str(&*title), Value::Int(year)];
                            delta = delta.delete("MOVIE", row.clone()).insert("MOVIE", row);
                            touched = true;
                        }
                    }
                    _ => {}
                }
            }
            if !touched {
                continue;
            }
            let (epoch, _, _) = maintainer.publish(&delta).unwrap();

            let got = maintained.run(request()).unwrap();
            prop_assert_eq!(
                got.report.ppa_stats.map(|s| s.parameterized_queries),
                Some(0),
                "steady-state maintained run must execute zero preference queries"
            );

            let mut oracle = Personalizer::shared(Arc::clone(&epoch));
            let expect = oracle.run(request()).unwrap();
            prop_assert_eq!(
                &got.report.answer,
                &expect.report.answer,
                "maintained answer != recompute-from-scratch after delta"
            );
        }
    }
}

/// Satellite: the memo-outlives-publish invariant. Preference selection
/// reads the catalog and the profile, never table data, so the per-user
/// selection memo must survive data publishes untouched — and a schema
/// publish must wholesale-drop it, because catalog changes can change
/// what the memoized selection should contain.
#[test]
fn selection_memos_outlive_data_publishes_but_not_schema_changes() {
    let store = movies_store(4);
    let snapshot = store.snapshot();
    let profile = als_profile(&snapshot);
    let profiles = Arc::new(ProfileStore::new());
    profiles.register(UserId(1), &profile).unwrap();
    let maintainer = Maintainer::new(Arc::clone(&store))
        .with_profile_store(Arc::clone(&profiles));
    let mut serving = Personalizer::serving(Arc::clone(&store))
        .with_profile_store(Arc::clone(&profiles))
        .with_maintenance(maintainer.registry());
    let sql = "select title from MOVIE";
    let request = || {
        PersonalizeRequest::user(UserId(1), sql)
            .criterion(SelectionCriterion::TopK(3))
            .algorithm(AnswerAlgorithm::Ppa)
    };

    let first = serving.run(request()).unwrap();
    let handle = profiles.get(UserId(1)).unwrap();
    assert_eq!(handle.cached_selections(), 1, "first run memoizes its selection");

    // A well-connected insert (Allen comedy from the 70s) that must rank
    // near the top of the post-publish answer.
    let delta = DbDelta::new()
        .insert("MOVIE", vec![Value::Int(900), Value::str("Late Arrival"), Value::Int(1971)])
        .insert("GENRE", vec![Value::Int(900), Value::str("comedy")])
        .insert("DIRECTED", vec![Value::Int(900), Value::Int(1)]);
    maintainer.publish(&delta).unwrap();
    assert_eq!(
        handle.cached_selections(),
        1,
        "a data publish must not drop selection memos (selection is catalog-only)"
    );

    let second = serving.run(request()).unwrap();
    assert_eq!(
        handle.cached_selections(),
        1,
        "the post-publish run reuses the memo instead of re-selecting under a new key"
    );
    assert_eq!(
        first.report.selected, second.report.selected,
        "memoized selection is unchanged by data"
    );
    assert!(
        second.report.answer.tuples.iter().any(|t| {
            t.row.first().and_then(|v| v.as_str()).is_some_and(|s| s == "Late Arrival")
        }),
        "the maintained answer still reflects the published insert"
    );

    maintainer
        .publish_schema(|db| {
            db.create_relation("AWARD", vec![Attribute::new("mid", DataType::Int)], &[])
                .map(|_| ())
        })
        .unwrap();
    assert_eq!(
        handle.cached_selections(),
        0,
        "a schema publish wholesale-drops every selection memo"
    );
    assert!(maintainer.registry().is_empty(), "and clears the registry");
}

/// Steady-state serving under write traffic: once warm, every maintained
/// run resolves all K preference results from the registry (counted as
/// `maint.registry.hits` on the engine's metrics) and executes zero
/// preference queries, across both patch and rematerialize deltas.
#[test]
fn steady_state_runs_replay_the_registry() {
    let store = movies_store(10);
    let snapshot = store.snapshot();
    let profile = als_profile(&snapshot);
    let initial = parse_query("select title from MOVIE").unwrap();
    let maintainer = Maintainer::new(Arc::clone(&store));
    let mut serving =
        Personalizer::serving(Arc::clone(&store)).with_maintenance(maintainer.registry());
    let request = || {
        PersonalizeRequest::query(&profile, &initial)
            .criterion(SelectionCriterion::TopK(3))
            .algorithm(AnswerAlgorithm::Ppa)
    };

    serving.run(request()).unwrap();
    let k = maintainer.registry().len();
    assert!(k > 0, "warmup registers the run's materializations");

    // A MOVIE-only delta patches; a GENRE delta forces rematerialization
    // of the join-shaped entries. Both must leave steady state intact.
    let deltas = [
        DbDelta::new().insert(
            "MOVIE",
            vec![Value::Int(800), Value::str("Patch Me"), Value::Int(1977)],
        ),
        DbDelta::new().insert("GENRE", vec![Value::Int(800), Value::str("musical")]),
    ];
    for delta in &deltas {
        maintainer.publish(delta).unwrap();
        let hits_before = serving.metrics().counter("maint.registry.hits").get();
        let out = serving.run(request()).unwrap();
        assert_eq!(
            out.report.ppa_stats.map(|s| s.parameterized_queries),
            Some(0),
            "maintained steady-state run executed preference queries"
        );
        let hits_after = serving.metrics().counter("maint.registry.hits").get();
        assert_eq!(
            hits_after - hits_before,
            k as u64,
            "all K preference results should come from the registry"
        );
    }
}
