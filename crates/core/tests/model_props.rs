//! Property tests over the preference model: doi invariants, ranking
//! function conditions (§3.3), elastic functions, and selection-algorithm
//! agreement on random profiles.

use proptest::prelude::*;
use qp_core::select::{fakecrit::fakecrit, sps::sps, QueryContext, SelectionCriterion};
use qp_core::{
    CompareOp, Doi, ElasticFunction, MixedKind, PersonalizationGraph, Profile, Ranking,
    RankingKind,
};
use qp_storage::{Attribute, Catalog, DataType, Value};

// ---- doi ---------------------------------------------------------------

/// Valid exact doi pairs: dT·dF ≤ 0, not both zero.
fn arb_doi_pair() -> impl Strategy<Value = (f64, f64)> {
    (-1.0..=1.0f64, 0.0..=1.0f64, any::<bool>()).prop_filter_map(
        "indifferent pairs are not stored",
        |(a, mag, flip)| {
            let b = if a >= 0.0 { -mag } else { mag };
            let (t, f) = if flip { (b, a) } else { (a, b) };
            if t == 0.0 && f == 0.0 {
                None
            } else {
                Some((t, f))
            }
        },
    )
}

proptest! {
    #[test]
    fn doi_invariants((t, f) in arb_doi_pair()) {
        let doi = Doi::new(t, f).unwrap();
        // satisfaction peak non-negative, failure peak non-negative
        prop_assert!(doi.d_plus_peak() >= 0.0);
        prop_assert!(doi.d_minus_peak() >= 0.0);
        // criticality within [0, 2]
        let c = doi.criticality();
        prop_assert!((0.0..=2.0).contains(&c), "c = {c}");
        // c = d0+ + |d0-| exactly
        prop_assert!((c - (doi.d_plus_peak() + doi.d_minus_peak())).abs() < 1e-12);
    }

    #[test]
    fn doi_scaling_is_linear((t, f) in arb_doi_pair(), factor in 0.0..=1.0f64) {
        let doi = Doi::new(t, f).unwrap();
        let scaled = doi.scaled(factor);
        prop_assert!((scaled.criticality() - factor * doi.criticality()).abs() < 1e-12);
        prop_assert!((scaled.d_plus_peak() - factor * doi.d_plus_peak()).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_pairs_rejected(a in 0.01..=1.0f64, b in 0.01..=1.0f64, sign in any::<bool>()) {
        // both strictly positive (or both strictly negative) violates dT·dF ≤ 0
        let (t, f) = if sign { (a, b) } else { (-a, -b) };
        prop_assert!(Doi::new(t, f).is_err());
    }
}

// ---- elastic functions --------------------------------------------------

proptest! {
    #[test]
    fn elastic_bounded_and_symmetric(
        center in -1000.0..1000.0f64,
        width in 0.1..500.0f64,
        peak in -1.0..=1.0f64,
        offset in -600.0..600.0f64,
    ) {
        let e = ElasticFunction::triangular(center, width, peak).unwrap();
        let v = e.eval(center + offset);
        // bounded by the peak, same sign
        prop_assert!(v.abs() <= peak.abs() + 1e-12);
        if peak > 0.0 { prop_assert!(v >= 0.0); }
        if peak < 0.0 { prop_assert!(v <= 0.0); }
        // symmetric around the center
        let mirror = e.eval(center - offset);
        prop_assert!((v - mirror).abs() < 1e-9);
        // zero outside the support
        if offset.abs() >= width {
            prop_assert_eq!(v, 0.0);
        }
        // peak attained at the center
        prop_assert!((e.eval(center) - peak).abs() < 1e-12);
    }

    #[test]
    fn elastic_monotone_from_center(
        width in 0.5..100.0f64,
        peak in 0.05..=1.0f64,
        d1 in 0.0..1.0f64,
        d2 in 0.0..1.0f64,
    ) {
        let e = ElasticFunction::triangular(0.0, width, peak).unwrap();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(e.eval(near * width) >= e.eval(far * width) - 1e-12);
    }
}

// ---- ranking functions ----------------------------------------------------

fn arb_degrees(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..=1.0f64, 1..max_len)
}

proptest! {
    #[test]
    fn ranking_philosophy_bounds(d in arb_degrees(12)) {
        let max = d.iter().copied().fold(f64::MIN, f64::max);
        let min = d.iter().copied().fold(f64::MAX, f64::min);
        // inflationary: r ≥ max
        prop_assert!(RankingKind::Inflationary.positive(&d) >= max - 1e-12);
        // dominant: r = max
        prop_assert!((RankingKind::Dominant.positive(&d) - max).abs() < 1e-12);
        // reserved: min ≤ r ≤ max
        let r = RankingKind::Reserved.positive(&d);
        prop_assert!(r >= min - 1e-9 && r <= max + 1e-9, "min={min} r={r} max={max}");
        // all within [0, 1]
        for k in RankingKind::ALL {
            let v = k.positive(&d);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{k:?} -> {v}");
        }
    }

    #[test]
    fn ranking_monotone_in_degrees(d in arb_degrees(8), idx in 0usize..8, bump in 0.0..0.3f64) {
        // raising any degree must not lower the combined score
        let mut d2 = d.clone();
        let i = idx % d2.len();
        d2[i] = (d2[i] + bump).min(1.0);
        for k in RankingKind::ALL {
            prop_assert!(k.positive(&d2) >= k.positive(&d) - 1e-12, "{k:?}");
        }
    }

    #[test]
    fn mixed_conditions_hold(pos in arb_degrees(8), neg_mags in arb_degrees(8)) {
        let neg: Vec<f64> = neg_mags.iter().map(|d| -d).collect();
        for kind in RankingKind::ALL {
            for mixed in [MixedKind::Sum, MixedKind::CountWeighted] {
                let r = Ranking::new(kind, mixed);
                let m = r.mixed(&pos, &neg);
                // condition (3): r⁻ ≤ r ≤ r⁺
                prop_assert!(m <= r.positive(&pos) + 1e-12, "{kind:?} {mixed:?}");
                prop_assert!(m >= r.negative(&neg) - 1e-12, "{kind:?} {mixed:?}");
            }
        }
    }

    #[test]
    fn mixed_condition4(d in 0.0..=1.0f64) {
        // condition (4): r(d, −d) = 0
        for kind in RankingKind::ALL {
            for mixed in [MixedKind::Sum, MixedKind::CountWeighted] {
                let r = Ranking::new(kind, mixed);
                prop_assert!(r.mixed(&[d], &[-d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn negative_is_mirror(d in arb_degrees(8)) {
        let neg: Vec<f64> = d.iter().map(|x| -x).collect();
        for k in RankingKind::ALL {
            prop_assert!((k.positive(&d) + k.negative(&neg)).abs() < 1e-12);
        }
    }
}

// ---- selection algorithms ---------------------------------------------

/// A random profile over a small fixed star schema: selections on B/C/D,
/// joins A→B, A→C, B→D with random degrees.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        prop::collection::vec((0usize..3, 0.05..=1.0f64, 0.0..=1.0f64), 1..8),
        prop::collection::vec(0.05..=1.0f64, 3..=3),
    )
        .prop_map(|(sels, joins)| {
            let c = star_catalog();
            let mut p = Profile::new();
            p.add_join(&c, ("A", "id"), ("B", "id"), joins[0]).unwrap();
            p.add_join(&c, ("A", "id"), ("C", "id"), joins[1]).unwrap();
            p.add_join(&c, ("B", "id"), ("D", "id"), joins[2]).unwrap();
            for (i, (rel, d_plus, d_minus_mag)) in sels.into_iter().enumerate() {
                let rel_name = ["B", "C", "D"][rel];
                let doi = match Doi::new(d_plus, -d_minus_mag) {
                    Ok(d) => d,
                    Err(_) => Doi::presence(0.5).unwrap(),
                };
                p.add_selection(&c, rel_name, "x", CompareOp::Eq, Value::Int(i as i64), doi)
                    .unwrap();
            }
            p
        })
}

fn star_catalog() -> Catalog {
    let mut c = Catalog::new();
    for name in ["A", "B", "C", "D"] {
        c.add_relation(
            name,
            vec![Attribute::new("id", DataType::Int), Attribute::new("x", DataType::Int)],
            &["id"],
        )
        .unwrap();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fakecrit_and_sps_agree(profile in arb_profile(), k in 1usize..6) {
        let c = star_catalog();
        let graph = PersonalizationGraph::build(&profile);
        let q = QueryContext::from_query(&c, &qp_sql::parse_query("select x from A").unwrap())
            .unwrap();
        let a = fakecrit(&graph, &q, SelectionCriterion::TopK(k)).unwrap();
        let b = sps(&graph, &q, SelectionCriterion::TopK(k)).unwrap();
        // identical criticalities in identical order (paths may tie)
        let ca: Vec<u64> = a.iter().map(|s| (s.criticality * 1e12) as u64).collect();
        let cb: Vec<u64> = b.iter().map(|s| (s.criticality * 1e12) as u64).collect();
        prop_assert_eq!(ca, cb);
    }

    #[test]
    fn fakecrit_output_sorted_and_bounded(profile in arb_profile(), k in 1usize..8) {
        let c = star_catalog();
        let graph = PersonalizationGraph::build(&profile);
        let q = QueryContext::from_query(&c, &qp_sql::parse_query("select x from A").unwrap())
            .unwrap();
        let out = fakecrit(&graph, &q, SelectionCriterion::TopK(k)).unwrap();
        prop_assert!(out.len() <= k);
        for w in out.windows(2) {
            prop_assert!(w[0].criticality >= w[1].criticality - 1e-12);
        }
        for s in &out {
            prop_assert!((0.0..=2.0).contains(&s.criticality));
            // implicit criticality = join product · selection criticality
            let expect = s.join_degree * s.sel(&profile).criticality();
            prop_assert!((s.criticality - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_criterion_respected(profile in arb_profile(), c0 in 0.0..2.0f64) {
        let c = star_catalog();
        let graph = PersonalizationGraph::build(&profile);
        let q = QueryContext::from_query(&c, &qp_sql::parse_query("select x from A").unwrap())
            .unwrap();
        let out = fakecrit(&graph, &q, SelectionCriterion::Threshold(c0)).unwrap();
        for s in &out {
            prop_assert!(s.criticality > c0, "{} <= {c0}", s.criticality);
        }
        // threshold output is a prefix of the unrestricted ranking
        let all = fakecrit(&graph, &q, SelectionCriterion::TopK(100)).unwrap();
        let expected: Vec<_> = all.into_iter().filter(|s| s.criticality > c0).collect();
        prop_assert_eq!(out.len(), expected.len());
    }
}
