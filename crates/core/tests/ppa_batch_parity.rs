//! Batched-vs-per-tuple PPA probe parity: on the vectorized engine each
//! preference query is executed once in full and materialized, and every
//! round's parameterized probes are hash lookups against the stored
//! result; under `QP_ROW_ENGINE` semantics every probe runs once per
//! tuple. Both paths must produce **byte-identical** personalized
//! answers — same tuples, same order, same dois, same satisfied/failed
//! explanations — while the batched path executes strictly fewer probe
//! queries whenever a round surfaces more than one fresh tuple.

use qp_core::answer::ppa::ppa;
use qp_core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use qp_core::{PersonalizationGraph, Profile, Ranking};
use qp_exec::Engine;
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

/// The movies fixture with `extra` filler rows so presence/absence rounds
/// surface multi-tuple batches.
fn movies_db(extra: i64) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for i in 0..extra {
        let mid = 6 + i;
        db.insert_by_name(
            "MOVIE",
            vec![Value::Int(mid), Value::str(format!("Filler {i}")), Value::Int(1960 + (i % 60))],
        )
        .unwrap();
        db.insert_by_name(
            "GENRE",
            vec![Value::Int(mid), Value::str(if i % 2 == 0 { "comedy" } else { "musical" })],
        )
        .unwrap();
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(1 + (i % 3))]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    db
}

fn als_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
    )
    .unwrap()
}

#[test]
fn batched_probes_match_per_tuple_probes() {
    for extra in [0i64, 7, 40] {
        for l in [1usize, 2] {
            for parallelism in [1usize, 4] {
                let db = movies_db(extra);
                let profile = als_profile(&db);
                let graph = PersonalizationGraph::build(&profile);
                let initial = parse_query("select title from MOVIE").unwrap();
                let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
                let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
                let ranking = Ranking::default();

                let mut row_engine = Engine::new();
                row_engine.set_row_engine(true);
                row_engine.set_parallelism(parallelism);
                let (row_answer, row_stats) =
                    ppa(&db, &mut row_engine, &initial, &profile, &selected, l, &ranking)
                        .unwrap();

                let mut batch_engine = Engine::new();
                batch_engine.set_row_engine(false);
                batch_engine.set_parallelism(parallelism);
                let (batch_answer, batch_stats) =
                    ppa(&db, &mut batch_engine, &initial, &profile, &selected, l, &ranking)
                        .unwrap();

                assert_eq!(
                    batch_answer, row_answer,
                    "answers diverge (extra={extra}, l={l}, parallelism={parallelism})"
                );
                // Batched probes execute each preference query once, so
                // with multi-tuple rounds they must execute fewer probe
                // queries than the per-tuple oracle — never more.
                assert!(
                    batch_stats.parameterized_queries <= row_stats.parameterized_queries,
                    "batched path ran more probes ({}) than per-tuple ({})",
                    batch_stats.parameterized_queries,
                    row_stats.parameterized_queries
                );
                if extra >= 7 && parallelism == 1 {
                    assert!(
                        batch_stats.parameterized_queries < row_stats.parameterized_queries,
                        "multi-tuple rounds should collapse probes \
                         (batched {}, per-tuple {})",
                        batch_stats.parameterized_queries,
                        row_stats.parameterized_queries
                    );
                }
            }
        }
    }
}

#[test]
fn probe_batch_size_counter_tracks_engine_mode() {
    let db = movies_db(12);
    let profile = als_profile(&db);
    let graph = PersonalizationGraph::build(&profile);
    let initial = parse_query("select title from MOVIE").unwrap();
    let qc = QueryContext::from_query(db.catalog(), &initial).unwrap();
    let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(3)).unwrap();
    let ranking = Ranking::default();

    let mut batch_engine = Engine::new();
    batch_engine.set_row_engine(false);
    ppa(&db, &mut batch_engine, &initial, &profile, &selected, 1, &ranking).unwrap();
    assert!(
        batch_engine.metrics().counter("ppa.probe.batch_size").get() > 0,
        "vectorized PPA should record tuples covered by batched probes"
    );

    let mut row_engine = Engine::new();
    row_engine.set_row_engine(true);
    ppa(&db, &mut row_engine, &initial, &profile, &selected, 1, &ranking).unwrap();
    assert_eq!(
        row_engine.metrics().counter("ppa.probe.batch_size").get(),
        0,
        "per-tuple PPA must not report batched probes"
    );
}
