//! Deterministic end-to-end retry coverage: a chaos-shaped *transient*
//! fault (fails once, then heals) must be absorbed by the attached
//! [`RetryPolicy`], counted in the outcome's `resilience.retries`, and
//! counted in the `retry.*` metrics — with the final answer identical to
//! a fault-free run.
#![cfg(feature = "failpoints")]

use std::sync::Arc;

use qp_core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizeRequest, Personalizer, Profile,
    Resilience, RetryPolicy, SelectionCriterion,
};
use qp_obs::MetricValue;
use qp_storage::failpoint::{self, FailAction, FailScenario};
use qp_storage::{Attribute, DataType, Database, Value};

fn small_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    for mid in 0..60i64 {
        db.insert_by_name(
            "MOVIE",
            vec![
                Value::Int(mid),
                Value::str(format!("m{mid}").as_str()),
                Value::Int(1960 + (mid * 7) % 60),
            ],
        )
        .unwrap();
    }
    db
}

fn profile(db: &Database) -> Profile {
    Profile::parse(db.catalog(), "doi(MOVIE.year < 1985) = (0.8, 0)\n").unwrap()
}

fn spa_options() -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(1),
        l: 1,
        algorithm: AnswerAlgorithm::Spa,
        ..Default::default()
    }
}

fn counter(p: &Personalizer<'_>, name: &str) -> u64 {
    p.metrics()
        .snapshot()
        .into_iter()
        .find(|r| r.name == name)
        .map(|r| match r.value {
            MetricValue::Counter(n) => n,
            _ => 0,
        })
        .unwrap_or(0)
}

#[test]
fn transient_fault_is_retried_and_counted() {
    let db = small_db();
    let profile = profile(&db);

    // Fault-free reference answer first.
    let reference = {
        let mut p = Personalizer::new(&db);
        p.run(PersonalizeRequest::sql(&profile, "select title from MOVIE")
            .options(spa_options()))
            .expect("clean run")
            .report
            .answer
    };

    let _scenario = FailScenario::setup();
    // SPA's execute site fails exactly once then heals: the shape of a
    // transient fault. Without a retry policy this run would surface a
    // typed error; with one, attempt #2 must succeed.
    failpoint::arm(
        "spa.execute",
        FailAction::ErrorTimes { times: 1, message: "transient blip".into() },
    );

    let mut p = Personalizer::new(&db);
    p.set_resilience(Some(Arc::new(
        Resilience::new().with_retry(RetryPolicy::quick(7)),
    )));
    let outcome = p
        .run(PersonalizeRequest::sql(&profile, "select title from MOVIE")
            .options(spa_options()))
        .expect("retry absorbs the transient fault");

    assert!(
        outcome.resilience.retries >= 1,
        "the outcome must report the retry, got {}",
        outcome.resilience.retries
    );
    assert_eq!(counter(&p, "retry.attempts"), u64::from(outcome.resilience.retries));
    assert!(outcome.is_complete(), "the retried answer is exact, not degraded");
    assert_eq!(outcome.report.answer, reference, "retried answer matches the clean run");
}

#[test]
fn without_retry_policy_the_same_fault_is_a_typed_error() {
    let db = small_db();
    let profile = profile(&db);
    let _scenario = FailScenario::setup();
    failpoint::arm(
        "spa.execute",
        FailAction::ErrorTimes { times: 1, message: "transient blip".into() },
    );

    let mut p = Personalizer::new(&db);
    let result = p.run(
        PersonalizeRequest::sql(&profile, "select title from MOVIE").options(spa_options()),
    );
    let err = result.expect_err("no retry policy: the transient fault surfaces");
    assert!(qp_core::is_transient(&err), "and it is typed as transient: {err}");
}
