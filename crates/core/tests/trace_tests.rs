//! Observability tests: a traced personalization run emits a
//! deterministic set of spans whose parent links form the documented
//! hierarchy, and the final metric values agree with the report's own
//! counters ([`qp_core::answer::ppa::PpaStats`]).

use std::sync::Arc;

use qp_core::{
    AnswerAlgorithm, PersonalizationOptions, PersonalizeRequest, Personalizer, Profile,
    SelectionCriterion,
};
use qp_obs::{MemoryRecorder, MetricValue, Record, SpanRecord, Tracer};
use qp_sql::parse_query;
use qp_storage::{Attribute, DataType, Database, Value};

/// The SPA/PPA fixture: W. Allen comedies, a musical, and old films.
fn movies_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
        ],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid"],
    )
    .unwrap();
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .unwrap();
    for (mid, t, y) in [
        (1, "Annie Hall", 1977),
        (2, "Manhattan", 1979),
        (3, "Zelig", 1983),
        (4, "Heat", 1995),
        (5, "Chicago", 2002),
    ] {
        db.insert_by_name("MOVIE", vec![Value::Int(mid), Value::str(t), Value::Int(y)]).unwrap();
    }
    for (mid, g) in [(1, "comedy"), (2, "comedy"), (3, "comedy"), (4, "thriller"), (5, "musical")]
    {
        db.insert_by_name("GENRE", vec![Value::Int(mid), Value::str(g)]).unwrap();
    }
    for (did, n) in [(1, "W. Allen"), (2, "M. Mann"), (3, "R. Marshall")] {
        db.insert_by_name("DIRECTOR", vec![Value::Int(did), Value::str(n)]).unwrap();
    }
    for (mid, did) in [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3)] {
        db.insert_by_name("DIRECTED", vec![Value::Int(mid), Value::Int(did)]).unwrap();
    }
    db
}

fn als_profile(db: &Database) -> Profile {
    Profile::parse(
        db.catalog(),
        "doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n",
    )
    .unwrap()
}

fn options(algorithm: AnswerAlgorithm) -> PersonalizationOptions {
    PersonalizationOptions {
        criterion: SelectionCriterion::TopK(3),
        l: 1,
        algorithm,
        ..Default::default()
    }
}

/// Runs one traced personalization and returns (spans, metric records,
/// report).
fn traced_run(
    algorithm: AnswerAlgorithm,
) -> (Vec<SpanRecord>, Vec<Record>, qp_core::personalize::PersonalizationReport) {
    let db = movies_db();
    let profile = als_profile(&db);
    let query = parse_query("select title from MOVIE").unwrap();

    let recorder = Arc::new(MemoryRecorder::new());
    let mut p = Personalizer::new(&db);
    p.set_tracer(Tracer::new(recorder.clone()));
    let report = p
        .run(PersonalizeRequest::query(&profile, &query).options(options(algorithm)))
        .unwrap()
        .report;
    p.tracer().record_metrics(&p.metrics());
    let spans = recorder.spans();
    let records = recorder.take();
    (spans, records, report)
}

fn span<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("span `{name}` missing from {:?}", names(spans)))
}

fn names(spans: &[SpanRecord]) -> Vec<String> {
    spans.iter().map(|s| s.name.clone()).collect()
}

fn counter(records: &[Record], name: &str) -> u64 {
    records
        .iter()
        .find_map(|r| match r {
            Record::Metric(m) if m.name == name => match m.value {
                MetricValue::Counter(n) => Some(n),
                _ => None,
            },
            _ => None,
        })
        .unwrap_or_else(|| panic!("counter `{name}` missing"))
}

#[test]
fn ppa_run_emits_the_documented_span_hierarchy() {
    let (spans, _, _) = traced_run(AnswerAlgorithm::Ppa);

    let root = span(&spans, "personalize");
    assert_eq!(root.parent, None, "personalize is the root span");

    let selection = span(&spans, "selection");
    assert_eq!(selection.parent, Some(root.id));
    assert_eq!(span(&spans, "selection.graph").parent, Some(selection.id));
    assert_eq!(span(&spans, "selection.criterion").parent, Some(selection.id));

    let run = span(&spans, "ppa.run");
    assert_eq!(run.parent, Some(root.id));
    assert_eq!(span(&spans, "ppa.prepare").parent, Some(run.id));
    for s in spans.iter().filter(|s| s.name == "ppa.presence" || s.name == "ppa.absence") {
        assert_eq!(s.parent, Some(run.id), "round span {} nests under ppa.run", s.name);
    }
    // Als profile has both presence and absence preferences in the top 3,
    // so both round kinds execute.
    assert!(spans.iter().any(|s| s.name == "ppa.presence"), "{:?}", names(&spans));
    assert!(spans.iter().any(|s| s.name == "ppa.absence"), "{:?}", names(&spans));

    // All timing is recorded, and children never outlive their parent.
    for s in &spans {
        if let Some(pid) = s.parent {
            if let Some(parent) = spans.iter().find(|p| p.id == pid) {
                assert!(
                    s.start_us >= parent.start_us,
                    "child {} starts before its parent",
                    s.name
                );
            }
        }
    }
}

#[test]
fn spa_run_emits_build_and_execute_phases() {
    let (spans, records, report) = traced_run(AnswerAlgorithm::Spa);
    let root = span(&spans, "personalize");
    let run = span(&spans, "spa.run");
    assert_eq!(run.parent, Some(root.id));
    assert_eq!(span(&spans, "spa.build").parent, Some(run.id));
    let exec = span(&spans, "spa.execute");
    assert_eq!(exec.parent, Some(run.id));
    // The single SPA statement runs inside the execute phase.
    assert!(
        spans.iter().any(|s| s.name == "exec.query" && s.parent == Some(exec.id)),
        "{:?}",
        names(&spans)
    );
    assert_eq!(counter(&records, "spa.runs"), 1);
    assert_eq!(counter(&records, "spa.answer_tuples"), report.answer.len() as u64);
}

#[test]
fn ppa_metrics_agree_with_the_reported_stats() {
    let (spans, records, report) = traced_run(AnswerAlgorithm::Ppa);
    let stats = report.ppa_stats.expect("PPA ran");

    assert_eq!(counter(&records, "ppa.runs"), 1);
    assert_eq!(counter(&records, "ppa.presence_queries"), stats.presence_queries as u64);
    assert_eq!(counter(&records, "ppa.absence_queries"), stats.absence_queries as u64);
    assert_eq!(
        counter(&records, "ppa.parameterized_queries"),
        stats.parameterized_queries as u64
    );
    assert_eq!(counter(&records, "ppa.emitted"), report.answer.len() as u64);
    assert_eq!(counter(&records, "selection.runs"), 1);
    assert_eq!(counter(&records, "selection.selected"), report.selected.len() as u64);
    assert_eq!(counter(&records, "ppa.cuts"), 0, "unguarded run never cuts");

    // One round span per executed progressive query.
    let presence_spans = spans.iter().filter(|s| s.name == "ppa.presence").count();
    let absence_spans = spans.iter().filter(|s| s.name == "ppa.absence").count();
    assert_eq!(presence_spans, stats.presence_queries);
    assert_eq!(absence_spans, stats.absence_queries);
}

#[test]
fn traced_runs_are_deterministic() {
    let (a, _, _) = traced_run(AnswerAlgorithm::Ppa);
    let (b, _, _) = traced_run(AnswerAlgorithm::Ppa);
    assert_eq!(names(&a), names(&b), "same query, same profile, same span sequence");
    let parents = |spans: &[SpanRecord]| spans.iter().map(|s| s.parent).collect::<Vec<_>>();
    assert_eq!(parents(&a), parents(&b));
}

#[test]
fn disabled_tracer_records_nothing() {
    let db = movies_db();
    let profile = als_profile(&db);
    let query = parse_query("select title from MOVIE").unwrap();
    let mut p = Personalizer::new(&db);
    assert!(!p.tracer().is_enabled());
    p.run(PersonalizeRequest::query(&profile, &query).options(options(AnswerAlgorithm::Ppa)))
        .unwrap();
    // Metrics still accumulate even without a tracer: they are registry
    // state, not trace records.
    assert_eq!(p.metrics().counter("ppa.runs").get(), 1);
}
