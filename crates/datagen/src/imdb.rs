//! Synthetic IMDB-style database generator.
//!
//! Builds the paper's schema (§3) and fills it with deterministic,
//! Zipf-skewed data. The original evaluation used an IMDB dump with over
//! 340k films; this generator reproduces the *statistical shape* the
//! algorithms care about — selectivity spread across genre/year/duration
//! conditions, prolific directors, 1–n fan-out from movies to genres,
//! casts, and plays — at any configurable scale.

use qp_storage::{Attribute, Catalog, DataType, Database, RelId, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::names;

/// Genre vocabulary (Zipf-ranked: earlier entries are more common).
pub const GENRES: &[&str] = &[
    "drama", "comedy", "thriller", "action", "romance", "documentary", "horror", "adventure",
    "crime", "sci-fi", "fantasy", "musical", "mystery", "animation", "western", "war", "biography",
    "family", "history", "sport",
];

/// Theatre regions (Zipf-ranked).
pub const REGIONS: &[&str] =
    &["downtown", "suburbs", "north", "south", "east", "west", "riverside", "old-town"];

/// Cast roles.
pub const ROLES: &[&str] = &["lead", "support", "cameo"];

/// Scale knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImdbScale {
    /// Number of movies.
    pub movies: usize,
    /// Number of actors.
    pub actors: usize,
    /// Number of directors.
    pub directors: usize,
    /// Number of theatres.
    pub theatres: usize,
    /// Average plays (movie showings) per theatre.
    pub plays_per_theatre: usize,
    /// RNG seed; same seed → identical database.
    pub seed: u64,
}

impl ImdbScale {
    /// ~1k movies — unit tests.
    pub fn small() -> Self {
        ImdbScale {
            movies: 1_000,
            actors: 2_000,
            directors: 200,
            theatres: 40,
            plays_per_theatre: 25,
            seed: 42,
        }
    }

    /// ~20k movies — integration tests, quick benchmarks.
    pub fn medium() -> Self {
        ImdbScale {
            movies: 20_000,
            actors: 30_000,
            directors: 2_000,
            theatres: 200,
            plays_per_theatre: 60,
            seed: 42,
        }
    }

    /// ~100k movies — the figure-reproduction runs.
    pub fn large() -> Self {
        ImdbScale {
            movies: 100_000,
            actors: 120_000,
            directors: 8_000,
            theatres: 500,
            plays_per_theatre: 120,
            seed: 42,
        }
    }
}

/// Creates the paper's schema in a fresh database (no data).
pub fn create_schema(db: &mut Database) {
    db.create_relation(
        "THEATRE",
        vec![
            Attribute::new("tid", DataType::Int),
            Attribute::new("name", DataType::Text),
            Attribute::new("phone", DataType::Text),
            Attribute::new("region", DataType::Text),
            Attribute::new("ticket", DataType::Float),
        ],
        &["tid"],
    )
    .expect("fresh database");
    db.create_relation(
        "PLAY",
        vec![
            Attribute::new("tid", DataType::Int),
            Attribute::new("mid", DataType::Int),
            Attribute::new("date", DataType::Int),
        ],
        &["tid", "mid", "date"],
    )
    .expect("fresh database");
    db.create_relation(
        "GENRE",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("genre", DataType::Text)],
        &["mid", "genre"],
    )
    .expect("fresh database");
    db.create_relation(
        "MOVIE",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("title", DataType::Text),
            Attribute::new("year", DataType::Int),
            Attribute::new("duration", DataType::Int),
        ],
        &["mid"],
    )
    .expect("fresh database");
    db.create_relation(
        "CAST",
        vec![
            Attribute::new("mid", DataType::Int),
            Attribute::new("aid", DataType::Int),
            Attribute::new("award", DataType::Int),
            Attribute::new("role", DataType::Text),
        ],
        &["mid", "aid"],
    )
    .expect("fresh database");
    db.create_relation(
        "ACTOR",
        vec![Attribute::new("aid", DataType::Int), Attribute::new("name", DataType::Text)],
        &["aid"],
    )
    .expect("fresh database");
    db.create_relation(
        "DIRECTED",
        vec![Attribute::new("mid", DataType::Int), Attribute::new("did", DataType::Int)],
        &["mid", "did"],
    )
    .expect("fresh database");
    db.create_relation(
        "DIRECTOR",
        vec![Attribute::new("did", DataType::Int), Attribute::new("name", DataType::Text)],
        &["did"],
    )
    .expect("fresh database");

    // schema-graph join edges (the personalization graph extends these)
    let c = db.catalog_mut();
    for (ra, aa, rb, ab) in [
        ("PLAY", "tid", "THEATRE", "tid"),
        ("PLAY", "mid", "MOVIE", "mid"),
        ("GENRE", "mid", "MOVIE", "mid"),
        ("CAST", "mid", "MOVIE", "mid"),
        ("CAST", "aid", "ACTOR", "aid"),
        ("DIRECTED", "mid", "MOVIE", "mid"),
        ("DIRECTED", "did", "DIRECTOR", "did"),
    ] {
        c.add_join_edge_by_name(ra, aa, rb, ab).expect("schema joins");
    }
}

/// Zipf-ish pick: index `i` with probability ∝ 1/(i+1).
fn zipf_pick(rng: &mut StdRng, n: usize) -> usize {
    // inverse-CDF over harmonic weights, cheap approximation
    let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut target = rng.gen::<f64>() * h;
    for i in 0..n {
        target -= 1.0 / (i + 1) as f64;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generates a database at the given scale. Director 0 is always named
/// `"W. Allen"` so the paper's running example works verbatim.
pub fn generate(scale: ImdbScale) -> Database {
    let mut db = Database::new();
    create_schema(&mut db);
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let rel = |db: &Database, name: &str| -> RelId {
        db.catalog().relation_by_name(name).expect("schema created").id
    };

    // directors
    let director_rel = rel(&db, "DIRECTOR");
    let rows: Vec<Row> = (0..scale.directors)
        .map(|did| {
            let name = if did == 0 {
                "W. Allen".to_string()
            } else {
                names::person_name(did as u64 + 10_000)
            };
            vec![Value::Int(did as i64), Value::str(name)]
        })
        .collect();
    db.bulk_load(director_rel, rows);

    // actors
    let actor_rel = rel(&db, "ACTOR");
    let rows: Vec<Row> = (0..scale.actors)
        .map(|aid| vec![Value::Int(aid as i64), Value::str(names::person_name(aid as u64))])
        .collect();
    db.bulk_load(actor_rel, rows);

    // movies + genres + cast + directed
    let movie_rel = rel(&db, "MOVIE");
    let genre_rel = rel(&db, "GENRE");
    let cast_rel = rel(&db, "CAST");
    let directed_rel = rel(&db, "DIRECTED");
    let mut movies = Vec::with_capacity(scale.movies);
    let mut genres = Vec::new();
    let mut casts = Vec::new();
    let mut directed = Vec::new();
    for mid in 0..scale.movies {
        // years skew recent: quadratic ramp over 1930..=2004
        let u: f64 = rng.gen::<f64>().sqrt();
        let year = 1930 + (u * 74.0) as i64;
        // durations: rough normal around 105, clamped 55..=240
        let duration: f64 = (0..4).map(|_| rng.gen_range(55.0..160.0)).sum::<f64>() / 4.0;
        let duration = duration.round().clamp(55.0, 240.0) as i64;
        movies.push(vec![
            Value::Int(mid as i64),
            Value::str(names::movie_title(mid as u64)),
            Value::Int(year),
            Value::Int(duration),
        ]);
        // 1..=3 genres, Zipf over the vocabulary
        let ng = 1 + (rng.gen::<f64>() * rng.gen::<f64>() * 3.0) as usize;
        let mut seen = Vec::new();
        for _ in 0..ng {
            let g = zipf_pick(&mut rng, GENRES.len());
            if !seen.contains(&g) {
                seen.push(g);
                genres.push(vec![Value::Int(mid as i64), Value::str(GENRES[g])]);
            }
        }
        // 2..=6 cast members, Zipf-popular actors
        let nc = rng.gen_range(2..=6);
        let mut cast_seen = Vec::new();
        for _ in 0..nc {
            let a = zipf_pick(&mut rng, scale.actors);
            if !cast_seen.contains(&a) {
                cast_seen.push(a);
                casts.push(vec![
                    Value::Int(mid as i64),
                    Value::Int(a as i64),
                    Value::Int(i64::from(rng.gen::<f64>() < 0.05)),
                    Value::str(ROLES[rng.gen_range(0..ROLES.len())]),
                ]);
            }
        }
        // one director, Zipf-prolific
        let d = zipf_pick(&mut rng, scale.directors);
        directed.push(vec![Value::Int(mid as i64), Value::Int(d as i64)]);
    }
    db.bulk_load(movie_rel, movies);
    db.bulk_load(genre_rel, genres);
    db.bulk_load(cast_rel, casts);
    db.bulk_load(directed_rel, directed);

    // theatres + plays
    let theatre_rel = rel(&db, "THEATRE");
    let play_rel = rel(&db, "PLAY");
    let mut theatres = Vec::with_capacity(scale.theatres);
    let mut plays = Vec::new();
    for tid in 0..scale.theatres {
        let region = REGIONS[zipf_pick(&mut rng, REGIONS.len())];
        let ticket = (rng.gen_range(8.0..24.0_f64) / 2.0).round() / 2.0 + 3.0; // 5.0..=15.0 in .25 steps
        theatres.push(vec![
            Value::Int(tid as i64),
            Value::str(names::theatre_name(tid as u64)),
            Value::str(format!("555-{:04}", tid)),
            Value::str(region),
            Value::Float(ticket),
        ]);
        let mut played = Vec::new();
        for _ in 0..scale.plays_per_theatre {
            // theatres favour recent movies (high mids)
            let m = scale.movies - 1 - zipf_pick(&mut rng, scale.movies);
            if !played.contains(&m) {
                played.push(m);
                let date = rng.gen_range(0..365);
                plays.push(vec![Value::Int(tid as i64), Value::Int(m as i64), Value::Int(date)]);
            }
        }
    }
    db.bulk_load(theatre_rel, theatres);
    db.bulk_load(play_rel, plays);

    db
}

/// Convenience: the catalog the generator creates (for building profiles
/// without a populated database).
pub fn schema_catalog() -> Catalog {
    let mut db = Database::new();
    create_schema(&mut db);
    std::mem::take(db.catalog_mut())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(ImdbScale { movies: 100, ..ImdbScale::small() });
        let b = generate(ImdbScale { movies: 100, ..ImdbScale::small() });
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table_by_name("MOVIE").unwrap();
        let tb = b.table_by_name("MOVIE").unwrap();
        assert_eq!(ta.rows(), tb.rows());
    }

    #[test]
    fn scale_respected() {
        let db = generate(ImdbScale::small());
        assert_eq!(db.table_by_name("MOVIE").unwrap().len(), 1_000);
        assert_eq!(db.table_by_name("DIRECTOR").unwrap().len(), 200);
        assert!(db.table_by_name("GENRE").unwrap().len() >= 1_000);
        assert!(!db.table_by_name("PLAY").unwrap().is_empty());
    }

    #[test]
    fn w_allen_exists() {
        let db = generate(ImdbScale::small());
        let t = db.table_by_name("DIRECTOR").unwrap();
        let (_, row) = t.iter().next().unwrap();
        assert_eq!(row[1], Value::str("W. Allen"));
    }

    #[test]
    fn genres_are_zipf_skewed() {
        let db = generate(ImdbScale::small());
        let t = db.table_by_name("GENRE").unwrap();
        let mut counts = std::collections::HashMap::new();
        for (_, row) in t.iter() {
            *counts.entry(row[1].to_string()).or_insert(0usize) += 1;
        }
        let drama = counts.get("drama").copied().unwrap_or(0);
        let sport = counts.get("sport").copied().unwrap_or(0);
        assert!(drama > sport * 3, "drama={drama} sport={sport}");
    }

    #[test]
    fn years_in_range() {
        let db = generate(ImdbScale::small());
        for (_, row) in db.table_by_name("MOVIE").unwrap().iter() {
            let y = row[2].as_i64().unwrap();
            assert!((1930..=2004).contains(&y), "{y}");
            let d = row[3].as_i64().unwrap();
            assert!((55..=240).contains(&d), "{d}");
        }
    }

    #[test]
    fn referential_integrity() {
        let db = generate(ImdbScale { movies: 200, ..ImdbScale::small() });
        let movies = db.table_by_name("MOVIE").unwrap().len() as i64;
        for (_, row) in db.table_by_name("GENRE").unwrap().iter() {
            assert!(row[0].as_i64().unwrap() < movies);
        }
        for (_, row) in db.table_by_name("DIRECTED").unwrap().iter() {
            assert!(row[1].as_i64().unwrap() < 200);
        }
        for (_, row) in db.table_by_name("PLAY").unwrap().iter() {
            assert!(row[1].as_i64().unwrap() < movies);
        }
    }

    #[test]
    fn schema_graph_has_join_edges() {
        let db = generate(ImdbScale { movies: 50, ..ImdbScale::small() });
        let c = db.catalog();
        let m = c.resolve("MOVIE", "mid").unwrap();
        let g = c.resolve("GENRE", "mid").unwrap();
        assert!(c.is_joinable(m, g));
        assert!(c.is_joinable(g, m));
    }
}
