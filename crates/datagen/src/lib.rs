#![warn(missing_docs)]

//! # qp-datagen
//!
//! Synthetic data for the paper's evaluation (§6), substituting for the
//! assets we cannot ship:
//!
//! * [`imdb`] — a deterministic generator for the paper's exact movie
//!   schema (THEATRE, PLAY, GENRE, MOVIE, CAST, ACTOR, DIRECTED,
//!   DIRECTOR), with Zipf-skewed categorical values so selections have a
//!   realistic selectivity spread (the original used an IMDB dump with
//!   340k films).
//! * [`profiles`] — the paper's "Al" profile (Figure 2) plus random
//!   profile generators with a configurable mix of preference types
//!   (positive/negative, presence/absence, exact/elastic, joins).
//! * [`users`] — simulated users replacing the 14 human subjects of
//!   §6.2: each owns a latent ground-truth preference set (a superset of
//!   the stored profile), a ranking philosophy, and rating noise, and
//!   produces the tuple-interest / answer-score / difficulty / coverage
//!   measurements the paper collected.
//! * [`queries`] — the five-query workload of trial 1 and the
//!   specific-need queries of trial 2.

pub mod imdb;
pub mod names;
pub mod profiles;
pub mod queries;
pub mod users;

pub use imdb::{generate, ImdbScale};
pub use profiles::{als_profile, random_profile, ProfilePool, ProfileSpec};
pub use users::{simulate_users, AnswerEvaluation, SimulatedUser};
