//! Deterministic fake-name generation.
//!
//! Names are synthesized from syllable tables indexed by an integer, so
//! the same id always produces the same name — data generation stays
//! reproducible without shipping name corpora.

const FIRST: &[&str] = &[
    "Al", "Ben", "Cara", "Dana", "Eli", "Fay", "Gus", "Hana", "Ira", "Jo", "Kay", "Lee", "Mia",
    "Ned", "Ora", "Pam", "Quin", "Rae", "Sam", "Tess", "Uma", "Vic", "Wes", "Xena", "Yan", "Zoe",
];

const SYLLABLES: &[&str] = &[
    "bar", "cor", "dan", "fel", "gar", "hol", "jen", "kas", "lan", "mor", "nor", "pel", "quil",
    "ros", "sal", "tor", "ul", "ven", "win", "yor", "zan",
];

/// A deterministic person name for an id, e.g. `"Cara Barcor"`.
pub fn person_name(id: u64) -> String {
    let first = FIRST[(id % FIRST.len() as u64) as usize];
    let mut n = id / FIRST.len() as u64;
    let mut last = String::new();
    loop {
        last.push_str(SYLLABLES[(n % SYLLABLES.len() as u64) as usize]);
        n /= SYLLABLES.len() as u64;
        if n == 0 || last.len() >= 9 {
            break;
        }
    }
    let mut chars = last.chars();
    let last: String = match chars.next() {
        Some(c) => c.to_uppercase().chain(chars).collect(),
        None => last,
    };
    format!("{first} {last}")
}

/// A deterministic movie title for an id, e.g. `"The Gar of Pel"`.
/// Distinct ids always produce distinct titles (the id is fully decomposed
/// into the pattern and syllable choices), which keeps SPA's
/// group-by-projection semantics aligned with tuple identity.
pub fn movie_title(id: u64) -> String {
    let cap = |s: &str| {
        let mut cs = s.chars();
        match cs.next() {
            Some(c) => c.to_uppercase().chain(cs).collect::<String>(),
            None => String::new(),
        }
    };
    let n = SYLLABLES.len() as u64;
    let pattern = id % 4;
    let mut rest = id / 4;
    let a = SYLLABLES[(rest % n) as usize];
    rest /= n;
    let b = SYLLABLES[(rest % n) as usize];
    rest /= n;
    // `rest` distinguishes ids beyond the syllable space; suffix only when
    // needed so small databases keep clean titles
    let suffix = if rest > 0 { format!(" {}", roman(rest)) } else { String::new() };
    match pattern {
        0 => format!("The {} of {}{}", cap(a), cap(b), suffix),
        1 => format!("{} {}{}", cap(a), cap(b), suffix),
        2 => format!("Return to {}{}{}", cap(a), cap(b), suffix),
        _ => format!("{} {} Nights{}", cap(a), cap(b), suffix),
    }
}

/// Roman-ish numeral suffix (not classically minimal, but deterministic
/// and unique per value).
fn roman(mut n: u64) -> String {
    let mut out = String::new();
    for (val, sym) in
        [(100, "C"), (90, "XC"), (50, "L"), (40, "XL"), (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")]
    {
        while n >= val {
            out.push_str(sym);
            n -= val;
        }
        if n == 0 {
            break;
        }
    }
    out
}

/// A deterministic theatre name.
pub fn theatre_name(id: u64) -> String {
    const KINDS: &[&str] = &["Odeon", "Rex", "Lux", "Plaza", "Astor", "Orpheum", "Palace", "Ritz"];
    format!("{} {}", KINDS[(id % KINDS.len() as u64) as usize], id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(person_name(42), person_name(42));
        assert_eq!(movie_title(7), movie_title(7));
        assert_eq!(theatre_name(3), theatre_name(3));
    }

    #[test]
    fn mostly_distinct() {
        let names: std::collections::HashSet<String> = (0..5000).map(person_name).collect();
        assert!(names.len() > 4000, "only {} distinct names", names.len());
    }

    #[test]
    fn titles_unique() {
        let titles: std::collections::HashSet<String> = (0..120_000).map(movie_title).collect();
        assert_eq!(titles.len(), 120_000);
    }

    #[test]
    fn titles_nonempty_and_capitalized() {
        for i in 0..100 {
            let t = movie_title(i);
            assert!(!t.is_empty());
            assert!(t.chars().next().unwrap().is_uppercase());
        }
    }
}
