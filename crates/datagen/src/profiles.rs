//! Profile generators.
//!
//! [`als_profile`] reproduces the paper's running example (Figure 2).
//! [`random_profile`] draws preferences of every type the model supports
//! from the *actual data* of a generated database, so conditions always
//! have non-trivial selectivity.

use qp_core::{
    CompareOp, Degree, Doi, ElasticFunction, JoinPreference, PrefError, Preference, Profile,
    SelectionPreference,
};
use qp_storage::{AttrId, Catalog, Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Al's profile from Figure 2 of the paper (P1–P10).
pub fn als_profile(db: &Database) -> Result<Profile, PrefError> {
    Profile::parse(
        db.catalog(),
        "# Al's profile (Figure 2)\n\
         doi(DIRECTOR.name = 'W. Allen') = (0.8, 0)\n\
         doi(THEATRE.ticket = around(6, 2)) = (e(0.5), 0)\n\
         doi(MOVIE.year < 1980) = (-0.7, 0)\n\
         doi(MOVIE.duration = around(120, 30)) = (e(0.7), e(-0.5))\n\
         doi(GENRE.genre = 'musical') = (-0.9, 0.7)\n\
         doi(THEATRE.region = 'downtown') = (0.7, -0.5)\n\
         doi(MOVIE.mid = DIRECTED.mid) = (1)\n\
         doi(DIRECTED.did = DIRECTOR.did) = (0.9)\n\
         doi(MOVIE.mid = GENRE.mid) = (0.8)\n\
         doi(MOVIE.mid = PLAY.mid) = (0.7)\n\
         doi(PLAY.tid = THEATRE.tid) = (1)\n\
         doi(THEATRE.tid = PLAY.tid) = (1)\n\
         doi(PLAY.mid = MOVIE.mid) = (1)\n",
    )
}

/// Mix of preference types for [`random_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Exact positive presence preferences (the only type of the paper's
    /// earlier model).
    pub positive_presence: usize,
    /// Negative preferences (dislikes, satisfied by absence).
    pub negative: usize,
    /// Complex preferences combining presence and absence degrees.
    pub complex: usize,
    /// Elastic preferences on numeric attributes.
    pub elastic: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ProfileSpec {
    /// Only exact positive presence preferences (the Figure 7/8 setup:
    /// "varying K positive presence preferences").
    pub fn positive_only(n: usize, seed: u64) -> Self {
        ProfileSpec { positive_presence: n, negative: 0, complex: 0, elastic: 0, seed }
    }

    /// A balanced mix totalling `n` selection preferences.
    pub fn mixed(n: usize, seed: u64) -> Self {
        let quarter = n / 4;
        ProfileSpec {
            positive_presence: n - 3 * quarter,
            negative: quarter,
            complex: quarter,
            elastic: quarter,
            seed,
        }
    }

    /// Total selection preferences requested.
    pub fn total(&self) -> usize {
        self.positive_presence + self.negative + self.complex + self.elastic
    }
}

/// The standard join preferences connecting the schema, mirroring P7–P10:
/// every path used by the selection algorithms starts from these.
pub fn standard_joins(db: &Database, profile: &mut Profile, rng: &mut StdRng) {
    let c = db.catalog();
    type JoinSpec<'a> = ((&'a str, &'a str), (&'a str, &'a str), f64);
    let joins: &[JoinSpec<'_>] = &[
        (("MOVIE", "mid"), ("DIRECTED", "mid"), 1.0),
        (("DIRECTED", "did"), ("DIRECTOR", "did"), 0.9),
        (("MOVIE", "mid"), ("GENRE", "mid"), 0.8),
        (("MOVIE", "mid"), ("CAST", "mid"), 0.8),
        (("CAST", "aid"), ("ACTOR", "aid"), 0.9),
        (("MOVIE", "mid"), ("PLAY", "mid"), 0.7),
        (("PLAY", "tid"), ("THEATRE", "tid"), 1.0),
        (("THEATRE", "tid"), ("PLAY", "tid"), 1.0),
        (("PLAY", "mid"), ("MOVIE", "mid"), 1.0),
    ];
    for ((fr, fa), (tr, ta), base) in joins {
        // jitter keeps runs with different seeds from being identical
        let jitter = 1.0 - rng.gen::<f64>() * 0.1;
        let d = (base * jitter).clamp(0.05, 1.0);
        profile.add_join(c, (fr, fa), (tr, ta), d).expect("standard join");
    }
}

/// Samples a distinct value of a text column.
fn sample_text(db: &Database, rel: &str, col: &str, rng: &mut StdRng) -> Option<String> {
    let table = db.table_by_name(rel).ok()?;
    if table.is_empty() {
        return None;
    }
    let idx = db.catalog().relation_by_name(rel).ok()?.attr_index(col)?;
    let row = rng.gen_range(0..table.len());
    table.rows()[row][idx].as_str().map(str::to_string)
}

/// Generates a profile with the requested preference mix, drawing values
/// from the database so every condition matches real data. Standard join
/// preferences are always included.
pub fn random_profile(db: &Database, spec: &ProfileSpec) -> Profile {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let c = db.catalog();
    let mut profile = Profile::new();
    standard_joins(db, &mut profile, &mut rng);

    // candidate (relation, attr) pools for categorical conditions
    let pools: &[(&str, &str)] =
        &[("GENRE", "genre"), ("DIRECTOR", "name"), ("ACTOR", "name"), ("THEATRE", "region")];
    let mut used: std::collections::HashSet<(String, String)> = std::collections::HashSet::new();
    let mut draw_condition = |rng: &mut StdRng| -> Option<(&'static str, &'static str, String)> {
        for _ in 0..64 {
            let (rel, col) = pools[rng.gen_range(0..pools.len())];
            if let Some(v) = sample_text(db, rel, col, rng) {
                if used.insert((format!("{rel}.{col}"), v.clone())) {
                    return Some((rel, col, v));
                }
            }
        }
        None
    };

    for _ in 0..spec.positive_presence {
        if let Some((rel, col, v)) = draw_condition(&mut rng) {
            let d = rng.gen_range(0.3..0.95);
            profile
                .add_selection(c, rel, col, CompareOp::Eq, v, Doi::presence(d).expect("valid"))
                .expect("sampled attribute exists");
        }
    }
    for _ in 0..spec.negative {
        if let Some((rel, col, v)) = draw_condition(&mut rng) {
            let d = rng.gen_range(0.3..0.95);
            profile
                .add_selection(c, rel, col, CompareOp::Eq, v, Doi::dislike(d).expect("valid"))
                .expect("sampled attribute exists");
        }
    }
    for _ in 0..spec.complex {
        if let Some((rel, col, v)) = draw_condition(&mut rng) {
            // like presence, dislike absence — or the reverse
            let d1 = rng.gen_range(0.3..0.9);
            let d2 = rng.gen_range(0.2..0.7);
            let doi = if rng.gen_bool(0.5) {
                Doi::new(d1, -d2).expect("valid")
            } else {
                Doi::new(-d1, d2).expect("valid")
            };
            profile
                .add_selection(c, rel, col, CompareOp::Eq, v, doi)
                .expect("sampled attribute exists");
        }
    }
    for i in 0..spec.elastic {
        // alternate between duration, ticket, and year targets
        let (rel, col, center, width) = match i % 3 {
            0 => ("MOVIE", "duration", rng.gen_range(85.0..150.0_f64).round(), 25.0),
            1 => ("THEATRE", "ticket", rng.gen_range(5.0..12.0_f64).round(), 2.5),
            _ => ("MOVIE", "year", rng.gen_range(1960.0..2000.0_f64).round(), 10.0),
        };
        let peak = rng.gen_range(0.4..0.9);
        let pos = Degree::Elastic(ElasticFunction::triangular(center, width, peak).expect("valid"));
        let neg = if rng.gen_bool(0.4) {
            Degree::Elastic(
                ElasticFunction::triangular(center, width, -rng.gen_range(0.2..0.5))
                    .expect("valid"),
            )
        } else {
            Degree::Exact(0.0)
        };
        let doi = Doi::new(pos, neg).expect("valid");
        profile
            .add_selection(c, rel, col, CompareOp::Eq, Value::Float(center), doi)
            .expect("numeric attribute exists");
    }
    profile
}

/// Presampled pools for generating profiles at million-user scale.
///
/// [`random_profile`] rescans live tables for every condition it draws,
/// which is fine for a handful of profiles and hopeless for a million.
/// `ProfilePool::build` scans each categorical column once up front,
/// pre-resolves attribute ids, and pre-validates the join skeleton, so
/// each [`ProfilePool::profile`] call is pure in-memory assembly — no
/// catalog lookups, no table access, deterministic per user id.
pub struct ProfilePool {
    /// Distinct values per categorical attribute (equality conditions).
    categorical: Vec<(AttrId, Vec<Value>)>,
    /// `(attr, lo, hi, width)` envelopes for elastic numeric targets.
    numeric: Vec<(AttrId, f64, f64, f64)>,
    /// The P7–P10-style join skeleton, degrees jittered per user.
    joins: Vec<JoinPreference>,
}

/// SplitMix64 step: cheap, seedable per user, good enough for sampling.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform f64 in `[0, 1)` from one SplitMix64 draw.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl ProfilePool {
    /// Value pools capped so a pathological column can't bloat the pool.
    const MAX_POOL: usize = 4096;

    /// Scans the database once and builds the pools. Panics if the
    /// schema lacks the IMDB relations (`MOVIE`, `GENRE`, …) — the pool
    /// generator exists for the synthetic benchmark schema.
    pub fn build(db: &Database) -> ProfilePool {
        let c = db.catalog();
        let mut categorical = Vec::new();
        for (rel, col) in
            [("GENRE", "genre"), ("DIRECTOR", "name"), ("ACTOR", "name"), ("THEATRE", "region")]
        {
            let attr = c.resolve(rel, col).expect("IMDB schema attribute");
            let table = db.table(attr.rel);
            let mut seen = std::collections::HashSet::new();
            let mut values = Vec::new();
            for v in table.column(attr.idx as usize) {
                if values.len() >= Self::MAX_POOL {
                    break;
                }
                if let Some(s) = v.as_str() {
                    if seen.insert(s.to_string()) {
                        values.push(v.clone());
                    }
                }
            }
            if !values.is_empty() {
                categorical.push((attr, values));
            }
        }
        assert!(!categorical.is_empty(), "no categorical values to pool");

        let numeric = [
            ("MOVIE", "duration", 85.0, 150.0, 25.0),
            ("THEATRE", "ticket", 5.0, 12.0, 2.5),
            ("MOVIE", "year", 1960.0, 2000.0, 10.0),
        ]
        .into_iter()
        .map(|(rel, col, lo, hi, width)| {
            (c.resolve(rel, col).expect("IMDB schema attribute"), lo, hi, width)
        })
        .collect();

        let mut rng = StdRng::seed_from_u64(0);
        let mut skeleton = Profile::new();
        standard_joins(db, &mut skeleton, &mut rng);
        let joins = skeleton.joins().map(|(_, j)| j.clone()).collect();

        ProfilePool { categorical, numeric, joins }
    }

    /// Assembles `user`'s profile: the join skeleton plus `selections`
    /// preferences mixed 3:1:1 positive / negative / elastic. The same
    /// `(user, selections)` always yields the same profile.
    pub fn profile(&self, catalog: &Catalog, user: u64, selections: usize) -> Profile {
        let mut state = user ^ 0xD6E8_FEB8_6659_FD93;
        let mut profile = Profile::new();
        for j in &self.joins {
            let mut j = j.clone();
            j.degree = (j.degree * (1.0 - unit(&mut state) * 0.1)).clamp(0.05, 1.0);
            profile.push(Preference::Join(j));
        }
        for i in 0..selections {
            let pref = match i % 5 {
                4 => self.elastic(catalog, &mut state),
                kind => self.equality(catalog, &mut state, kind == 3),
            };
            profile.push(Preference::Selection(pref));
        }
        profile
    }

    fn equality(&self, catalog: &Catalog, state: &mut u64, negative: bool) -> SelectionPreference {
        let (attr, values) =
            &self.categorical[(splitmix(state) as usize) % self.categorical.len()];
        let value = values[(splitmix(state) as usize) % values.len()].clone();
        let d = 0.3 + unit(state) * 0.65;
        let doi = if negative { Doi::dislike(d) } else { Doi::presence(d) }.expect("valid doi");
        SelectionPreference::new(catalog, *attr, CompareOp::Eq, value, doi)
            .expect("pooled condition validates")
    }

    fn elastic(&self, catalog: &Catalog, state: &mut u64) -> SelectionPreference {
        let (attr, lo, hi, width) = self.numeric[(splitmix(state) as usize) % self.numeric.len()];
        let center = (lo + unit(state) * (hi - lo)).round();
        let peak = 0.4 + unit(state) * 0.5;
        let pos =
            Degree::Elastic(ElasticFunction::triangular(center, width, peak).expect("valid"));
        let doi = Doi::new(pos, Degree::Exact(0.0)).expect("valid doi");
        SelectionPreference::new(catalog, attr, CompareOp::Eq, Value::Float(center), doi)
            .expect("pooled elastic validates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate, ImdbScale};

    fn db() -> Database {
        generate(ImdbScale { movies: 300, ..ImdbScale::small() })
    }

    #[test]
    fn als_profile_parses() {
        let db = db();
        let p = als_profile(&db).unwrap();
        assert_eq!(p.selections().count(), 6);
        assert_eq!(p.joins().count(), 7);
    }

    #[test]
    fn positive_only_profile() {
        let db = db();
        let p = random_profile(&db, &ProfileSpec::positive_only(25, 7));
        assert_eq!(p.selections().count(), 25);
        for (_, s) in p.selections() {
            assert!(s.is_presence());
            assert!(!s.doi.is_elastic());
            assert!(s.doi.d_minus_peak() == 0.0);
        }
    }

    #[test]
    fn mixed_profile_has_all_types() {
        let db = db();
        let p = random_profile(&db, &ProfileSpec::mixed(20, 11));
        assert_eq!(p.selections().count(), 20);
        let negatives = p.selections().filter(|(_, s)| !s.is_presence()).count();
        let elastics = p.selections().filter(|(_, s)| s.doi.is_elastic()).count();
        assert!(negatives > 0);
        assert_eq!(elastics, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let db = db();
        let a = random_profile(&db, &ProfileSpec::mixed(12, 3));
        let b = random_profile(&db, &ProfileSpec::mixed(12, 3));
        assert_eq!(a, b);
        let c = random_profile(&db, &ProfileSpec::mixed(12, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn profile_round_trips_through_dsl() {
        let db = db();
        let p = random_profile(&db, &ProfileSpec::mixed(16, 5));
        let dsl = p.to_dsl(db.catalog());
        let p2 = Profile::parse(db.catalog(), &dsl).unwrap();
        assert_eq!(p.len(), p2.len());
    }

    #[test]
    fn pooled_profiles_are_deterministic_and_varied() {
        let db = db();
        let pool = ProfilePool::build(&db);
        let c = db.catalog();
        let a = pool.profile(c, 42, 10);
        let b = pool.profile(c, 42, 10);
        assert_eq!(a.selections().count(), 10);
        assert_eq!(a.joins().count(), pool.joins.len());
        // Same user, same profile content (identity ids differ by design).
        assert_eq!(a, b);
        assert_ne!(a, pool.profile(c, 43, 10));
        // The 3:1:1 mix holds: 2 of 10 negative, 2 of 10 elastic.
        assert_eq!(a.selections().filter(|(_, s)| !s.is_presence()).count(), 2);
        assert_eq!(a.selections().filter(|(_, s)| s.doi.is_elastic()).count(), 2);
    }

    #[test]
    fn pooled_values_come_from_the_data() {
        let db = db();
        let pool = ProfilePool::build(&db);
        let p = pool.profile(db.catalog(), 7, 8);
        for (_, s) in p.selections() {
            if s.doi.is_elastic() {
                continue;
            }
            let table = db.table(s.attr.rel);
            let found = table
                .column(s.attr.idx as usize)
                .any(|v| v.sql_eq(&s.condition.value) == Some(true));
            assert!(found, "pooled value {:?} not present in data", s.condition.value);
        }
    }

    #[test]
    fn conditions_match_real_data() {
        let db = db();
        let p = random_profile(&db, &ProfileSpec::positive_only(10, 9));
        // every categorical condition value exists in its table
        for (_, s) in p.selections() {
            let rel = db.catalog().relation(s.attr.rel);
            let table = db.table(s.attr.rel);
            let found = table
                .column(s.attr.idx as usize)
                .any(|v| v.sql_eq(&s.condition.value) == Some(true));
            assert!(found, "{}.{} = {:?} not in data", rel.name, s.attr.idx, s.condition.value);
        }
    }
}
