//! The evaluation query workload.
//!
//! Trial 1 (§6.2): each subject submitted a set of five queries twice,
//! once unchanged and once personalized. Trial 2: each subject issued one
//! query for a specific need (a theatre to go to, a DVD to rent, …).

/// The five-query workload of trial 1 (Q1–Q5).
pub fn trial1_queries() -> Vec<&'static str> {
    vec![
        // Q1: the paper's running example
        "select title from MOVIE",
        // Q2: comedies
        "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'comedy'",
        // Q3: recent movies
        "select title, year from MOVIE where year >= 1995",
        // Q4: what's playing where
        "select T.name, M.title from THEATRE T, PLAY P, MOVIE M \
         where T.tid = P.tid and P.mid = M.mid",
        // Q5: movies with their directors
        "select M.title, D.name from MOVIE M, DIRECTED DI, DIRECTOR D \
         where M.mid = DI.mid and DI.did = D.did",
    ]
}

/// Specific-need queries for trial 2, one per subject (wrapping around
/// when there are more subjects than queries).
pub fn trial2_queries() -> Vec<&'static str> {
    vec![
        // find a theatre for tonight
        "select T.name, T.region, T.ticket from THEATRE T, PLAY P, MOVIE M \
         where T.tid = P.tid and P.mid = M.mid and M.year >= 1998",
        // pick a DVD to rent
        "select title, year, duration from MOVIE where year >= 1990",
        // something to watch with friends
        "select M.title from MOVIE M, GENRE G where M.mid = G.mid and G.genre = 'comedy'",
        // a classic for the weekend
        "select title, year from MOVIE where year < 1970",
        // a downtown outing
        "select T.name, M.title from THEATRE T, PLAY P, MOVIE M \
         where T.tid = P.tid and P.mid = M.mid and T.region = 'downtown'",
        // catch a long epic on the big screen
        "select M.title, M.duration from MOVIE M where M.duration >= 150",
        // who directed the recent releases
        "select M.title, D.name from MOVIE M, DIRECTED DI, DIRECTOR D \
         where M.mid = DI.mid and DI.did = D.did and M.year >= 2000",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate, ImdbScale};
    use qp_exec::Engine;

    #[test]
    fn all_workload_queries_execute() {
        let db = generate(ImdbScale { movies: 300, ..ImdbScale::small() });
        let e = Engine::new();
        for sql in trial1_queries().into_iter().chain(trial2_queries()) {
            let rs = e.execute_sql(&db, sql).unwrap_or_else(|err| panic!("{sql}: {err}"));
            // Q1 always has rows; others may legitimately be small but the
            // generator's scale guarantees non-empty results here.
            assert!(!rs.columns.is_empty(), "{sql}");
        }
    }

    #[test]
    fn five_trial1_queries() {
        assert_eq!(trial1_queries().len(), 5);
    }
}
