//! Simulated users — the substitute for the 14 human subjects of §6.2.
//!
//! Each simulated user owns:
//! * a **latent** preference set — the ground truth of what they actually
//!   like, used to rate tuples;
//! * a **stored** profile — the (imperfect) subset the system knows, used
//!   for personalization;
//! * a **ranking philosophy** (inflationary / dominant / reserved) —
//!   §6.3 found real users follow one of the three;
//! * **rating noise** — humans are not deterministic scorers; novices are
//!   noisier than experts.
//!
//! A user rates a tuple by combining the latent preferences the tuple
//! satisfies/fails under their philosophy, scaling to the paper's
//! `[-10, 10]` scale, and adding noise. Answer-level measurements follow
//! §6.2: an overall *answer score* in `[-10, 10]`, a *degree of
//! difficulty* (how far down the list the first interesting tuple sits),
//! and *coverage* (what fraction of the latently interesting tuples the
//! answer contains).

use std::collections::HashMap;

use qp_core::answer::subquery::{classify, satisfaction_select};
use qp_core::select::{fakecrit::fakecrit, QueryContext, SelectionCriterion};
use qp_core::{MixedKind, PersonalizationGraph, PrefError, Profile, Ranking, RankingKind};
use qp_exec::Engine;
use qp_sql::{builder, Query, SelectItem, TableRef};
use qp_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::{random_profile, standard_joins, ProfileSpec};

/// Interest threshold (on the `[-10, 10]` scale) above which a tuple
/// counts as "interesting" for difficulty and coverage.
pub const INTEREST_THRESHOLD: f64 = 3.0;

/// How many tuples a subject realistically inspects before giving up.
/// Coverage is measured over this prefix: a thousand-tuple unordered
/// answer does not "cover the need" just because the gems are buried in
/// it somewhere.
pub const INSPECT_LIMIT: usize = 50;

/// A simulated evaluation subject.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// Display name.
    pub name: String,
    /// Experts have richer stored profiles and rate less noisily.
    pub expert: bool,
    /// Ground-truth preferences (never shown to the system).
    pub latent: Profile,
    /// The profile the system personalizes with (a subset of the latent
    /// preferences).
    pub stored: Profile,
    /// The user's internal combination philosophy.
    pub philosophy: RankingKind,
    /// Std-dev of the rating noise.
    pub noise: f64,
    /// Per-user RNG seed (rating noise is deterministic given the seed).
    pub seed: u64,
}

/// Creates `n_experts + n_novices` simulated users with round-robin
/// philosophies. The paper used 8 experts and 6 novices.
pub fn simulate_users(
    db: &Database,
    n_experts: usize,
    n_novices: usize,
    seed: u64,
) -> Vec<SimulatedUser> {
    let mut users = Vec::with_capacity(n_experts + n_novices);
    for i in 0..(n_experts + n_novices) {
        let expert = i < n_experts;
        let user_seed = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
        let latent_n = if expert { 24 } else { 14 };
        let latent = random_profile(db, &ProfileSpec::mixed(latent_n, user_seed));
        let keep_fraction = if expert { 0.75 } else { 0.5 };
        let stored = subset_profile(db, &latent, keep_fraction, user_seed ^ 0x5eed);
        users.push(SimulatedUser {
            name: format!("{}{}", if expert { "expert" } else { "novice" }, i),
            expert,
            latent,
            stored,
            philosophy: RankingKind::ALL[i % 3],
            noise: if expert { 0.8 } else { 1.6 },
            seed: user_seed,
        });
    }
    users
}

/// Keeps a random fraction of the selection preferences (and all joins).
fn subset_profile(db: &Database, latent: &Profile, fraction: f64, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stored = Profile::new();
    standard_joins(db, &mut stored, &mut rng);
    for (_, s) in latent.selections() {
        if rng.gen::<f64>() < fraction {
            stored.push(qp_core::Preference::Selection(s.clone()));
        }
    }
    stored
}

/// Ground-truth evaluation of one query under one user's latent
/// preferences: for every tuple id of the query, which latent preferences
/// it satisfies (with degree) and which it fails.
#[derive(Debug)]
pub struct LatentEvaluator {
    /// Per latent preference: tuple id → satisfaction degree.
    sat: Vec<HashMap<u64, f64>>,
    /// Per latent preference: failure degree (≤ 0).
    d_minus: Vec<f64>,
    /// Combination function.
    ranking: Ranking,
    /// All tuple ids of the (un-personalized) query.
    pub all_ids: Vec<u64>,
}

impl SimulatedUser {
    /// Builds the latent evaluator for a query: runs each latent
    /// preference's satisfaction sub-query once and indexes the tuple ids.
    pub fn evaluate_query(
        &self,
        db: &Database,
        query: &Query,
    ) -> Result<LatentEvaluator, PrefError> {
        let mut engine = Engine::new();
        let graph = PersonalizationGraph::build(&self.latent);
        let qc = QueryContext::from_query(db.catalog(), query)?;
        let selected = fakecrit(&graph, &qc, SelectionCriterion::TopK(1000))?;
        let infos = classify(db, &mut engine, &self.latent, &selected);
        let initial = query.selects()[0];
        let first_binding = match &initial.from[0] {
            TableRef::Relation { name, alias } => alias.clone().unwrap_or_else(|| name.clone()),
            TableRef::Derived { .. } => {
                return Err(PrefError::UnsupportedQuery("derived FROM".into()))
            }
        };
        // all tuple ids of the plain query
        let mut base = initial.clone();
        base.items =
            vec![builder::item_as(builder::col(&first_binding, "rowid"), "qp_tid")];
        base.distinct = true;
        let rs = engine.execute(db, &Query::from_select(base))?;
        let all_ids: Vec<u64> =
            rs.rows.iter().filter_map(|r| r[0].as_i64()).filter(|t| *t >= 0).map(|t| t as u64).collect();

        let mut sat = Vec::with_capacity(selected.len());
        let mut d_minus = Vec::with_capacity(selected.len());
        for (sp, info) in selected.iter().zip(&infos) {
            let fb = first_binding.clone();
            let proj = move |_anchor: &str, degree: qp_sql::Expr| -> Vec<SelectItem> {
                vec![
                    builder::item_as(builder::col(&fb, "rowid"), "qp_tid"),
                    builder::item_as(degree, "qp_degree"),
                ]
            };
            let s = satisfaction_select(db.catalog(), initial, &self.latent, sp, info, &proj)?;
            let rs = engine.execute(db, &Query::from_select(s))?;
            let mut map = HashMap::with_capacity(rs.len());
            for row in &rs.rows {
                if let (Some(tid), d) = (row[0].as_i64(), row[1].as_f64()) {
                    if tid >= 0 {
                        map.insert(tid as u64, d.unwrap_or(info.d_plus).max(0.0));
                    }
                }
            }
            sat.push(map);
            d_minus.push(info.d_minus);
        }
        Ok(LatentEvaluator {
            sat,
            d_minus,
            ranking: Ranking::new(self.philosophy, MixedKind::CountWeighted),
            all_ids,
        })
    }

    /// The user's *noiseless* interest in a tuple, on `[-10, 10]`.
    pub fn true_interest(&self, eval: &LatentEvaluator, tid: u64) -> f64 {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (m, dm) in eval.sat.iter().zip(&eval.d_minus) {
            match m.get(&tid) {
                Some(d) => pos.push(*d),
                None => {
                    if *dm < 0.0 {
                        neg.push(*dm);
                    }
                }
            }
        }
        (eval.ranking.mixed(&pos, &neg) * 10.0).clamp(-10.0, 10.0)
    }

    /// The rating the user reports for a tuple: true interest plus noise,
    /// clamped to the paper's `[-10, 10]` scale. Deterministic for a given
    /// `(user, tuple, salt)`.
    pub fn rate_tuple(&self, eval: &LatentEvaluator, tid: u64, salt: u64) -> f64 {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ tid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt);
        let noise: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * self.noise;
        (self.true_interest(eval, tid) + noise).clamp(-10.0, 10.0)
    }
}

/// The three §6.2 answer-level measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerEvaluation {
    /// Overall answer score, `[-10, 10]`.
    pub answer_score: f64,
    /// Degree of difficulty to find something interesting, `[0, 2.5]`
    /// (higher = harder; 2.5 = found nothing).
    pub difficulty: f64,
    /// Fraction of the latently interesting tuples present in the answer,
    /// `[0, 1]`.
    pub coverage: f64,
}

/// Evaluates an answer (tuple ids in presentation order) against the
/// user's latent interests.
pub fn evaluate_answer(
    user: &SimulatedUser,
    eval: &LatentEvaluator,
    answer_ids: &[u64],
    salt: u64,
) -> AnswerEvaluation {
    // interesting tuples across the whole (un-personalized) result
    let interesting: std::collections::HashSet<u64> = eval
        .all_ids
        .iter()
        .copied()
        .filter(|t| user.true_interest(eval, *t) >= INTEREST_THRESHOLD)
        .collect();
    // coverage over the inspected prefix: how many of the interesting
    // tuples the user actually encounters
    let coverage = if interesting.is_empty() {
        // nothing to find: full coverage by definition
        1.0
    } else {
        let found: usize = answer_ids
            .iter()
            .take(INSPECT_LIMIT)
            .filter(|t| interesting.contains(t))
            .count();
        found as f64 / interesting.len().min(INSPECT_LIMIT) as f64
    };

    // difficulty: rank of the first interesting tuple, log-scaled to
    // [0, 2.5]; 2.5 when none is found
    let first_rank = answer_ids
        .iter()
        .position(|t| user.rate_tuple(eval, *t, salt) >= INTEREST_THRESHOLD)
        .map(|p| p + 1);
    let difficulty = match first_rank {
        Some(r) => (2.5 * ((r as f64).ln_1p() / 101.0_f64.ln())).min(2.5),
        None => 2.5,
    };

    // answer score: mean rating of the first tuples the user would
    // actually inspect, with a mild penalty for unwieldy answers
    let inspect = answer_ids.len().min(20);
    let score = if inspect == 0 {
        0.0
    } else {
        let mean: f64 = answer_ids[..inspect]
            .iter()
            .map(|t| user.rate_tuple(eval, *t, salt))
            .sum::<f64>()
            / inspect as f64;
        let size_penalty = if answer_ids.len() > 200 {
            (answer_ids.len() as f64 / 200.0).ln()
        } else {
            0.0
        };
        (mean - size_penalty).clamp(-10.0, 10.0)
    };
    AnswerEvaluation { answer_score: score, difficulty, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate, ImdbScale};
    use crate::queries::trial1_queries;
    use qp_sql::parse_query;

    fn db() -> Database {
        generate(ImdbScale { movies: 400, ..ImdbScale::small() })
    }

    #[test]
    fn users_created_with_expected_mix() {
        let db = db();
        let users = simulate_users(&db, 8, 6, 1);
        assert_eq!(users.len(), 14);
        assert_eq!(users.iter().filter(|u| u.expert).count(), 8);
        // all three philosophies present
        for kind in RankingKind::ALL {
            assert!(users.iter().any(|u| u.philosophy == kind), "{kind:?} missing");
        }
        // stored is a subset of latent
        for u in &users {
            assert!(u.stored.selections().count() <= u.latent.selections().count());
        }
    }

    #[test]
    fn ratings_deterministic_and_bounded() {
        let db = db();
        let users = simulate_users(&db, 1, 0, 2);
        let q = parse_query(trial1_queries()[0]).unwrap();
        let eval = users[0].evaluate_query(&db, &q).unwrap();
        assert!(!eval.all_ids.is_empty());
        let t = eval.all_ids[0];
        let a = users[0].rate_tuple(&eval, t, 0);
        let b = users[0].rate_tuple(&eval, t, 0);
        assert_eq!(a, b);
        for &t in eval.all_ids.iter().take(50) {
            let r = users[0].rate_tuple(&eval, t, 0);
            assert!((-10.0..=10.0).contains(&r));
        }
    }

    #[test]
    fn interesting_tuples_rated_higher() {
        let db = db();
        let users = simulate_users(&db, 2, 0, 3);
        let u = &users[0];
        let q = parse_query(trial1_queries()[0]).unwrap();
        let eval = u.evaluate_query(&db, &q).unwrap();
        // tuples satisfying some latent preference should outscore (on
        // average) tuples failing everything
        let mut sat_scores = Vec::new();
        let mut rest_scores = Vec::new();
        for &t in &eval.all_ids {
            let i = u.true_interest(&eval, t);
            if eval.sat.iter().any(|m| m.contains_key(&t)) {
                sat_scores.push(i);
            } else {
                rest_scores.push(i);
            }
        }
        if !sat_scores.is_empty() && !rest_scores.is_empty() {
            let ms = sat_scores.iter().sum::<f64>() / sat_scores.len() as f64;
            let mr = rest_scores.iter().sum::<f64>() / rest_scores.len() as f64;
            assert!(ms > mr, "satisfying {ms} <= failing {mr}");
        }
    }

    #[test]
    fn answer_evaluation_sane() {
        let db = db();
        let users = simulate_users(&db, 1, 1, 4);
        let u = &users[1];
        let q = parse_query(trial1_queries()[0]).unwrap();
        let eval = u.evaluate_query(&db, &q).unwrap();
        // "perfect" answer: all interesting tuples, ranked by interest
        let mut ids = eval.all_ids.clone();
        ids.sort_by(|a, b| u.true_interest(&eval, *b).total_cmp(&u.true_interest(&eval, *a)));
        let good = evaluate_answer(u, &eval, &ids[..ids.len().min(30)], 0);
        // unordered full answer
        let bad = evaluate_answer(u, &eval, &eval.all_ids, 0);
        assert!(good.answer_score >= bad.answer_score, "{good:?} vs {bad:?}");
        // an interest-ranked answer surfaces something interesting at the
        // very top (difficulty comparisons against the unordered answer
        // are noisy — a lucky tuple may sit at its head — so only the
        // absolute bound is asserted)
        assert!(good.difficulty <= 1.0, "{good:?}");
        assert!((0.0..=1.0).contains(&good.coverage));
        assert!((0.0..=2.5).contains(&bad.difficulty));
    }
}
