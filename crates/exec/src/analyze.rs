//! `EXPLAIN ANALYZE`: per-node execution profiles and their rendering.
//!
//! A [`PlanProfile`] holds one [`NodeStats`] slot per plan node of a
//! [`CompiledQuery`]. Node ids are *pre-order positions computed from
//! plan shape* ([`Plan::node_count`]): a node's first child is `id + 1`,
//! its second child is `id + 1 + first_child.node_count()`, and the
//! branches of a `UNION ALL` query are laid out consecutively. This
//! makes ids independent of execution order (a hash join runs its build
//! side before its probe side) and lets one profile serve repeated
//! executions of the same prepared query — counters simply accumulate,
//! with `calls` tracking the invocation count.
//!
//! All counters are relaxed atomics so the operator tree can update them
//! through shared references; profiled runs are still single-threaded.
//!
//! [`Engine::explain_analyze`](crate::Engine::explain_analyze) executes
//! a query with a profile attached and renders the annotated tree via
//! [`render_analyzed`]; see `OBSERVABILITY.md` for how to read the
//! output.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use qp_storage::Database;

use crate::plan::Plan;
use crate::planner::{CompiledQuery, CompiledSelect, KeySource};

/// Execution counters for one plan node. Updated with relaxed atomic
/// adds; read with the getter methods.
#[derive(Debug, Default)]
pub struct NodeStats {
    invocations: AtomicU64,
    rows_out: AtomicU64,
    rows_scanned: AtomicU64,
    index_probes: AtomicU64,
    batches: AtomicU64,
    elapsed_ns: AtomicU64,
}

impl NodeStats {
    /// How many times the node ran (> 1 for re-executed prepared plans).
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Total rows the node emitted across all invocations.
    pub fn rows_out(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Base-table rows touched (scan nodes only).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Index probes issued (index-join nodes only).
    pub fn index_probes(&self) -> u64 {
        self.index_probes.load(Ordering::Relaxed)
    }

    /// Columnar batches the node emitted (0 on the row path).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total wall-clock time inside the node, children included.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn observe(&self, rows_out: u64, elapsed: Duration) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.rows_out.fetch_add(rows_out, Ordering::Relaxed);
        self.elapsed_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_batches(&self, n: u64) {
        self.batches.fetch_add(n, Ordering::Relaxed);
    }
}

/// Per-node execution statistics for one compiled query, indexed by the
/// pre-order node ids described in the module docs.
#[derive(Debug)]
pub struct PlanProfile {
    nodes: Vec<NodeStats>,
    result_rows: AtomicU64,
    total_ns: AtomicU64,
}

impl PlanProfile {
    /// A profile sized for `compiled`, all counters zero.
    pub fn for_query(compiled: &CompiledQuery) -> Self {
        PlanProfile {
            nodes: (0..compiled.plan_node_count()).map(|_| NodeStats::default()).collect(),
            result_rows: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Number of plan nodes covered.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Stats slot for node `id`.
    ///
    /// # Panics
    /// If `id` is out of range — that means the profile was built for a
    /// different query than the one being executed.
    pub fn node(&self, id: usize) -> &NodeStats {
        &self.nodes[id]
    }

    /// Final result cardinality (set once the query finishes).
    pub fn result_rows(&self) -> u64 {
        self.result_rows.load(Ordering::Relaxed)
    }

    /// End-to-end execution time (set once the query finishes).
    pub fn total_elapsed(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn set_result(&self, rows: u64, elapsed: Duration) {
        self.result_rows.store(rows, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Formats a duration compactly: `850ns`, `12.4µs`, `3.21ms`, `1.05s`.
pub fn fmt_elapsed(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders the annotated plan tree of a profiled execution: the same
/// shape as [`crate::explain::render`], with per-node actuals —
/// `rows` out, `elapsed` (inclusive of children), `calls` when a
/// prepared plan ran more than once, observed vs. estimated selectivity
/// on scans, and observed join/filter selectivity (`rows out / rows in`)
/// on interior nodes.
pub fn render_analyzed(db: &Database, compiled: &CompiledQuery, profile: &PlanProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Output: {} rows in {}",
        profile.result_rows(),
        fmt_elapsed(profile.total_elapsed())
    );
    let mut base = 0usize;
    if compiled.branches.len() > 1 {
        let _ = writeln!(out, "UnionAll ({} branches)", compiled.branches.len());
        for b in &compiled.branches {
            render_select(db, b, 1, &mut out, profile, base);
            base += b.plan.node_count();
        }
    } else {
        render_select(db, &compiled.branches[0], 0, &mut out, profile, base);
    }
    if !compiled.order.is_empty() {
        let keys: Vec<String> = compiled
            .order
            .iter()
            .map(|k| match &k.source {
                KeySource::Output(i) => {
                    format!("output[{i}]{}", if k.desc { " desc" } else { "" })
                }
                KeySource::Source(_) => {
                    format!("expr{}", if k.desc { " desc" } else { "" })
                }
            })
            .collect();
        let _ = writeln!(out, "OrderBy [{}]", keys.join(", "));
    }
    if let Some(n) = compiled.limit {
        let _ = writeln!(out, "Limit {n}");
    }
    out
}

fn render_select(
    db: &Database,
    select: &CompiledSelect,
    depth: usize,
    out: &mut String,
    profile: &PlanProfile,
    base: usize,
) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{pad}Project [{} columns]{}",
        select.project.len(),
        if select.distinct { " distinct" } else { "" }
    );
    if let Some(agg) = &select.agg {
        let _ = writeln!(
            out,
            "{pad}  Aggregate [group: {}, aggregates: {}{}]",
            agg.spec.group.len(),
            agg.spec.aggs.len(),
            if agg.having.is_some() { ", having" } else { "" }
        );
        render_plan(db, &select.plan, depth + 2, out, profile, base);
    } else {
        render_plan(db, &select.plan, depth + 1, out, profile, base);
    }
}

/// The total `rows_out` of a node's direct children — the node's input
/// cardinality, used to derive observed join/filter selectivity.
fn rows_in(plan: &Plan, profile: &PlanProfile, id: usize) -> u64 {
    match plan {
        Plan::Scan { .. } | Plan::Values => 0,
        Plan::Filter { .. } | Plan::IndexJoin { .. } | Plan::Derived { .. } => {
            profile.node(id + 1).rows_out()
        }
        Plan::HashJoin { left, .. } | Plan::NestedLoop { left, .. } => {
            profile.node(id + 1).rows_out() + profile.node(id + 1 + left.node_count()).rows_out()
        }
        Plan::UnionAll { inputs } => {
            let mut total = 0;
            let mut child = id + 1;
            for p in inputs {
                total += profile.node(child).rows_out();
                child += p.node_count();
            }
            total
        }
    }
}

/// Formats the ` (rows=…, …)` annotation for one node.
fn annotate(plan: &Plan, profile: &PlanProfile, id: usize) -> String {
    let stats = profile.node(id);
    let mut s = format!(" (rows={}", stats.rows_out());
    match plan {
        Plan::Scan { est, .. } => {
            let scanned = stats.rows_scanned();
            let _ = write!(s, ", scanned={scanned}");
            if scanned > 0 {
                let _ = write!(s, ", sel={:.3}", stats.rows_out() as f64 / scanned as f64);
            }
            if let Some(est) = est {
                let _ = write!(s, ", est_sel={:.3}", est.selectivity);
            }
        }
        Plan::IndexJoin { .. } => {
            let _ = write!(s, ", probes={}", stats.index_probes());
        }
        Plan::Filter { .. } | Plan::HashJoin { .. } | Plan::NestedLoop { .. } => {
            let input = rows_in(plan, profile, id);
            let _ = write!(s, ", in={input}");
            if input > 0 {
                let _ = write!(s, ", sel={:.3}", stats.rows_out() as f64 / input as f64);
            }
        }
        Plan::Values | Plan::UnionAll { .. } | Plan::Derived { .. } => {}
    }
    if stats.batches() > 0 {
        let _ = write!(s, ", batches={}", stats.batches());
    }
    if stats.invocations() > 1 {
        let _ = write!(s, ", calls={}", stats.invocations());
    }
    let _ = write!(s, ", {})", fmt_elapsed(stats.elapsed()));
    s
}

fn render_plan(
    db: &Database,
    plan: &Plan,
    depth: usize,
    out: &mut String,
    profile: &PlanProfile,
    id: usize,
) {
    let pad = "  ".repeat(depth);
    let ann = annotate(plan, profile, id);
    match plan {
        Plan::Scan { rel, fetch_rowid, index_eq, filter, .. } => {
            let name = &db.catalog().relation(*rel).name;
            let mut extra = String::new();
            match fetch_rowid {
                Some(crate::plan::RowIdFetch::One(id)) => {
                    let _ = write!(extra, " rowid={id}");
                }
                Some(crate::plan::RowIdFetch::Set(ids)) => {
                    let _ = write!(extra, " rowid in ({} ids)", ids.len());
                }
                None => {}
            }
            if let Some((attr, key)) = index_eq {
                let _ = write!(extra, " index {}={}", db.catalog().attr_name(*attr), key);
            }
            if filter.is_some() {
                extra.push_str(" filtered");
            }
            let _ = writeln!(out, "{pad}Scan {name}{extra}{ann}");
        }
        Plan::Values => {
            let _ = writeln!(out, "{pad}Values (1 row){ann}");
        }
        Plan::Filter { input, .. } => {
            let _ = writeln!(out, "{pad}Filter{ann}");
            render_plan(db, input, depth + 1, out, profile, id + 1);
        }
        Plan::HashJoin { left, right, .. } => {
            let _ = writeln!(out, "{pad}HashJoin{ann}");
            render_plan(db, left, depth + 1, out, profile, id + 1);
            render_plan(db, right, depth + 1, out, profile, id + 1 + left.node_count());
        }
        Plan::IndexJoin { left, right_attr, residual, .. } => {
            let _ = writeln!(
                out,
                "{pad}IndexJoin probe {}{}{ann}",
                db.catalog().attr_name(*right_attr),
                if residual.is_some() { " (residual filter)" } else { "" }
            );
            render_plan(db, left, depth + 1, out, profile, id + 1);
        }
        Plan::NestedLoop { left, right, predicate } => {
            let _ = writeln!(
                out,
                "{pad}NestedLoop{}{ann}",
                if predicate.is_some() { " (filtered)" } else { "" }
            );
            render_plan(db, left, depth + 1, out, profile, id + 1);
            render_plan(db, right, depth + 1, out, profile, id + 1 + left.node_count());
        }
        Plan::UnionAll { inputs } => {
            let _ = writeln!(out, "{pad}UnionAll{ann}");
            let mut child = id + 1;
            for p in inputs {
                render_plan(db, p, depth + 1, out, profile, child);
                child += p.node_count();
            }
        }
        Plan::Derived { query } => {
            let _ = writeln!(out, "{pad}Derived{ann}");
            let mut base = id + 1;
            for b in &query.branches {
                render_select(db, b, depth + 1, out, profile, base);
                base += b.plan.node_count();
            }
        }
    }
}
