//! Columnar batches and the vectorized (batch-at-a-time) operator path.
//!
//! The default execution engine moves data in fixed-capacity columnar
//! [`Batch`]es instead of one `Vec<Value>` row at a time. A batch is a
//! set of column vectors plus an optional *selection vector* — the
//! ascending positions of live rows — so filters narrow a batch without
//! moving any data. Scans evaluate pushed predicates against a borrowed
//! view of the stored rows and only materialize survivors (*late
//! materialization*); joins probe a whole batch per guard poll.
//!
//! Semantics are identical to the row path in `plan.rs` (retained behind
//! the `QP_ROW_ENGINE=1` toggle as the parity oracle): same operators,
//! same row order, same `[rowid, cols…]` layout, byte-identical results.
//! The two differences are granularity, not behavior:
//!
//! * [`crate::guard::QueryGuard`] budgets are charged per batch flush
//!   rather than per row, so a budget can overshoot by at most
//!   [`BATCH_CAPACITY`] rows before tripping (pinned by a regression
//!   test). Deadline/cancellation polling stays at least once per batch,
//!   and per pair inside nested-loop products.
//! * Batch counts (`exec.batch.count` / `exec.batch.rows`, and
//!   `batches=` in `EXPLAIN ANALYZE`) exist only on this path.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use qp_storage::{Database, Row, RowId, Value};

use crate::engine::{sort_and_limit, source_key_exprs};
use crate::error::ExecError;
use crate::expr::{ColView, PhysExpr};
use crate::guard::QueryGuard;
use crate::plan::{charge, fail_point, ExecCtx, Plan, RowIdFetch};
use crate::planner::CompiledQuery;

/// Rows a batch holds before the producing operator flushes it
/// downstream; also the granularity at which guard budgets are charged
/// on the batch path (worst-case overshoot = one batch).
pub const BATCH_CAPACITY: usize = 1024;

/// A columnar batch: one value vector per column, a row count, and an
/// optional ascending selection vector of live row positions (`None`
/// means all rows are live). The row count is explicit because a batch
/// can be zero-width but non-empty (`Plan::Values`).
#[derive(Debug, Clone, Default)]
pub struct Batch {
    cols: Vec<Vec<Value>>,
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl Batch {
    /// An empty batch of `width` columns with room for `cap` rows each.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        Batch { cols: (0..width).map(|_| Vec::with_capacity(cap)).collect(), rows: 0, sel: None }
    }

    /// The single zero-width, one-row batch of a `FROM`-less select.
    pub(crate) fn values_row() -> Self {
        Batch { cols: Vec::new(), rows: 1, sel: None }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of physical rows (live or not).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff the batch holds no physical rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of live rows (`len()` when no selection vector is set).
    pub fn live_count(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    /// The selection vector, if one is set.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Installs a selection vector (ascending positions). A vector
    /// selecting every row normalizes to `None` so downstream operators
    /// keep their dense fast paths.
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        self.sel = if sel.len() == self.rows { None } else { Some(sel) };
    }

    /// Iterates live row positions in ascending order.
    pub fn live(&self) -> LiveIter<'_> {
        match &self.sel {
            Some(s) => LiveIter::Sel(s.iter()),
            None => LiveIter::Dense(0..self.rows),
        }
    }

    /// Clones live row `row` out as a flat `Vec<Value>` row.
    pub fn row_cloned(&self, row: usize) -> Row {
        self.cols.iter().map(|c| c[row].clone()).collect()
    }

    /// Appends the concatenation of `left[lr] ⧺ right[rr]` (join output).
    fn push_concat(&mut self, left: &Batch, lr: usize, right: &Batch, rr: usize) {
        let lw = left.width();
        for (c, col) in self.cols.iter_mut().enumerate() {
            if c < lw {
                col.push(left.cols[c][lr].clone());
            } else {
                col.push(right.cols[c - lw][rr].clone());
            }
        }
        self.rows += 1;
    }

    /// Appends `left[lr] ⧺ [rowid, right…]` (index-join output).
    fn push_probe(&mut self, left: &Batch, lr: usize, rowid: u64, right: &Row) {
        let lw = left.width();
        for (c, col) in self.cols.iter_mut().enumerate() {
            if c < lw {
                col.push(left.cols[c][lr].clone());
            } else if c == lw {
                col.push(Value::Int(rowid as i64));
            } else {
                col.push(right[c - lw - 1].clone());
            }
        }
        self.rows += 1;
    }

    /// Appends row `r` of a scan view (`[rowid, cols…]` layout).
    fn push_scan_row(&mut self, view: &ScanView<'_>, r: usize) {
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.push(view.value(c, r).clone());
        }
        self.rows += 1;
    }
}

impl ColView for Batch {
    #[inline]
    fn len(&self) -> usize {
        self.rows
    }
    #[inline]
    fn value(&self, col: usize, row: usize) -> &Value {
        &self.cols[col][row]
    }
}

/// Live-position iterator of a [`Batch`].
pub enum LiveIter<'a> {
    /// All rows live: a dense position range.
    Dense(std::ops::Range<usize>),
    /// Selection vector positions.
    Sel(std::slice::Iter<'a, u32>),
}

impl Iterator for LiveIter<'_> {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            LiveIter::Dense(r) => r.next(),
            LiveIter::Sel(it) => it.next().map(|&i| i as usize),
        }
    }
}

/// Borrowed view over a chunk of stored rows *before* materialization:
/// column 0 is the synthesized rowid column, columns `1..` read through
/// to the stored rows. Scan filters evaluate against this view, so rows
/// the predicate rejects are never cloned.
struct ScanView<'a> {
    rowids: Vec<Value>,
    rows: RowsRef<'a>,
}

enum RowsRef<'a> {
    /// A contiguous table slice (full scan).
    Slice(&'a [Row]),
    /// Rows gathered by id (rowid fetch / index lookup).
    Gathered(Vec<&'a Row>),
}

impl RowsRef<'_> {
    fn len(&self) -> usize {
        match self {
            RowsRef::Slice(s) => s.len(),
            RowsRef::Gathered(v) => v.len(),
        }
    }
}

impl ColView for ScanView<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.rowids.len()
    }
    #[inline]
    fn value(&self, col: usize, row: usize) -> &Value {
        if col == 0 {
            &self.rowids[row]
        } else {
            match &self.rows {
                RowsRef::Slice(s) => &s[row][col - 1],
                RowsRef::Gathered(v) => &v[row][col - 1],
            }
        }
    }
}

/// Accumulates operator output rows into capacity-bounded batches. Each
/// flush applies the optional residual predicate as a selection vector,
/// charges the surviving rows against the guard (the per-batch guard
/// granularity), and ships non-empty batches to `out`. The producer's
/// `rows_intermediate` contribution is returned by [`BatchSink::finish`]
/// so parallel workers can merge counts deterministically.
struct BatchSink<'e> {
    width: usize,
    residual: Option<&'e PhysExpr>,
    cur: Batch,
    out: Vec<Batch>,
    produced: u64,
}

impl<'e> BatchSink<'e> {
    fn new(width: usize, residual: Option<&'e PhysExpr>) -> Self {
        // Column vectors start empty and grow on demand: most sinks in the
        // probe-heavy PPA workload see a handful of rows, and eagerly
        // reserving `width * BATCH_CAPACITY` slots per sink (and again per
        // flush) dominated the cost of small queries.
        BatchSink {
            width,
            residual,
            cur: Batch::with_capacity(width, 0),
            out: Vec::new(),
            produced: 0,
        }
    }

    /// The batch under construction; push rows into it, then call
    /// [`BatchSink::note_row`].
    #[inline]
    fn cur(&mut self) -> &mut Batch {
        &mut self.cur
    }

    /// Flushes when the current batch is full.
    #[inline]
    fn note_row(&mut self, guard: &QueryGuard) -> Result<(), ExecError> {
        if self.cur.rows >= BATCH_CAPACITY {
            self.flush(guard)?;
        }
        Ok(())
    }

    fn flush(&mut self, guard: &QueryGuard) -> Result<(), ExecError> {
        if self.cur.rows == 0 {
            return Ok(());
        }
        // Pre-size the replacement only when the flushed batch filled up —
        // a full batch predicts another full one (scan-driven producers),
        // while a short final flush should not pay for capacity it never uses.
        let next_cap = if self.cur.rows >= BATCH_CAPACITY { BATCH_CAPACITY } else { 0 };
        let mut b = std::mem::replace(&mut self.cur, Batch::with_capacity(self.width, next_cap));
        if let Some(p) = self.residual {
            let sel = p.filter_view(&b, None);
            b.set_sel(sel);
        }
        let live = b.live_count() as u64;
        self.produced += live;
        guard.charge_intermediate(live)?;
        if live > 0 {
            self.out.push(b);
        }
        Ok(())
    }

    /// Flushes the tail and returns `(batches, rows produced)`.
    fn finish(mut self, guard: &QueryGuard) -> Result<(Vec<Batch>, u64), ExecError> {
        self.flush(guard)?;
        Ok((self.out, self.produced))
    }
}

/// Flattens batches into materialized rows (live rows only, in order) —
/// the bridge into row-shaped stages (aggregation, PPA result handling).
pub(crate) fn batches_to_rows(batches: Vec<Batch>) -> Vec<Row> {
    let n: usize = batches.iter().map(Batch::live_count).sum();
    let mut rows = Vec::with_capacity(n);
    for b in &batches {
        for r in b.live() {
            rows.push(b.row_cloned(r));
        }
    }
    rows
}

/// Chunks materialized rows back into dense batches (derived-table
/// outputs re-entering the batch pipeline). Values are moved, not cloned.
fn rows_to_batches(rows: Vec<Row>) -> Vec<Batch> {
    let Some(width) = rows.first().map(Vec::len) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(rows.len().div_ceil(BATCH_CAPACITY));
    let mut cur = Batch::with_capacity(width, BATCH_CAPACITY.min(rows.len()));
    for row in rows {
        for (col, v) in cur.cols.iter_mut().zip(row) {
            col.push(v);
        }
        cur.rows += 1;
        if cur.rows == BATCH_CAPACITY {
            out.push(std::mem::replace(&mut cur, Batch::with_capacity(width, BATCH_CAPACITY)));
        }
    }
    if cur.rows > 0 {
        out.push(cur);
    }
    out
}

/// Runs `plan` as node `node` of the enclosing profile, producing
/// batches. Mirrors `Plan::run_node`: per-node timing only when a
/// profile is attached, plus batch counts for the context totals and the
/// node's `batches=` annotation.
pub(crate) fn run_batched_node(
    plan: &Plan,
    db: &Database,
    ctx: &mut ExecCtx<'_>,
    node: usize,
) -> Result<Vec<Batch>, ExecError> {
    let t0 = ctx.profile.map(|_| Instant::now());
    let out = run_batched_inner(plan, db, ctx, node)?;
    let rows: u64 = out.iter().map(|b| b.live_count() as u64).sum();
    ctx.batch_count += out.len() as u64;
    ctx.batch_rows += rows;
    if let (Some(profile), Some(t0)) = (ctx.profile, t0) {
        let stats = profile.node(node);
        stats.observe(rows, t0.elapsed());
        stats.add_batches(out.len() as u64);
    }
    Ok(out)
}

fn run_batched_inner(
    plan: &Plan,
    db: &Database,
    ctx: &mut ExecCtx<'_>,
    node: usize,
) -> Result<Vec<Batch>, ExecError> {
    match plan {
        Plan::Scan { rel, fetch_rowid, index_eq, filter, .. } => {
            fail_point("exec.scan")?;
            let table = db.table(*rel);
            let width = db.catalog().relation(*rel).arity() + 1;
            let filter = filter.as_ref();
            let mut out = Vec::new();
            let mut scanned = 0u64;
            match (fetch_rowid, index_eq) {
                (Some(RowIdFetch::One(id)), _) => {
                    if let Some(row) = table.get(RowId(*id)) {
                        let view = ScanView {
                            rowids: vec![Value::Int(*id as i64)],
                            rows: RowsRef::Gathered(vec![row]),
                        };
                        scan_chunk(ctx, filter, width, view, &mut out, &mut scanned)?;
                    }
                }
                (Some(RowIdFetch::Set(ids)), _) => {
                    let mut rowids = Vec::with_capacity(BATCH_CAPACITY.min(ids.len()));
                    let mut rows: Vec<&Row> = Vec::with_capacity(BATCH_CAPACITY.min(ids.len()));
                    for &id in ids.iter() {
                        if let Some(row) = table.get(RowId(id)) {
                            rowids.push(Value::Int(id as i64));
                            rows.push(row);
                            if rows.len() == BATCH_CAPACITY {
                                let view = ScanView {
                                    rowids: std::mem::take(&mut rowids),
                                    rows: RowsRef::Gathered(std::mem::take(&mut rows)),
                                };
                                scan_chunk(ctx, filter, width, view, &mut out, &mut scanned)?;
                            }
                        }
                    }
                    if !rows.is_empty() {
                        let view =
                            ScanView { rowids, rows: RowsRef::Gathered(rows) };
                        scan_chunk(ctx, filter, width, view, &mut out, &mut scanned)?;
                    }
                }
                (None, Some((attr, key))) => {
                    let index = db.index(*attr);
                    ctx.stats.index_probes += 1;
                    let ids = index.lookup(key);
                    for chunk in ids.chunks(BATCH_CAPACITY.max(1)) {
                        let mut rowids = Vec::with_capacity(chunk.len());
                        let mut rows: Vec<&Row> = Vec::with_capacity(chunk.len());
                        for rid in chunk {
                            let row = table.get(*rid).ok_or_else(|| {
                                ExecError::Internal(format!(
                                    "index of {attr:?} points at missing row {rid:?}"
                                ))
                            })?;
                            rowids.push(Value::Int(rid.0 as i64));
                            rows.push(row);
                        }
                        let view = ScanView { rowids, rows: RowsRef::Gathered(rows) };
                        scan_chunk(ctx, filter, width, view, &mut out, &mut scanned)?;
                    }
                }
                (None, None) => {
                    // Full scan: each storage chunk is one batch-granular
                    // work item. The parallel leg charges the shared
                    // guard from the workers and merges counts into
                    // `ExecStats` in chunk order, so the produced batches
                    // (and stats, on success) match the serial loop's.
                    // Tombstoned slots are masked per chunk (`dead` is
                    // `None` on the common delete-free path), so scanned
                    // counts and output match the row engine's live-only
                    // iteration byte for byte.
                    let rows = table.len();
                    let dead = table.tombstones();
                    if ctx.parallelism > 1
                        && rows >= crate::pool::PARALLEL_THRESHOLD
                        && rows > BATCH_CAPACITY
                    {
                        let guard = ctx.guard;
                        let (parts, pstats) = crate::pool::morsel_map(
                            table.chunks(BATCH_CAPACITY).collect::<Vec<_>>(),
                            ctx.parallelism,
                            |_, (base, chunk)| {
                                match live_chunk_view(base, chunk, dead) {
                                    Some(view) => scan_view_guarded(guard, filter, width, view),
                                    None => Ok((None, 0, 0)),
                                }
                            },
                        );
                        ctx.note_pool(pstats);
                        for (b, n, live) in parts? {
                            ctx.stats.rows_scanned += n;
                            scanned += n;
                            ctx.stats.rows_intermediate += live;
                            out.extend(b);
                        }
                    } else {
                        for (base, chunk) in table.chunks(BATCH_CAPACITY) {
                            if let Some(view) = live_chunk_view(base, chunk, dead) {
                                scan_chunk(ctx, filter, width, view, &mut out, &mut scanned)?;
                            }
                        }
                    }
                }
            }
            if let Some(profile) = ctx.profile {
                profile.node(node).add_scanned(scanned);
            }
            Ok(out)
        }
        Plan::Values => Ok(vec![Batch::values_row()]),
        Plan::Filter { input, predicate } => {
            let batches = run_batched_node(input, db, ctx, node + 1)?;
            let live_rows: usize = batches.iter().map(Batch::live_count).sum();
            // Vectorized filter: each input batch is one work item; the
            // surviving batches reassemble in input order, so the output
            // is identical to the serial loop's.
            if ctx.parallelism > 1
                && live_rows >= crate::pool::PARALLEL_THRESHOLD
                && batches.len() > 1
            {
                let guard = ctx.guard;
                let (parts, pstats) =
                    crate::pool::morsel_map(batches, ctx.parallelism, |_, mut b| {
                        guard.check()?;
                        let sel = predicate.filter_view(&b, b.sel());
                        let live = sel.len() as u64;
                        guard.charge_intermediate(live)?;
                        if sel.is_empty() {
                            Ok::<_, ExecError>((None, live))
                        } else {
                            b.set_sel(sel);
                            Ok((Some(b), live))
                        }
                    });
                ctx.note_pool(pstats);
                let mut out = Vec::new();
                for (b, live) in parts? {
                    ctx.stats.rows_intermediate += live;
                    out.extend(b);
                }
                return Ok(out);
            }
            let mut out = Vec::with_capacity(batches.len());
            for mut b in batches {
                ctx.guard.check()?;
                let sel = predicate.filter_view(&b, b.sel());
                charge(ctx, sel.len() as u64)?;
                if !sel.is_empty() {
                    b.set_sel(sel);
                    out.push(b);
                }
            }
            Ok(out)
        }
        Plan::HashJoin { left, right, left_key, right_key } => {
            hash_join_batched(db, ctx, node, left, right, left_key, right_key)
        }
        Plan::IndexJoin { left, left_key, right_attr, residual } => {
            fail_point("exec.index_join")?;
            let index = db.index(*right_attr);
            let table = db.table(right_attr.rel);
            let right_width = db.catalog().relation(right_attr.rel).arity() + 1;
            let lbs = run_batched_node(left, db, ctx, node + 1)?;
            let Some(lw) = lbs.first().map(Batch::width) else {
                return Ok(Vec::new());
            };
            let mut sink = BatchSink::new(lw + right_width, residual.as_ref());
            let mut probes = 0u64;
            let mut keys: Vec<Value> = Vec::new();
            for b in &lbs {
                ctx.guard.check()?;
                keys.clear();
                left_key.eval_view(b, b.sel(), &mut keys);
                for (k, r) in keys.iter().zip(b.live()) {
                    if k.is_null() {
                        continue;
                    }
                    ctx.stats.index_probes += 1;
                    probes += 1;
                    for rid in index.lookup(k) {
                        let right = table.get(*rid).ok_or_else(|| {
                            ExecError::Internal(format!(
                                "index of {right_attr:?} points at missing row {rid:?}"
                            ))
                        })?;
                        sink.cur().push_probe(b, r, rid.0, right);
                        sink.note_row(ctx.guard)?;
                    }
                }
            }
            let (out, produced) = sink.finish(ctx.guard)?;
            ctx.stats.rows_intermediate += produced;
            if let Some(profile) = ctx.profile {
                profile.node(node).add_probes(probes);
            }
            Ok(out)
        }
        Plan::NestedLoop { left, right, predicate } => {
            fail_point("exec.nested_loop")?;
            let left_node = node + 1;
            let right_node = left_node + left.node_count();
            let rbs = run_batched_node(right, db, ctx, right_node)?;
            let lbs = run_batched_node(left, db, ctx, left_node)?;
            let Some(lw) = lbs.first().map(Batch::width) else {
                return Ok(Vec::new());
            };
            let rw = rbs.first().map_or(0, Batch::width);
            let mut sink = BatchSink::new(lw + rw, predicate.as_ref());
            for lb in &lbs {
                for lr in lb.live() {
                    for rb in &rbs {
                        for rr in rb.live() {
                            // polled per pair like the row path:
                            // cancellation must stop the cross product
                            // inside a single batch
                            ctx.guard.check()?;
                            sink.cur().push_concat(lb, lr, rb, rr);
                            sink.note_row(ctx.guard)?;
                        }
                    }
                }
            }
            let (out, produced) = sink.finish(ctx.guard)?;
            ctx.stats.rows_intermediate += produced;
            Ok(out)
        }
        Plan::UnionAll { inputs } => {
            let mut out = Vec::new();
            let mut child = node + 1;
            for p in inputs {
                out.extend(run_batched_node(p, db, ctx, child)?);
                child += p.node_count();
            }
            Ok(out)
        }
        Plan::Derived { query } => {
            let rows = run_compiled_batched_at(db, query, ctx, node + 1)?;
            Ok(rows_to_batches(rows))
        }
    }
}

/// Builds the scan view for one full-scan storage chunk, masking
/// tombstoned slots. With no tombstones in the chunk the view borrows
/// the slice directly (zero-copy fast path); otherwise live rows are
/// gathered with their true row ids, so downstream operators (and the
/// scanned-row counts) see exactly the rows the row engine's live-only
/// iteration yields. Returns `None` when every slot in the chunk is
/// dead.
fn live_chunk_view<'a>(
    base: RowId,
    chunk: &'a [Row],
    dead: Option<&[bool]>,
) -> Option<ScanView<'a>> {
    let start = base.0 as usize;
    let mask = match dead {
        Some(d) if d[start..start + chunk.len()].contains(&true) => &d[start..start + chunk.len()],
        _ => {
            let rowids: Vec<Value> =
                (0..chunk.len()).map(|i| Value::Int((base.0 + i as u64) as i64)).collect();
            return Some(ScanView { rowids, rows: RowsRef::Slice(chunk) });
        }
    };
    let mut rowids = Vec::new();
    let mut rows: Vec<&Row> = Vec::new();
    for (i, row) in chunk.iter().enumerate() {
        if !mask[i] {
            rowids.push(Value::Int((base.0 + i as u64) as i64));
            rows.push(row);
        }
    }
    if rows.is_empty() {
        return None;
    }
    Some(ScanView { rowids, rows: RowsRef::Gathered(rows) })
}

/// One scan batch: polls the guard, counts scanned rows, evaluates the
/// pushed filter against the borrowed view, charges the survivors, and
/// materializes only them into a dense batch.
fn scan_chunk(
    ctx: &mut ExecCtx<'_>,
    filter: Option<&PhysExpr>,
    width: usize,
    view: ScanView<'_>,
    out: &mut Vec<Batch>,
    scanned: &mut u64,
) -> Result<(), ExecError> {
    let n = view.rows.len();
    if n == 0 {
        return Ok(());
    }
    ctx.guard.check()?;
    ctx.stats.rows_scanned += n as u64;
    *scanned += n as u64;
    let live = filter.map(|p| p.filter_view(&view, None));
    let live_n = live.as_ref().map_or(n, Vec::len);
    charge(ctx, live_n as u64)?;
    if live_n == 0 {
        return Ok(());
    }
    out.push(materialize_scan(&view, width, n, live.as_deref()));
    Ok(())
}

/// Worker-side variant of [`scan_chunk`] for the parallel full scan:
/// charges the shared guard directly (workers have no `ExecCtx`) and
/// returns `(batch, rows scanned, rows surviving)` so the caller can
/// merge the counts into `ExecStats` in chunk order.
fn scan_view_guarded(
    guard: &QueryGuard,
    filter: Option<&PhysExpr>,
    width: usize,
    view: ScanView<'_>,
) -> Result<(Option<Batch>, u64, u64), ExecError> {
    let n = view.rows.len();
    if n == 0 {
        return Ok((None, 0, 0));
    }
    guard.check()?;
    let live = filter.map(|p| p.filter_view(&view, None));
    let live_n = live.as_ref().map_or(n, Vec::len);
    guard.charge_intermediate(live_n as u64)?;
    if live_n == 0 {
        return Ok((None, n as u64, 0));
    }
    Ok((Some(materialize_scan(&view, width, n, live.as_deref())), n as u64, live_n as u64))
}

/// Densely materializes the surviving rows of a scan view into a batch.
fn materialize_scan(view: &ScanView<'_>, width: usize, n: usize, live: Option<&[u32]>) -> Batch {
    let live_n = live.map_or(n, <[u32]>::len);
    let mut b = Batch::with_capacity(width, live_n);
    match live {
        Some(sel) => {
            for &r in sel {
                b.push_scan_row(view, r as usize);
            }
        }
        None => {
            for r in 0..n {
                b.push_scan_row(view, r);
            }
        }
    }
    b
}

/// Batched hash join. The build table maps key → `(batch, row)` match
/// positions in global ascending order (the parallel build treats every
/// build batch as one work item and merges per-batch maps in batch
/// order, exactly like the row path partitions rows). Probing walks a
/// whole batch per guard poll; the parallel probe schedules the probe
/// batches as morsels and reassembles outputs in input order, so the
/// flattened row sequence is identical to the serial one (batch
/// *boundaries* may differ — each probe batch flushes its own sink).
#[allow(clippy::too_many_arguments)]
fn hash_join_batched(
    db: &Database,
    ctx: &mut ExecCtx<'_>,
    node: usize,
    left: &Plan,
    right: &Plan,
    left_key: &PhysExpr,
    right_key: &PhysExpr,
) -> Result<Vec<Batch>, ExecError> {
    fail_point("exec.hash_join.build")?;
    let left_node = node + 1;
    let right_node = left_node + left.node_count();
    let build = run_batched_node(right, db, ctx, right_node)?;
    let build_rows: usize = build.iter().map(Batch::live_count).sum();
    let parallel = ctx.parallelism > 1;

    // --- build ------------------------------------------------------
    let table: HashMap<Value, Vec<(u32, u32)>> = if parallel
        && build_rows >= crate::pool::PARALLEL_THRESHOLD
        && build.len() > 1
    {
        let guard = ctx.guard;
        let (partials, pstats) = crate::pool::morsel_map(
            build.iter().collect::<Vec<_>>(),
            ctx.parallelism,
            |bi, b| {
                guard.check()?;
                let mut m: HashMap<Value, Vec<(u32, u32)>> = HashMap::new();
                let mut keys: Vec<Value> = Vec::new();
                right_key.eval_view(b, b.sel(), &mut keys);
                for (k, r) in keys.drain(..).zip(b.live()) {
                    if !k.is_null() {
                        m.entry(k).or_default().push((bi as u32, r as u32));
                    }
                }
                Ok::<_, ExecError>(m)
            },
        );
        ctx.note_pool(pstats);
        let mut table: HashMap<Value, Vec<(u32, u32)>> = HashMap::new();
        for m in partials? {
            for (k, v) in m {
                table.entry(k).or_default().extend(v);
            }
        }
        table
    } else {
        let mut table: HashMap<Value, Vec<(u32, u32)>> = HashMap::new();
        let mut keys: Vec<Value> = Vec::new();
        for (bi, b) in build.iter().enumerate() {
            ctx.guard.check()?;
            keys.clear();
            right_key.eval_view(b, b.sel(), &mut keys);
            for (k, r) in keys.drain(..).zip(b.live()) {
                if !k.is_null() {
                    table.entry(k).or_default().push((bi as u32, r as u32));
                }
            }
        }
        table
    };

    // --- probe ------------------------------------------------------
    let probe = run_batched_node(left, db, ctx, left_node)?;
    let Some(pw) = probe.first().map(Batch::width) else {
        return Ok(Vec::new());
    };
    let width = pw + build.first().map_or(0, Batch::width);
    let probe_rows: usize = probe.iter().map(Batch::live_count).sum();
    if parallel && probe_rows >= crate::pool::PARALLEL_THRESHOLD && probe.len() > 1 {
        let guard = ctx.guard;
        let (parts, pstats) = crate::pool::morsel_map(
            probe.iter().collect::<Vec<_>>(),
            ctx.parallelism,
            |_, b| {
                let mut sink = BatchSink::new(width, None);
                probe_batch(b, left_key, &table, &build, &mut sink, guard)?;
                sink.finish(guard)
            },
        );
        ctx.note_pool(pstats);
        let mut out = Vec::new();
        for (batches, produced) in parts? {
            ctx.stats.rows_intermediate += produced;
            out.extend(batches);
        }
        return Ok(out);
    }
    let mut sink = BatchSink::new(width, None);
    for b in &probe {
        probe_batch(b, left_key, &table, &build, &mut sink, ctx.guard)?;
    }
    let (out, produced) = sink.finish(ctx.guard)?;
    ctx.stats.rows_intermediate += produced;
    Ok(out)
}

fn probe_batch(
    b: &Batch,
    left_key: &PhysExpr,
    table: &HashMap<Value, Vec<(u32, u32)>>,
    build: &[Batch],
    sink: &mut BatchSink<'_>,
    guard: &QueryGuard,
) -> Result<(), ExecError> {
    guard.check()?;
    let mut keys: Vec<Value> = Vec::with_capacity(b.live_count());
    left_key.eval_view(b, b.sel(), &mut keys);
    for (k, r) in keys.into_iter().zip(b.live()) {
        if k.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&k) {
            for &(mb, mr) in matches {
                sink.cur().push_concat(b, r, &build[mb as usize], mr as usize);
                sink.note_row(guard)?;
            }
        }
    }
    Ok(())
}

/// The batch engine's query driver: branches → aggregation → having →
/// projection → distinct → shared ORDER BY/LIMIT. The final stage
/// (`sort_and_limit`) is shared with the row path, so ordering and
/// tie-breaks are identical by construction. Aggregation reuses the
/// row-shaped `AggSpec::run` over flattened batches — grouping is not on
/// the hot path this engine optimizes.
pub(crate) fn run_compiled_batched_at(
    db: &Database,
    compiled: &CompiledQuery,
    ctx: &mut ExecCtx<'_>,
    base: usize,
) -> Result<Vec<Row>, ExecError> {
    let src_exprs = source_key_exprs(compiled);
    let keep_source = compiled.branches.len() == 1 && !src_exprs.is_empty();
    let mut rows: Vec<Row> = Vec::new();
    let mut skeys: Vec<Vec<Value>> = vec![Vec::new(); src_exprs.len()];
    let mut branch_base = base;
    for branch in &compiled.branches {
        let batches = run_batched_node(&branch.plan, db, ctx, branch_base)?;
        branch_base += branch.plan.node_count();
        let mut branch_rows: Vec<Row>;
        match &branch.agg {
            Some(agg) => {
                let input = batches_to_rows(batches);
                let mut inter = agg.spec.run(input);
                ctx.stats.rows_intermediate += inter.len() as u64;
                ctx.guard.charge_intermediate(inter.len() as u64)?;
                if let Some(h) = &agg.having {
                    inter.retain(|r| h.eval_bool(r));
                }
                branch_rows = Vec::with_capacity(inter.len());
                for src in &inter {
                    branch_rows.push(branch.project.iter().map(|p| p.eval(src)).collect());
                    if keep_source {
                        for (j, e) in src_exprs.iter().enumerate() {
                            skeys[j].push(e.eval(src));
                        }
                    }
                }
            }
            None => {
                let n: usize = batches.iter().map(Batch::live_count).sum();
                branch_rows = Vec::with_capacity(n);
                for b in &batches {
                    for r in b.live() {
                        branch_rows
                            .push(branch.project.iter().map(|p| p.eval_at(b, r)).collect());
                        if keep_source {
                            for (j, e) in src_exprs.iter().enumerate() {
                                skeys[j].push(e.eval_at(b, r));
                            }
                        }
                    }
                }
            }
        }
        if branch.distinct {
            // First-occurrence dedup without cloning rows into a set: a
            // hash → kept-row-indices index compares candidates in place.
            // DISTINCT-heavy PPA probe queries run this over every result
            // row, so the per-row clone the obvious `HashSet<Row>` costs
            // is worth avoiding.
            let mut index: HashMap<u64, Vec<u32>> = HashMap::with_capacity(branch_rows.len());
            let mut keep = 0usize;
            for i in 0..branch_rows.len() {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                branch_rows[i].hash(&mut h);
                let bucket = index.entry(h.finish()).or_default();
                if bucket.iter().any(|&j| branch_rows[j as usize] == branch_rows[i]) {
                    continue;
                }
                bucket.push(keep as u32);
                branch_rows.swap(keep, i);
                keep += 1;
            }
            branch_rows.truncate(keep);
        }
        rows.extend(branch_rows);
    }
    Ok(sort_and_limit(compiled, rows, skeys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sel_normalizes_full_selection() {
        let mut b = Batch::with_capacity(1, 4);
        for i in 0..3 {
            b.cols[0].push(Value::Int(i));
            b.rows += 1;
        }
        b.set_sel(vec![0, 1, 2]);
        assert!(b.sel().is_none(), "full selection should normalize to dense");
        b.set_sel(vec![0, 2]);
        assert_eq!(b.sel(), Some(&[0u32, 2][..]));
        assert_eq!(b.live().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(b.live_count(), 2);
    }

    #[test]
    fn rows_to_batches_round_trips() {
        let rows: Vec<Row> =
            (0..2500).map(|i| vec![Value::Int(i), Value::Float(i as f64)]).collect();
        let batches = rows_to_batches(rows.clone());
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), BATCH_CAPACITY);
        assert_eq!(batches_to_rows(batches), rows);
    }
}
