//! Sharded LRU caching: a generic [`ShardedCache`] plus the engine's
//! [`PlanCache`].
//!
//! The cache is sharded to keep lock hold times short when many serving
//! threads share one engine: a key hashes to one of N shards, each an
//! independent mutex around a small `HashMap`. Eviction is LRU per shard,
//! implemented as a linear scan for the stalest entry — shard capacities
//! are small (tens of entries), so a scan beats the bookkeeping of an
//! intrusive list and stays obviously correct.
//!
//! [`PlanCache`] keys compiled plans by **(database id, database version,
//! normalized query text)**. The version component makes invalidation
//! automatic: any DDL/DML bumps [`qp_storage::Database::version`], so
//! stale plans — whose frozen selectivity estimates and materialized
//! `IN`-sets may no longer match the data — simply stop being found and
//! age out of their shards. Values are `Arc<CompiledQuery>`: execution
//! only needs `&CompiledQuery`, and callers that must mutate (PPA's
//! `rebind_rowid`) clone a private copy.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qp_storage::Database;

use crate::planner::CompiledQuery;

/// A thread-safe sharded LRU map from `K` to `Arc<V>` with hit/miss
/// accounting. See the module docs for the design rationale.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional failpoint site consulted *under the shard lock* on every
    /// get/insert. An injected error degrades gracefully (forced miss /
    /// dropped insert — a cache may always lose); an injected panic
    /// poisons the shard mutex, which [`ShardedCache::lock`]'s
    /// poison-recovery then shrugs off.
    failpoint_site: Option<&'static str>,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Monotonic per-shard clock; `Entry::last_used` stamps order recency.
    tick: u64,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Eq + Hash, V> ShardedCache<K, V> {
    /// A cache of `shards` independent shards holding up to
    /// `shard_capacity` entries each. Both are clamped to at least 1.
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            shard_capacity: shard_capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            failpoint_site: None,
        }
    }

    /// Names the failpoint site this cache's shard operations pass (see
    /// the `failpoint_site` field docs). A no-op without the
    /// `failpoints` feature.
    pub fn with_failpoint_site(mut self, site: &'static str) -> Self {
        self.failpoint_site = Some(site);
        self
    }

    /// Passes the configured failpoint site, if any. Always `Ok` in
    /// production builds ([`qp_storage::failpoint::check`] is a no-op
    /// without the `failpoints` feature).
    fn fail_check(&self) -> Result<(), String> {
        match self.failpoint_site {
            Some(site) => qp_storage::failpoint::check(site),
            None => Ok(()),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn lock<'a>(
        &self,
        shard: &'a Mutex<Shard<K, V>>,
    ) -> std::sync::MutexGuard<'a, Shard<K, V>> {
        // A panic while holding the lock leaves only a cache shard in an
        // indeterminate state; the map itself is still structurally valid,
        // so recover the guard rather than poisoning every later query.
        shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts toward the
    /// hit/miss totals.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut shard = self.lock(self.shard_of(key));
        if self.fail_check().is_err() {
            // An injected shard fault is a forced miss: a cache is always
            // allowed to lose, so the caller just recomputes.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the shard's
    /// least-recently-used entry if the shard is over capacity. Returns
    /// the shared handle to the inserted value.
    pub fn insert(&self, key: K, value: V) -> Arc<V>
    where
        K: Clone,
    {
        let value = Arc::new(value);
        let mut shard = self.lock(self.shard_of(&key));
        if self.fail_check().is_err() {
            // Injected shard fault: drop the insert, hand the value back.
            return value;
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(key, Entry { value: Arc::clone(&value), last_used: tick });
        if shard.map.len() > self.shard_capacity {
            // The entry just inserted carries the newest tick, so it is
            // never its own eviction victim.
            let stalest =
                shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            if let Some(k) = stalest {
                shard.map.remove(&k);
            }
        }
        value
    }

    /// Drops every entry in every shard (hit/miss totals are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            self.lock(shard).map.clear();
        }
    }

    /// Keeps only the entries whose key satisfies `keep` — the hook for
    /// explicit, targeted invalidation (e.g. dropping one profile's
    /// cached selections after a mutation).
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) {
        for shard in &self.shards {
            self.lock(shard).map.retain(|k, _| keep(k));
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Key of a [`PlanCache`] entry. The `db_version` component is what makes
/// invalidation on catalog change automatic — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Database::id`] of the database the plan was compiled against.
    pub db_id: u64,
    /// [`Database::version`] at compile time.
    pub db_version: u64,
    /// Normalized query text (the parsed AST pretty-printed, so textual
    /// variants of one query share an entry).
    pub sql: String,
}

/// The engine's cache of compiled plans. A thin typed wrapper over
/// [`ShardedCache`]; the engine consults it in every plan-and-run entry
/// point and [`crate::Engine::prepare_cached`].
#[derive(Debug)]
pub struct PlanCache {
    inner: ShardedCache<PlanKey, CompiledQuery>,
}

/// Default shard count: enough to keep serving threads off each other's
/// locks without fragmenting tiny capacities.
const PLAN_CACHE_SHARDS: usize = 8;
/// Default per-shard capacity (total default capacity: 8 × 32 = 256
/// plans — generous for the repeated-query workloads this serves).
const PLAN_CACHE_SHARD_CAPACITY: usize = 32;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A plan cache with the default geometry.
    pub fn new() -> Self {
        PlanCache::with_capacity(PLAN_CACHE_SHARDS, PLAN_CACHE_SHARD_CAPACITY)
    }

    /// A plan cache with explicit shard count and per-shard capacity.
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> Self {
        PlanCache {
            inner: ShardedCache::new(shards, shard_capacity)
                .with_failpoint_site("cache.plan.shard"),
        }
    }

    /// Looks up the plan for `sql` compiled against the current version
    /// of `db`.
    pub fn get(&self, db: &Database, sql: &str) -> Option<Arc<CompiledQuery>> {
        let key =
            PlanKey { db_id: db.id(), db_version: db.version(), sql: sql.to_string() };
        self.inner.get(&key)
    }

    /// Stores a plan compiled against the current version of `db`.
    pub fn insert(&self, db: &Database, sql: String, plan: CompiledQuery) -> Arc<CompiledQuery> {
        let key = PlanKey { db_id: db.id(), db_version: db.version(), sql };
        self.inner.insert(key, plan)
    }

    /// Drops every cached plan (hit/miss totals are kept).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lookups that found a plan.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lookups that had to (re)compile.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let c: ShardedCache<u32, String> = ShardedCache::new(4, 8);
        assert!(c.get(&1).is_none());
        assert_eq!(c.misses(), 1);
        c.insert(1, "one".to_string());
        let v = c.get(&1).expect("hit");
        assert_eq!(*v, "one");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_stalest_not_hottest() {
        // Single shard, capacity 2, so eviction order is fully observable.
        let c: ShardedCache<u32, u32> = ShardedCache::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 is stalest.
        assert!(c.get(&1).is_some());
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert!(c.get(&1).is_some(), "recently used entry survives");
        assert!(c.get(&2).is_none(), "stalest entry evicted");
        assert!(c.get(&3).is_some(), "new entry present");
    }

    #[test]
    fn replacement_does_not_grow_len() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(1, 4);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&1).expect("hit"), 11);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(2, 4);
        c.insert(1, 10);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
    }

    /// Satellite of the poison-recovery idiom: a panic *while holding a
    /// shard lock* (here provoked directly, without failpoints) must not
    /// poison the cache for later callers.
    #[test]
    fn panic_mid_operation_does_not_poison_lookups() {
        let c: std::sync::Arc<ShardedCache<u32, u32>> =
            std::sync::Arc::new(ShardedCache::new(1, 8));
        c.insert(1, 10);
        let c2 = std::sync::Arc::clone(&c);
        // Panic inside retain's closure: the shard guard is held at the
        // moment of unwind, so the mutex is genuinely poisoned.
        let panicked = std::thread::spawn(move || {
            c2.retain(|_| panic!("mid-mutation panic"));
        })
        .join();
        assert!(panicked.is_err(), "the closure must have panicked");
        assert_eq!(*c.get(&1).expect("poisoned shard recovered"), 10);
        c.insert(2, 20);
        assert_eq!(*c.get(&2).expect("inserts keep working"), 20);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        // Capacity comfortably above the 400 total inserts so racing
        // threads never evict each other's fresh entries.
        let c: ShardedCache<u64, u64> = ShardedCache::new(8, 128);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100u64 {
                        c.insert(t * 1000 + i, i);
                        assert!(c.get(&(t * 1000 + i)).is_some());
                    }
                });
            }
        });
        assert_eq!(c.hits() + c.misses(), 400);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod failpoint_tests {
    use super::*;
    use qp_storage::failpoint::{self, FailAction, FailScenario};

    #[test]
    fn injected_shard_error_forces_miss_and_drops_insert() {
        let _s = FailScenario::setup();
        let c: ShardedCache<u32, u32> =
            ShardedCache::new(1, 8).with_failpoint_site("t.cache.shard");
        c.insert(1, 10);
        failpoint::arm("t.cache.shard", FailAction::Error("shard io".into()));
        assert!(c.get(&1).is_none(), "armed site forces a miss");
        let v = c.insert(2, 20);
        assert_eq!(*v, 20, "caller still gets its value back");
        failpoint::disarm("t.cache.shard");
        assert!(c.get(&2).is_none(), "the faulted insert was dropped");
        assert_eq!(*c.get(&1).expect("original entry intact"), 10);
    }

    /// A `Panic` action fires while the shard lock is held — the exact
    /// scenario the `PoisonError::into_inner` recovery exists for.
    #[test]
    fn injected_panic_mid_insert_does_not_poison_the_cache() {
        let _s = FailScenario::setup();
        let c: std::sync::Arc<ShardedCache<u32, u32>> =
            std::sync::Arc::new(ShardedCache::new(1, 8).with_failpoint_site("t.cache.poison"));
        c.insert(1, 10);
        failpoint::arm("t.cache.poison", FailAction::Panic("poisoned shard".into()));
        let c2 = std::sync::Arc::clone(&c);
        let panicked = std::thread::spawn(move || c2.insert(2, 20)).join();
        assert!(panicked.is_err(), "the insert must have panicked under the lock");
        failpoint::disarm("t.cache.poison");
        assert_eq!(*c.get(&1).expect("lookups survive the poisoned shard"), 10);
        c.insert(3, 30);
        assert_eq!(*c.get(&3).expect("inserts survive too"), 30);
    }
}

